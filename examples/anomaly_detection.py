#!/usr/bin/env python3
"""Anomaly detection on compressed data (the paper's Figure 13 scenario).

A monitoring system stores months of sensor data compressed with CAMEO and
wants to run Matrix-Profile discord detection without rehydrating everything:

1. build a small labelled anomaly corpus (synthetic UCR-style cases),
2. compress every series with CAMEO at increasing compression ratios,
3. detect the discord on the decompressed series and report the UCR-score,
4. additionally run the irregular-series variant (iMP) that works directly
   on the retained points and compare its runtime against the dense search.

Run with::

    python examples/anomaly_detection.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import CameoCompressor
from repro.anomaly import irregular_matrix_profile, regular_matrix_profile_naive, ucr_score
from repro.data import generate_anomaly_corpus

NUM_CASES = 8
SERIES_LENGTH = 2500
PERIOD = 80


def main() -> None:
    corpus = generate_anomaly_corpus(NUM_CASES, length=SERIES_LENGTH, period=PERIOD, seed=21)
    print(f"corpus            : {NUM_CASES} series of {SERIES_LENGTH} points, "
          f"one labelled anomaly each")

    baseline_score, _ = ucr_score(corpus, window_range=(70, 90))
    print(f"raw UCR-score     : {baseline_score:.2f}")
    print()
    print(f"{'target CR':>10} {'achieved CR':>12} {'UCR-score':>10}")

    for target_ratio in (2.0, 5.0, 10.0):
        compressor = CameoCompressor(PERIOD, epsilon=None, target_ratio=target_ratio,
                                     blocking="3logn")
        compressed = {case.name: compressor.compress(case.values) for case in corpus}
        achieved = float(np.mean([c.compression_ratio() for c in compressed.values()]))
        score, _ = ucr_score(corpus, lambda case: compressed[case.name].decompress(),
                             window_range=(70, 90))
        print(f"{target_ratio:>10.1f} {achieved:>12.1f} {score:>10.2f}")

    # --- irregular Matrix Profile (iMP) ---------------------------------- #
    print("\nMatrix-Profile discord search directly on the irregular series (iMP):")
    case = corpus[0]
    compressed = CameoCompressor(PERIOD, epsilon=None, target_ratio=10.0).compress(case.values)

    start = time.perf_counter()
    dense = regular_matrix_profile_naive(case.values, 150)
    dense_time = time.perf_counter() - start

    start = time.perf_counter()
    sparse = irregular_matrix_profile(compressed, 150)
    sparse_time = time.perf_counter() - start

    print(f"  rMP (all {150} points/segment)      : {dense_time * 1000:7.1f} ms, "
          f"discord at {dense.discord_index()}")
    print(f"  iMP ({sparse.points_per_segment:.1f} retained points/segment) : "
          f"{sparse_time * 1000:7.1f} ms, discord at {sparse.discord_index()}")
    print(f"  labelled anomaly region             : "
          f"[{case.anomaly_start}, {case.anomaly_end}]")


if __name__ == "__main__":
    main()
