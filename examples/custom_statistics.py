#!/usr/bin/env python3
"""Beyond the ACF: compressing under custom statistical constraints.

The paper notes that the CAMEO framework "is extensible to multivariate time
series and other statistical features".  This example exercises that
extension point on a synthetic air-quality scenario:

1. bound the deviation of distribution *moments* (mean/std/skewness) instead
   of the ACF — useful when downstream alerting uses value thresholds,
2. bound a *composite* of ACF and moments with one epsilon,
3. preserve the *cross-correlation* between two co-located sensors while
   compressing one of them (the multivariate extension), and
4. compare the compression ratios the different constraints allow.

Run with::

    python examples/custom_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro import CameoCompressor
from repro.stats import acf
from repro.stats.descriptors import (
    AcfStatistic,
    CompositeStatistic,
    CrossCorrelationStatistic,
    MomentStatistic,
)


def make_sensors(rng: np.random.Generator, n: int = 3_000):
    """Two correlated pollutant sensors with a daily (24-sample) cycle."""
    t = np.arange(n)
    base = 40 + 15 * np.sin(2 * np.pi * t / 24) + 3 * np.sin(2 * np.pi * t / 168)
    station_a = base + 2.0 * rng.standard_normal(n)
    station_b = 0.8 * np.roll(base, 2) + 25 + 2.0 * rng.standard_normal(n)
    return station_a, station_b


def deviation(statistic, original, reconstruction) -> float:
    return float(np.mean(np.abs(statistic.compute(original)
                                - statistic.compute(reconstruction))))


def main() -> None:
    rng = np.random.default_rng(41)
    station_a, station_b = make_sensors(rng)
    max_lag, epsilon = 24, 0.02
    print(f"two synthetic air-quality stations, {station_a.size} points each\n")

    constraints = {
        "ACF (paper default)": AcfStatistic(max_lag),
        "moments": MomentStatistic(["mean", "std", "skewness"]),
        "ACF + moments": CompositeStatistic(
            [AcfStatistic(max_lag), MomentStatistic(["mean", "std"])],
            weights=[1.0, 0.1]),
        "cross-correlation to B": CrossCorrelationStatistic(station_b, max_lag=6),
    }

    print(f"{'constraint':<26} {'ratio':>7} {'constraint dev':>15} {'ACF dev':>9}")
    print("-" * 62)
    results = {}
    for label, statistic in constraints.items():
        compressor = CameoCompressor(max_lag, epsilon, statistic=statistic,
                                     blocking="3logn")
        result = compressor.compress(station_a)
        reconstruction = result.decompress()
        results[label] = result
        constraint_dev = deviation(statistic, station_a, reconstruction)
        acf_dev = float(np.mean(np.abs(acf(station_a, max_lag)
                                       - acf(reconstruction, max_lag))))
        print(f"{label:<26} {result.compression_ratio():>7.1f} "
              f"{constraint_dev:>15.5f} {acf_dev:>9.5f}")

    print("\nobservations")
    print("  * every run keeps its own constraint within the bound, but the ACF can")
    print("    drift freely when it is not the bounded statistic (see the moments row)")
    print("    — pick the statistic your downstream analytics actually depend on.")
    print("  * the composite constraint is the conservative choice: one epsilon")
    print("    covers both temporal structure and the value distribution.")
    print("  * the cross-correlation constraint keeps station A's relationship to")
    print("    station B intact, which joint (multivariate) models rely on.")

    ccf = CrossCorrelationStatistic(station_b, max_lag=6)
    original_ccf = ccf.compute(station_a)
    kept = results["cross-correlation to B"].decompress()
    compressed_ccf = ccf.compute(kept)
    print("\ncross-correlation of station A to station B (lag 0..6)")
    print(f"  original   : {np.round(original_ccf, 3)}")
    print(f"  compressed : {np.round(compressed_ccf, 3)}")


if __name__ == "__main__":
    main()
