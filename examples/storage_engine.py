#!/usr/bin/env python3
"""Storage engine walkthrough: ingest, footprint, analytical queries.

The paper motivates CAMEO with the storage and I/O pressure time series
databases face.  This example runs the full path on a synthetic electricity-
demand feed:

1. ingest the same series into stores backed by different codecs
   (raw, Gorilla, CAMEO, SWING) and compare their bits/value footprint,
2. run analytical queries (mean/min/max with aggregate pushdown, seasonal
   profile, ACF) against the CAMEO-backed store, and
3. compact the raw store with CAMEO and show the reclaimed space.

Run with::

    python examples/storage_engine.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.stats import acf
from repro.storage import QueryEngine, TimeSeriesStore


def main() -> None:
    series = load_dataset("UKElecDem", length=8_192, seed=11)
    max_lag = series.metadata["acf_lags"]
    print(f"dataset : {series.name} ({len(series)} points, {max_lag} ACF lags)\n")

    # ------------------------------------------------------------------ #
    # 1. footprint comparison across codecs
    # ------------------------------------------------------------------ #
    store = TimeSeriesStore(default_segment_size=2_048)
    codecs = {
        "raw": ("raw", {}),
        "gorilla": ("gorilla", {}),
        "cameo": ("cameo", {"max_lag": max_lag, "epsilon": 0.01}),
        "swing": ("swing", {"error_bound": 0.02 * float(np.ptp(series.values))}),
    }
    print(f"{'codec':<10} {'bits/value':>12} {'ratio':>8} {'ACF deviation':>14}")
    print("-" * 48)
    for label, (codec, options) in codecs.items():
        name = f"demand-{label}"
        store.create_series(name, codec=codec, codec_options=options or None)
        store.append(name, series.values)
        store.flush(name)
        info = store.info(name)
        reconstruction = store.read(name)
        deviation = float(np.mean(np.abs(
            acf(series.values, max_lag) - acf(reconstruction, max_lag))))
        print(f"{label:<10} {info.bits_per_value:>12.2f} {info.compression_ratio:>8.2f} "
              f"{deviation:>14.5f}")

    # ------------------------------------------------------------------ #
    # 2. analytics against the CAMEO-backed store
    # ------------------------------------------------------------------ #
    engine = QueryEngine(store)
    name = "demand-cameo"
    day = 48  # half-hourly data -> 48 values per day
    print("\nanalytics on the CAMEO-backed store")
    result = engine.aggregate(name, "mean", start=day, stop=day * 100)
    print(f"  mean demand (days 2-100)      : {result.value:.1f} "
          f"(pushdown fraction {result.pushdown_fraction:.0%}, "
          f"{result.segments_decoded} segments decoded)")
    print(f"  max demand (whole series)     : {engine.aggregate(name, 'max').value:.1f}")
    profile = engine.seasonal_profile(name, period=day)
    print(f"  daily peak at slot            : {int(np.argmax(profile))} of {day}")
    stored_acf = engine.acf(name, max_lag=max_lag)
    true_acf = acf(series.values, max_lag)
    print(f"  ACF(1) raw vs stored          : {true_acf[0]:.4f} vs {stored_acf[0]:.4f}")

    # ------------------------------------------------------------------ #
    # 3. compaction: re-encode the raw series with CAMEO
    # ------------------------------------------------------------------ #
    before = store.info("demand-raw")
    after = store.compact("demand-raw", codec="cameo",
                          codec_options={"max_lag": max_lag, "epsilon": 0.01})
    print("\ncompaction of the raw store with CAMEO")
    print(f"  before : {before.bits_per_value:.2f} bits/value over {before.segments} segments")
    print(f"  after  : {after.bits_per_value:.2f} bits/value over {after.segments} segments "
          f"({before.encoded_bits / after.encoded_bits:.1f}x smaller)")


if __name__ == "__main__":
    main()
