#!/usr/bin/env python3
"""Compress a series under a PACF deviation bound.

The ACF tells you *that* a series is autocorrelated; the PACF tells you the
*order* of the dependence (an AR(p) process has exactly p non-zero PACF
lags), which is what ARIMA-style model identification reads off.  CAMEO can
bound the PACF deviation instead of the ACF's — historically ~6x slower
(paper Section 5.5), now tracked through the batched Durbin-Levinson kernel
(see docs/performance.md).

This example compresses an AR(2) process under a PACF bound and prints the
achieved ratio and PACF error, then shows why preserving the ACF is not the
same thing as preserving the PACF.

Run with::

    python examples/pacf_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import cameo_compress, mae
from repro.data import generate_ar_process
from repro.stats import pacf

MAX_LAG = 24
EPSILON = 0.02          # maximum allowed PACF deviation (MAE over 24 lags)


def main() -> None:
    # An AR(2) process: the PACF cuts off sharply after lag 2 — exactly the
    # structure a forecaster's model-identification step depends on.
    series = generate_ar_process(4000, [0.55, 0.3], seed=7)
    reference_pacf = pacf(series, MAX_LAG)
    print(f"series            : AR(2), {series.size} points, "
          f"{MAX_LAG} PACF lags preserved")
    print(f"true PACF         : lag1={reference_pacf[0]:+.3f} "
          f"lag2={reference_pacf[1]:+.3f} "
          f"|lag>2| max={np.max(np.abs(reference_pacf[2:])):.3f}")

    # --- CAMEO with statistic="pacf" ------------------------------------- #
    compressed = cameo_compress(series, max_lag=MAX_LAG, epsilon=EPSILON,
                                statistic="pacf")
    reconstruction = compressed.decompress()
    achieved = mae(reference_pacf, pacf(reconstruction, MAX_LAG))
    max_error = float(np.max(np.abs(reference_pacf - pacf(reconstruction, MAX_LAG))))

    print(f"CAMEO (pacf)      : kept {len(compressed)} of {series.size} points "
          f"(compression ratio {compressed.compression_ratio():.1f}x)")
    print(f"PACF deviation    : MAE {achieved:.5f} (bound was {EPSILON}), "
          f"max per-lag error {max_error:.5f}")
    print(f"elapsed           : {compressed.metadata['elapsed_seconds']:.2f} s")

    # --- Contrast: the same epsilon as an ACF bound ----------------------- #
    # An AR process has a slowly decaying ACF but only p significant PACF
    # lags, so the same epsilon is a far tighter constraint on the ACF: the
    # PACF bound is the right lever when downstream work is model
    # identification rather than correlation analysis.
    acf_compressed = cameo_compress(series, max_lag=MAX_LAG, epsilon=EPSILON)
    acf_pacf_error = mae(reference_pacf, pacf(acf_compressed.decompress(), MAX_LAG))
    print(f"CAMEO (acf)       : same epsilon on the ACF reaches only "
          f"{acf_compressed.compression_ratio():.1f}x "
          f"(PACF deviation {acf_pacf_error:.5f})")
    print("done.")


if __name__ == "__main__":
    main()
