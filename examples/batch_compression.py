"""Fleet-scale batch compression with the engine.

A production ingest tier compresses *many* independent series — the unit of
throughput is series per second across the fleet, not one series' latency.
This example drives :func:`repro.engine.compress_batch` through the typical
workflow:

1. compress a fleet of sensor series with a lossless codec on every backend,
2. compress the same fleet with CAMEO (short series ride the lock-step
   cross-series fast path) and verify the results match per-series runs,
3. show per-series error isolation (a poisoned series never kills a batch),
4. feed several live streams through the engine-backed
   :class:`repro.streaming.MultiStreamCompressor`.

Run with ``PYTHONPATH=src python examples/batch_compression.py``.
"""

from __future__ import annotations

import numpy as np

from repro.codecs import get_codec
from repro.engine import compress_batch
from repro.streaming import MultiStreamCompressor


def build_fleet(count: int, length: int, seed: int = 42) -> list[np.ndarray]:
    """Synthetic sensor fleet: shared seasonality, independent noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = 20.0 + 4.0 * np.sin(2 * np.pi * t / 24) + np.sin(2 * np.pi * t / 168)
    return [np.round(base + rng.normal(0.0, 0.4, length), 2)
            for _ in range(count)]


def main() -> None:
    fleet = build_fleet(count=24, length=256)

    # ------------------------------------------------------------------ #
    # 1. lossless fleet compression on each backend
    # ------------------------------------------------------------------ #
    print("=== Gorilla fleet, three backends ===")
    for backend in ("serial", "thread", "process"):
        result = compress_batch(fleet, codec="gorilla", backend=backend,
                                workers=2)
        report = result.report
        print(f"  {backend:<8} {report.series} series, "
              f"{report.bits_per_value:.2f} bits/value, "
              f"{report.points_per_sec:,.0f} points/s, "
              f"{report.fastpath_series} via stacked fast path")

    # ------------------------------------------------------------------ #
    # 2. CAMEO fleet: lock-step fast path, identical to per-series runs
    # ------------------------------------------------------------------ #
    print("\n=== CAMEO fleet (max_lag=12, epsilon=0.05) ===")
    # Short series (n*max_lag below the lock-step ceiling) stack their
    # ReHeap evaluations into shared kernel calls.
    short_fleet = build_fleet(count=8, length=256, seed=7)
    options = dict(max_lag=12, epsilon=0.05)
    result = compress_batch(short_fleet, codec="cameo", codec_options=options)
    codec = get_codec("cameo", **options)
    reference = codec.encode(short_fleet[0])
    assert (result[0].unwrap().payload.indices.tolist()
            == reference.payload.indices.tolist()), "batch must equal per-series"
    report = result.report
    print(f"  {report.series} series, ratio {report.compression_ratio:.2f}x, "
          f"{report.fastpath_series} via lock-step fast path "
          f"(kept sets identical to per-series runs)")

    # ------------------------------------------------------------------ #
    # 3. error isolation: one poisoned series, batch completes
    # ------------------------------------------------------------------ #
    print("\n=== Error isolation ===")
    poisoned = list(fleet[:4])
    poisoned[2] = np.full(64, np.nan)
    result = compress_batch(poisoned, codec="gorilla")
    for outcome in result:
        status = ("ok" if outcome.ok
                  else f"FAILED ({outcome.error_type}: {outcome.error})")
        print(f"  series {outcome.index}: {status}")
    assert result.report.failed == 1 and result.report.series == 4

    # ------------------------------------------------------------------ #
    # 4. engine-backed multi-stream ingest
    # ------------------------------------------------------------------ #
    print("\n=== Multi-stream ingest (chunk_size=128) ===")
    multi = MultiStreamCompressor(chunk_size=128, codec="gorilla")
    for index, series in enumerate(fleet[:6]):
        multi.add(f"sensor-{index}", series)
    sealed = multi.flush()
    print(f"  {len(sealed)} chunks sealed across {len(multi.streams)} streams "
          "in one batched engine pass")
    for stream in multi.streams[:2]:
        report = multi.report(stream)
        print(f"  {stream}: {report.chunks} chunks, "
              f"{report.bits_per_value:.2f} bits/value")
    restored = multi.reconstruct("sensor-0")
    assert np.array_equal(restored, fleet[0])
    print("  sensor-0 reconstructs exactly (lossless)")


if __name__ == "__main__":
    main()
