#!/usr/bin/env python3
"""Streaming pipeline: chunked CAMEO compression with ACF drift monitoring.

Simulates an IoT gateway that receives an unbounded humidity-like feed and

1. compresses it chunk-by-chunk with :class:`repro.streaming.
   StreamingCameoCompressor` (per-chunk ACF bound, like the paper's
   coarse-grained parallelization applied over time),
2. tracks the exact ACF of the raw stream with an
   :class:`repro.streaming.OnlineAcfEstimator`, and
3. watches for autocorrelation drift — here the feed's daily cycle abruptly
   switches period half-way through, which the
   :class:`repro.streaming.AcfDriftMonitor` flags so operators can re-tune
   the compressor (lags, bound) for the new regime.

Run with::

    python examples/streaming_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.stats import acf
from repro.streaming import AcfDriftMonitor, StreamingCameoCompressor, StreamingCompressor


def sensor_feed(rng: np.random.Generator) -> np.ndarray:
    """Two regimes: a 60-sample cycle that later switches to a 24-sample cycle."""
    t1 = np.arange(6_000)
    regime1 = 70 + 12 * np.sin(2 * np.pi * t1 / 60) + 0.8 * rng.standard_normal(t1.size)
    t2 = np.arange(4_000)
    regime2 = 70 + 12 * np.sin(2 * np.pi * t2 / 24) + 0.8 * rng.standard_normal(t2.size)
    return np.concatenate([regime1, regime2])


def main() -> None:
    rng = np.random.default_rng(23)
    feed = sensor_feed(rng)
    max_lag = 60
    epsilon = 0.02

    stream = StreamingCameoCompressor(chunk_size=1_000, max_lag=max_lag, epsilon=epsilon)
    monitor = AcfDriftMonitor(max_lag=max_lag, window=1_200, threshold=0.25)

    print(f"streaming {feed.size} values in batches of 500 "
          f"(chunk size 1000, ACF bound {epsilon})\n")
    print(f"{'batch':>6} {'sealed chunks':>14} {'kept points':>12} {'drift?':>8}")
    print("-" * 46)
    for batch_index, start in enumerate(range(0, feed.size, 500)):
        batch = feed[start: start + 500]
        chunks = stream.add(batch)
        events = monitor.update(batch)
        if chunks or events:
            report = stream.report()
            flag = f"at {events[0].position}" if events else ""
            print(f"{batch_index:>6} {report.chunks:>14} {report.kept_points:>12} {flag:>8}")
    stream.finalize()

    report = stream.report()
    print("\nstream summary")
    print(f"  chunks sealed        : {report.chunks}")
    print(f"  compression ratio    : {report.compression_ratio:.1f}x")
    print(f"  worst chunk deviation: {report.worst_chunk_deviation:.5f} (bound {epsilon})")
    print(f"  drift events         : {len(monitor.events)} "
          f"(first at value {monitor.events[0].position if monitor.events else '-'})")

    # The stitched representation reconstructs the whole session.
    stitched = stream.to_irregular("humidity-session")
    reconstruction = stitched.decompress()
    deviation = float(np.mean(np.abs(acf(feed, max_lag) - acf(reconstruction, max_lag))))
    online_acf1 = stream.global_acf()[0]
    print("\nwhole-session check")
    print(f"  retained points      : {len(stitched)} of {feed.size}")
    print(f"  global ACF deviation : {deviation:.5f}")
    print(f"  streaming ACF(1)     : {online_acf1:.4f} "
          f"(batch recomputation: {acf(feed, 1)[0]:.4f})")

    # The stream compressor is codec-generic: the same pipeline can seal
    # chunks losslessly (e.g. for a raw archival tier) by naming any
    # registered codec instead of CAMEO.
    archive = StreamingCompressor(chunk_size=1_000, codec="gorilla")
    archive.add(feed)
    archive.flush()
    archive_report = archive.report()
    print("\nlossless archival tier (gorilla, same chunking)")
    print(f"  bits/value           : {archive_report.bits_per_value:.2f} (raw: 64)")
    print(f"  exact reconstruction : {bool(np.array_equal(archive.reconstruct(), feed))}")


if __name__ == "__main__":
    main()
