#!/usr/bin/env python3
"""Forecasting on compressed data (the paper's EXP2/EXP3 scenario).

An IoT gateway wants to ship far less data to the cloud but the cloud-side
forecasting jobs must keep working.  This example:

1. generates a synthetic UK-electricity-demand-like series,
2. compresses the training window with CAMEO and, for comparison, with the
   SWING filter at a matched compression ratio,
3. trains the same forecasting models on the raw and on the decompressed
   training data,
4. reports the forecast accuracy (mSMAPE) against the *raw* hold-out.

Run with::

    python examples/forecasting_pipeline.py
"""

from __future__ import annotations

from repro import CameoCompressor, load_dataset
from repro.compressors import SwingFilter, search_parameter_for_acf
from repro.forecasting import evaluate_forecast, make_forecaster, train_test_split


HORIZON = 48            # forecast one day of half-hourly values
TARGET_RATIO = 8.0      # ship 8x less data


def main() -> None:
    series = load_dataset("UKElecDem", length=4800, seed=11)
    period = series.metadata["acf_lags"]  # 48 half-hours = daily seasonality
    train, test = train_test_split(series.values, HORIZON)

    # --- compress the training window ------------------------------------ #
    cameo = CameoCompressor(period, epsilon=None, target_ratio=TARGET_RATIO).compress(train)
    cameo_train = cameo.decompress()

    swing_model, _parameter, swing_deviation = search_parameter_for_acf(
        lambda bound: SwingFilter(bound * (train.max() - train.min())).compress(train),
        train, period, epsilon=0.05, high=0.5)
    swing_train = swing_model.decompress()

    print(f"dataset          : {series.name}, train={train.size} points, "
          f"horizon={HORIZON}")
    print(f"CAMEO            : CR={cameo.compression_ratio():.1f}x "
          f"(ACF dev {cameo.metadata['achieved_deviation']:.4f})")
    print(f"SWING            : CR={swing_model.compression_ratio():.1f}x "
          f"(ACF dev {swing_deviation:.4f})")
    print()

    # --- forecast with several models ------------------------------------ #
    header = f"{'model':<12} {'raw':>10} {'CAMEO':>10} {'SWING':>10}"
    print(header)
    print("-" * len(header))
    for model_name in ("snaive", "holt-winters", "dhr-arima", "mlp"):
        errors = []
        for train_values in (train, cameo_train, swing_train):
            model = make_forecaster(model_name, period=period)
            evaluation = evaluate_forecast(model, train_values, test)
            errors.append(evaluation.error)
        print(f"{model_name:<12} {errors[0]:>10.4f} {errors[1]:>10.4f} {errors[2]:>10.4f}")

    print("\nLower is better; CAMEO's column should track the raw column closely,")
    print("because the daily autocorrelation the models rely on is preserved.")


if __name__ == "__main__":
    main()
