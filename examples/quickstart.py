#!/usr/bin/env python3
"""Quickstart: compress a seasonal series with an ACF guarantee.

Demonstrates the three building blocks most users need:

1. compress a series with :func:`repro.cameo_compress` under an ACF bound,
2. inspect the achieved compression ratio and ACF deviation,
3. reconstruct (decompress) the series and compare against baselines.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import cameo_compress, load_dataset, mae, make_simplifier
from repro.simplify import AcfConstrainedSimplifier
from repro.stats import acf


def main() -> None:
    # Synthetic stand-in for the paper's hourly Pedestrian-count dataset.
    series = load_dataset("Pedestrian", length=4000, seed=42)
    max_lag = series.metadata["acf_lags"]      # 24 lags = one day of hourly data
    epsilon = 0.01                             # maximum allowed ACF deviation (MAE)

    print(f"dataset           : {series.name} ({len(series)} points, "
          f"{max_lag} ACF lags preserved)")

    # --- CAMEO ---------------------------------------------------------- #
    compressed = cameo_compress(series.values, max_lag=max_lag, epsilon=epsilon)
    reconstruction = compressed.decompress()
    deviation = mae(acf(series.values, max_lag), acf(reconstruction, max_lag))

    print(f"CAMEO             : kept {len(compressed)} of {len(series)} points "
          f"(compression ratio {compressed.compression_ratio():.1f}x)")
    print(f"ACF deviation     : {deviation:.5f}  (bound was {epsilon})")
    print(f"bits per value    : {compressed.bits_per_value():.2f} (raw = 64)")

    # --- A line-simplification baseline under the same bound ------------- #
    vw = AcfConstrainedSimplifier(make_simplifier("VW"), max_lag, epsilon)
    vw_result = vw.compress(series.values)
    print(f"VW baseline       : compression ratio {vw_result.compression_ratio():.1f}x "
          f"under the same ACF bound")

    # --- Reconstruction quality ------------------------------------------ #
    value_range = float(np.max(series.values) - np.min(series.values))
    nrmse = float(np.sqrt(np.mean((series.values - reconstruction) ** 2)) / value_range)
    print(f"NRMSE             : {nrmse:.4f}")
    print("done.")


if __name__ == "__main__":
    main()
