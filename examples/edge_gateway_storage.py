#!/usr/bin/env python3
"""Edge-gateway storage budgeting — bits/value across compressor families.

The motivating scenario from the paper's introduction: an industrial site
produces high-frequency sensor data and has to decide how to store it.  This
example compares, on a synthetic solar-power-like feed:

* lossless codecs (Gorilla, Chimp) — exact but limited compression,
* CAMEO at several ACF error bounds — lossy but with a guarantee on the
  statistic the downstream forecasting pipeline needs,
* the classical error-bounded compressors (PMC, SWING) tuned to match the
  same ACF deviation,

and reports bits/value plus the achieved ACF deviation, i.e. a small version
of the paper's Table 2.  It also shows how to persist and reload the
compressed representation with :mod:`repro.io`.

Run with::

    python examples/edge_gateway_storage.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CameoCompressor, load_dataset
from repro.compressors import PoorMansCompressionMean, SwingFilter, acf_deviation_of, \
    search_parameter_for_acf
from repro.io import load_irregular_npz, save_irregular_npz
from repro.lossless import ChimpCodec, GorillaCodec


def main() -> None:
    series = load_dataset("SolarPower", length=6000, seed=33)
    max_lag = series.metadata["acf_lags"]
    agg_window = series.metadata["agg_window"]
    print(f"dataset   : {series.name} ({len(series)} points, ACF of {max_lag} lags "
          f"on {agg_window}-point windows)")
    print(f"{'method':<16} {'bits/value':>12} {'ACF deviation':>14}")
    print("-" * 44)

    # Lossless codecs: exact, deviation 0 by definition.
    for codec in (GorillaCodec(), ChimpCodec()):
        bits = codec.bits_per_value(series.values)
        print(f"{codec.name:<16} {bits:>12.2f} {'0 (lossless)':>14}")

    # CAMEO at several bounds on the aggregated ACF.
    for epsilon in (1e-3, 1e-2):
        compressor = CameoCompressor(max_lag, epsilon, agg_window=agg_window,
                                     blocking="3logn")
        result = compressor.compress(series)
        deviation = acf_deviation_of(series.values, result.decompress(), max_lag,
                                     agg_window=agg_window)
        print(f"{'CAMEO eps=' + format(epsilon, 'g'):<16} "
              f"{result.bits_per_value():>12.2f} {deviation:>14.5f}")

    # Error-bounded baselines tuned (trial and error) to a 1e-2 ACF deviation.
    value_range = float(series.values.max() - series.values.min()) or 1.0
    for name, factory in (
            ("PMC", lambda p: PoorMansCompressionMean(p * value_range).compress(series)),
            ("SWING", lambda p: SwingFilter(p * value_range).compress(series))):
        model, _parameter, deviation = search_parameter_for_acf(
            factory, series.values, max_lag, 1e-2, agg_window=agg_window, high=0.5)
        print(f"{name:<16} {model.bits_per_value():>12.2f} {deviation:>14.5f}")

    # Persist the CAMEO representation and reload it.
    result = CameoCompressor(max_lag, 1e-2, agg_window=agg_window,
                             blocking="3logn").compress(series)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "solar_cameo.npz"
        save_irregular_npz(result, path)
        restored = load_irregular_npz(path)
        print(f"\nround-trip through {path.name}: "
              f"{len(restored)} points, CR={restored.compression_ratio():.1f}x")


if __name__ == "__main__":
    main()
