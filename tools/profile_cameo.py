#!/usr/bin/env python
"""Profile an end-to-end CAMEO compression run with cProfile.

Produces the top-N hotspot table used by ``docs/performance.md`` ("Remaining
hotspots").  Typical invocations::

    PYTHONPATH=src python tools/profile_cameo.py --n 10000 --max-lag 50
    PYTHONPATH=src python tools/profile_cameo.py --n 4000 --statistic pacf \
        --max-lag 24 --sort tottime --top 25
    PYTHONPATH=src python tools/profile_cameo.py --n 10000 --batch-size 1
    PYTHONPATH=src python tools/profile_cameo.py --n 256 --max-lag 16 \
        --batch 64 --backend serial

The synthetic signal matches the perf harness
(``benchmarks/test_perf_kernels.py``): two sine components plus Gaussian
noise from a fixed-seed generator, so profiles are reproducible and
comparable across runs.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time


def build_signal(n: int, seed: int):
    import numpy as np

    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
            + 0.5 * np.sin(2 * np.pi * t / 168)
            + rng.normal(0, 0.3, t.size))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000, help="series length")
    parser.add_argument("--max-lag", type=int, default=50)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--statistic", choices=("acf", "pacf"), default="acf")
    parser.add_argument("--blocking", default="5logn")
    parser.add_argument("--agg-window", type=int, default=1)
    parser.add_argument("--metric", default="mae")
    parser.add_argument("--batch-size", default=None,
                        help="speculative batch size (int) or 'auto'; "
                             "1 = sequential escape hatch")
    parser.add_argument("--batch", type=int, default=None, metavar="N",
                        help="profile a batch-engine run over N copies of the "
                             "signal (distinct noise seeds) instead of one "
                             "series")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"),
                        help="engine backend for --batch (cProfile only sees "
                             "parent-process work; use serial for kernel "
                             "attribution)")
    parser.add_argument("--workers", type=int, default=None,
                        help="engine workers for --batch")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="disable the engine's cross-series fast paths "
                             "for --batch")
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"))
    parser.add_argument("--top", type=int, default=30,
                        help="number of rows to print")
    parser.add_argument("--no-profile", action="store_true",
                        help="only time the run (no cProfile overhead)")
    parser.add_argument("--no-native", action="store_true",
                        help="force the pure-NumPy kernel tier (equivalent "
                             "to REPRO_NATIVE=0) for tier A/B profiling")
    args = parser.parse_args(argv)

    from repro import _kernels
    from repro.core import cameo_compress

    if args.no_native:
        _kernels.set_native_enabled(False)
    tier = _kernels.active_tier()["interior_acf_block"]

    kwargs: dict = {
        "max_lag": args.max_lag,
        "epsilon": args.epsilon,
        "statistic": args.statistic,
        "blocking": (int(args.blocking) if str(args.blocking).isdigit()
                     else args.blocking),
        "agg_window": args.agg_window,
        "metric": args.metric,
    }
    if args.batch_size is not None:
        kwargs["batch_size"] = (args.batch_size if args.batch_size == "auto"
                                else int(args.batch_size))

    if args.batch is not None:
        from repro.engine import BatchEngine

        signals = [build_signal(args.n, args.seed + index)
                   for index in range(args.batch)]
        engine = BatchEngine("cameo", codec_options=kwargs,
                             backend=args.backend, workers=args.workers,
                             fastpath=not args.no_fastpath)

        def run():
            return engine.compress(signals)
    else:
        signal = build_signal(args.n, args.seed)

        def run():
            return cameo_compress(signal, **kwargs)

    start = time.perf_counter()
    if args.no_profile:
        result = run()
        elapsed = time.perf_counter() - start
    else:
        profiler = cProfile.Profile()
        result = profiler.runcall(run)
        elapsed = time.perf_counter() - start

    if args.batch is not None:
        report = result.report
        total = args.batch * args.n
        print(f"batch={args.batch} x n={args.n} statistic={args.statistic} "
              f"max_lag={args.max_lag} epsilon={args.epsilon} "
              f"backend={report.backend} workers={report.workers} "
              f"fastpath={'off' if args.no_fastpath else 'on'} tier={tier}")
        print(f"series={report.series} failed={report.failed} "
              f"fastpath_series={report.fastpath_series} "
              f"bits/value={report.bits_per_value:.2f}")
        print(f"wall time: {elapsed:.2f} s "
              f"({total / max(elapsed, 1e-9):.0f} points/s, "
              f"cpu {report.cpu_seconds:.2f} s)\n")
    else:
        meta = result.metadata
        print(f"n={args.n} statistic={args.statistic} max_lag={args.max_lag} "
              f"epsilon={args.epsilon} blocking={args.blocking} tier={tier}")
        print(f"kept={meta['kept_points']} iterations={meta['iterations']} "
              f"stopped_by={meta['stopped_by']} "
              f"achieved_deviation={meta['achieved_deviation']:.6f}")
        print(f"wall time: {elapsed:.2f} s "
              f"({args.n / max(elapsed, 1e-9):.0f} points/s)\n")
    if not args.no_profile:
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
