#!/usr/bin/env python3
"""Splice the rendered scorecard tables into ``docs/evaluation.md``.

Reads the committed ``SCORECARD.json``, renders it with
:func:`repro.benchlib.scorecard.render_markdown`, and replaces the block
between the ``<!-- scorecard:begin -->`` / ``<!-- scorecard:end -->``
markers in ``docs/evaluation.md``.

Usage::

    python tools/render_scorecard.py --write   # update docs/evaluation.md
    python tools/render_scorecard.py --check   # exit 1 if out of date

CI's docs job runs ``--check`` so the committed page can never drift from
the committed scorecard.  Regenerate both with::

    python -m repro.cli scorecard && python tools/render_scorecard.py --write
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCORECARD_PATH = REPO_ROOT / "SCORECARD.json"
PAGE_PATH = REPO_ROOT / "docs" / "evaluation.md"
BEGIN_MARKER = "<!-- scorecard:begin -->"
END_MARKER = "<!-- scorecard:end -->"


def spliced_page(page: str, tables: str) -> str:
    """The page text with the marker block replaced by ``tables``."""
    begin = page.index(BEGIN_MARKER) + len(BEGIN_MARKER)
    end = page.index(END_MARKER)
    if end < begin:
        raise ValueError("scorecard markers are out of order")
    return page[:begin] + "\n" + tables + page[end:]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--write", action="store_true",
                       help="update docs/evaluation.md in place")
    group.add_argument("--check", action="store_true",
                       help="exit 1 if docs/evaluation.md is out of date")
    args = parser.parse_args(argv)

    from repro.benchlib.scorecard import render_markdown

    document = json.loads(SCORECARD_PATH.read_text(encoding="utf-8"))
    tables = render_markdown(document)
    page = PAGE_PATH.read_text(encoding="utf-8")
    if BEGIN_MARKER not in page or END_MARKER not in page:
        print(f"{PAGE_PATH}: missing scorecard markers", file=sys.stderr)
        return 1
    updated = spliced_page(page, tables)

    if args.check:
        if updated != page:
            print(f"{PAGE_PATH} is out of date with SCORECARD.json; "
                  "run: python tools/render_scorecard.py --write",
                  file=sys.stderr)
            return 1
        print(f"{PAGE_PATH} matches SCORECARD.json")
        return 0

    PAGE_PATH.write_text(updated, encoding="utf-8")
    print(f"wrote {PAGE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
