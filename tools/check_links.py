#!/usr/bin/env python3
"""Intra-repo link checker for the markdown docs (no Sphinx required).

Scans ``README.md`` and ``docs/*.md`` (plus any extra files given on the
command line) for inline markdown links/images and verifies that every
*relative* target resolves to an existing file or directory in the
repository.  External links (``http(s)://``, ``mailto:``) and pure anchors
(``#section``) are ignored; a ``path#fragment`` target is checked for the
path part only.

Usage::

    python tools/check_links.py            # check README.md + docs/*.md
    python tools/check_links.py FILE...    # check the given files instead

Exit status 0 when every link resolves, 1 otherwise (broken links are
listed on stderr).  CI runs this as the docs job; the tier-1 suite runs it
in-process via ``tests/docs/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links and images: ``[text](target)`` / ``![alt](target)``.
#: Targets never contain unescaped parentheses in this repo's docs.
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that are not filesystem targets.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def default_files() -> list[Path]:
    """README.md plus every markdown page under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def iter_links(markdown: str):
    """Yield every inline link target, with fenced code blocks removed."""
    # Strip fenced code blocks so example snippets cannot register links.
    stripped = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    # Strip inline code spans for the same reason.  Spans must stay within
    # one line: letting them match across newlines would make a single
    # unpaired backtick silently swallow — and un-check — everything up to
    # the next backtick in the file.
    stripped = re.sub(r"`[^`\n]*`", "", stripped)
    for match in _LINK_PATTERN.finditer(stripped):
        yield match.group(1)


def check_file(path: Path) -> list[str]:
    """Return human-readable problems for one markdown file."""
    try:
        label = str(path.relative_to(REPO_ROOT))
    except ValueError:
        label = str(path)
    problems: list[str] = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if relative.startswith("/"):
            # Root-relative links resolve against the repo root (GitHub's
            # rendering), not the filesystem root.
            resolved = (REPO_ROOT / relative.lstrip("/")).resolve()
        else:
            resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{label}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    files = [Path(arg).resolve() for arg in argv] if argv else default_files()
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
