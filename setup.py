"""Build script: pure-Python package plus the optional native kernel tier.

The C extension (``repro._kernels._native._nativecore``) is strictly
optional: if no compiler is available, or the compile fails for any
reason, the build degrades to a source-only install and the library falls
back to its pure-NumPy kernels at import time.  Build it in place for a
``PYTHONPATH=src`` checkout with::

    python setup.py build_ext --inplace
"""

from __future__ import annotations

import os
import sys

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext

#: Set ``REPRO_BUILD_NATIVE=0`` to skip the extension entirely (the CI
#: no-compiler matrix leg uses this to exercise the source-only path).
BUILD_NATIVE_ENV = "REPRO_BUILD_NATIVE"


def _numpy_include() -> str | None:
    try:
        import numpy
    except ImportError:
        return None
    return numpy.get_include()


class OptionalBuildExt(build_ext):
    """``build_ext`` that degrades to a source-only build on any failure.

    Also probes for OpenMP: the extension is first compiled with the
    OpenMP flags, and on failure retried without them (single-threaded
    native kernels are still the point of the tier — bit-identical fused
    loops — so a missing OpenMP runtime must not lose the build).
    """

    OPENMP_COMPILE = {"unix": ["-fopenmp"], "msvc": ["/openmp"]}
    OPENMP_LINK = {"unix": ["-fopenmp"], "msvc": []}

    def run(self):  # noqa: D102
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - depends on toolchain
            self._warn(f"build_ext failed ({exc!r})")

    def build_extension(self, ext):  # noqa: D102
        compiler_type = self.compiler.compiler_type
        base_compile = list(ext.extra_compile_args or [])
        base_link = list(ext.extra_link_args or [])
        omp_compile = self.OPENMP_COMPILE.get(compiler_type, [])
        omp_link = self.OPENMP_LINK.get(compiler_type, [])
        try:
            ext.extra_compile_args = base_compile + omp_compile
            ext.extra_link_args = base_link + omp_link
            super().build_extension(ext)
            return
        except Exception:
            pass
        try:
            ext.extra_compile_args = base_compile
            ext.extra_link_args = base_link
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - depends on toolchain
            self._warn(f"compiling {ext.name} failed ({exc!r})")

    @staticmethod
    def _warn(reason: str) -> None:
        print(f"WARNING: {reason}; continuing with the pure-NumPy "
              "kernel tier (source-only install)", file=sys.stderr)


def _extensions() -> list[Extension]:
    if os.environ.get(BUILD_NATIVE_ENV, "1") in ("0", "false", "off"):
        return []
    include = _numpy_include()
    if include is None:
        return []
    if os.name == "nt":  # pragma: no cover - windows toolchain
        flags = ["/O2", "/fp:precise"]
    else:
        # -ffp-contract=off is load-bearing: a fused multiply-add would
        # round differently from NumPy's separate multiply and add, and
        # the loader's import-time probe would reject the build.
        flags = ["-O3", "-std=c99", "-ffp-contract=off"]
    return [Extension(
        "repro._kernels._native._nativecore",
        sources=["src/repro/_kernels/_native/_nativecore.c"],
        include_dirs=[include],
        extra_compile_args=flags,
    )]


setup(
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    ext_modules=_extensions(),
    cmdclass={"build_ext": OptionalBuildExt},
)
