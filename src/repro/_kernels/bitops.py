"""Vectorized ``uint64`` bit manipulation for the XOR codecs.

Gorilla and Chimp both need, per value, the XOR with the previous value and
that XOR's leading/trailing-zero counts.  Computing these one Python integer
at a time costs a few µs per value; the helpers here produce the whole
stream in a handful of NumPy passes so the encoder's Python loop is reduced
to the control-code branch.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array

__all__ = ["clz64", "ctz64", "popcount64", "xor_stream"]

_U64 = np.uint64


def _popcount64_swar(x: np.ndarray) -> np.ndarray:
    """Portable SWAR popcount for ``uint64`` arrays (NumPy < 2 fallback)."""
    x = x - ((x >> _U64(1)) & _U64(0x5555555555555555))
    x = (x & _U64(0x3333333333333333)) + ((x >> _U64(2)) & _U64(0x3333333333333333))
    x = (x + (x >> _U64(4))) & _U64(0x0F0F0F0F0F0F0F0F)
    with np.errstate(over="ignore"):
        return (x * _U64(0x0101010101010101)) >> _U64(56)


#: Vectorized popcount: NumPy's native ufunc when available (>= 2.0),
#: otherwise the SWAR fallback above.
popcount64 = getattr(np, "bitwise_count", _popcount64_swar)


def clz64(x) -> np.ndarray:
    """Leading-zero count of each ``uint64`` (64 for zero), vectorized.

    Smears the highest set bit downwards so the popcount equals
    ``64 - clz``.
    """
    y = np.asarray(x, dtype=_U64).copy()
    for shift in (1, 2, 4, 8, 16, 32):
        y |= y >> _U64(shift)
    return (64 - popcount64(y)).astype(np.int64)


def ctz64(x) -> np.ndarray:
    """Trailing-zero count of each ``uint64`` (64 for zero), vectorized.

    ``(x & -x) - 1`` is a mask of the trailing zeros; for ``x == 0`` the
    subtraction wraps to all-ones, giving 64 — exactly the convention the
    codecs use.
    """
    x = np.asarray(x, dtype=_U64)
    with np.errstate(over="ignore"):
        mask = (x & (~x + _U64(1))) - _U64(1)
    return popcount64(mask).astype(np.int64)


def xor_stream(values) -> tuple[np.ndarray, np.ndarray]:
    """Bit patterns and successive XORs of a float64 series.

    Returns ``(bits, xors)`` where ``bits`` is the ``uint64`` view of the
    validated series and ``xors[i] = bits[i+1] ^ bits[i]``.
    """
    floats = as_float_array(values)
    bits = floats.view(_U64)
    return bits, bits[1:] ^ bits[:-1]
