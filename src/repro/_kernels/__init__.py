"""Vectorized hot-path kernels.

This package hosts the low-level, performance-critical primitives the rest
of the library routes through:

* :mod:`repro._kernels.bitpack` — block-wise (word-at-a-time) bitstream
  writer/reader with batch pack/unpack APIs,
* :mod:`repro._kernels.bitops` — vectorized ``uint64`` bit manipulation
  (leading/trailing-zero counts, XOR streams) used by the Gorilla and Chimp
  encoders,
* :mod:`repro._kernels.pacf` — the batched Durbin-Levinson recursion that
  turns many candidate ACF rows into PACF rows at once (the
  ``statistic="pacf"`` hot path),
* :mod:`repro._kernels.reference` — the original per-bit / per-row
  implementations, kept as the ground truth for bit-exact cross-checks and
  as the baseline the perf harness measures speedups against.

Everything in here is pure NumPy + Python integers; there are no native
extensions, so the kernels work wherever the library imports.
"""

from .bitops import clz64, ctz64, xor_stream
from .bitpack import BlockBitReader, BlockBitWriter, pack_bits, words_to_bytes
from .pacf import pacf_from_acf_batched

__all__ = [
    "BlockBitWriter",
    "BlockBitReader",
    "pack_bits",
    "words_to_bytes",
    "clz64",
    "ctz64",
    "xor_stream",
    "pacf_from_acf_batched",
]
