"""Vectorized hot-path kernels.

This package hosts the low-level, performance-critical primitives the rest
of the library routes through:

* :mod:`repro._kernels.bitpack` — block-wise (word-at-a-time) bitstream
  writer/reader with batch pack/unpack APIs,
* :mod:`repro._kernels.bitops` — vectorized ``uint64`` bit manipulation
  (leading/trailing-zero counts, XOR streams) used by the Gorilla and Chimp
  encoders,
* :mod:`repro._kernels.reference` — the original per-bit implementations,
  kept as the ground truth for bit-exact cross-checks and as the baseline
  the perf harness measures speedups against.

Everything in here is pure NumPy + Python integers; there are no native
extensions, so the kernels work wherever the library imports.
"""

from .bitops import clz64, ctz64, xor_stream
from .bitpack import BlockBitReader, BlockBitWriter, pack_bits, words_to_bytes

__all__ = [
    "BlockBitWriter",
    "BlockBitReader",
    "pack_bits",
    "words_to_bytes",
    "clz64",
    "ctz64",
    "xor_stream",
]
