"""Vectorized hot-path kernels and the native-tier dispatch.

This package hosts the low-level, performance-critical primitives the rest
of the library routes through:

* :mod:`repro._kernels.bitpack` — block-wise (word-at-a-time) bitstream
  writer/reader with batch pack/unpack APIs,
* :mod:`repro._kernels.bitops` — vectorized ``uint64`` bit manipulation
  (leading/trailing-zero counts, XOR streams) used by the Gorilla and Chimp
  encoders,
* :mod:`repro._kernels.pacf` — the batched Durbin-Levinson recursion that
  turns many candidate ACF rows into PACF rows at once (the
  ``statistic="pacf"`` hot path),
* :mod:`repro._kernels._native` — the *optional* compiled tier: the fused
  interior-segment ReHeap ACF kernel, the indexed-min-heap primitives, and
  the greedy-pop gap deltas as C loops (OpenMP when available), verified
  bit-identical to the NumPy kernels at import time,
* :mod:`repro._kernels.reference` — the original per-bit / per-row
  implementations, kept as the ground truth for bit-exact cross-checks and
  as the baseline the perf harness measures speedups against.

Kernel tiers resolve here.  The NumPy kernels work everywhere (a
source-only install never needs a compiler); when the native extension is
built *and* passes its import-time bit-identity self-check, the hot paths
in :mod:`repro.core` route through it instead.  ``REPRO_NATIVE=0``
force-disables the native tier (kill switch); :func:`active_tier` reports
what each kernel resolved to, and :func:`set_native_enabled` flips the
tier in-process (used by the tests that run both tiers).
"""

from __future__ import annotations

import os

from . import _native
from .bitops import clz64, ctz64, xor_stream
from .bitpack import BlockBitReader, BlockBitWriter, pack_bits, words_to_bytes
from .pacf import pacf_from_acf_batched

__all__ = [
    "BlockBitWriter",
    "BlockBitReader",
    "pack_bits",
    "words_to_bytes",
    "clz64",
    "ctz64",
    "xor_stream",
    "pacf_from_acf_batched",
    "native_available",
    "native_enabled",
    "set_native_enabled",
    "get_native",
    "active_tier",
    "describe_tiers",
    "native_build_info",
]

#: Kill switch: ``REPRO_NATIVE=0`` (or ``false``/``off``) forces the
#: pure-NumPy kernels even when the extension is built.
NATIVE_ENV = "REPRO_NATIVE"

#: The kernels with a native implementation (reported by active_tier).
_NATIVE_KERNELS = ("interior_acf_block", "heap", "gap_deltas")


def _env_allows_native() -> bool:
    return os.environ.get(NATIVE_ENV, "1").lower() not in ("0", "false", "off")


_native_enabled = _env_allows_native()


def native_available() -> bool:
    """Is the compiled extension built and admitted by its self-check?"""
    return _native.MODULE is not None


def native_enabled() -> bool:
    """Is the native tier both available and not disabled?"""
    return _native_enabled and _native.MODULE is not None


def set_native_enabled(enabled: bool | None = None) -> None:
    """Enable/disable the native tier in-process.

    ``None`` re-reads the ``REPRO_NATIVE`` environment variable.  Enabling
    has no effect when the extension is not built — the tier stays
    ``numpy`` and :func:`active_tier` says so.
    """
    global _native_enabled
    _native_enabled = _env_allows_native() if enabled is None else bool(enabled)


def get_native():
    """The native module when the tier is active, else ``None``.

    This is the hot-path dispatch hook: callers fetch it once per kernel
    invocation and fall back to their NumPy formulation on ``None``.
    """
    return _native.MODULE if _native_enabled else None


def native_build_info() -> dict:
    """Compiler / OpenMP / admission metadata of the native build."""
    return dict(_native.BUILD_INFO)


def active_tier() -> dict[str, str]:
    """Which tier (``"native"``/``"numpy"``) each kernel resolves to."""
    tier = "native" if native_enabled() else "numpy"
    return {kernel: tier for kernel in _NATIVE_KERNELS}


def describe_tiers() -> str:
    """One-line human-readable tier summary for CLI output."""
    info = _native.BUILD_INFO
    if native_enabled():
        threads = info.get("max_threads", 1)
        omp = f"OpenMP x{threads}" if info.get("openmp") else "no OpenMP"
        return (f"native ({', '.join(_NATIVE_KERNELS)}; "
                f"{info.get('compiler', 'unknown')}, {omp})")
    if native_available():
        return "numpy (native extension built but disabled via REPRO_NATIVE=0)"
    return f"numpy (native extension {info.get('status', 'unavailable')})"
