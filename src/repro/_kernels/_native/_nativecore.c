/* Compiled kernel tier for the CAMEO hot path.
 *
 * Implements, in portable C99:
 *
 *   - ``interior_acf_block``: the interior-segment ReHeap ACF kernel as one
 *     fused loop per segment — per-segment delta/energy sums, the head/tail
 *     lag gathers, and the pairable-lag cross terms — parallelised over the
 *     segment axis with OpenMP when available, with no ``(T, L)``
 *     temporaries;
 *   - the indexed-min-heap primitives (sift, push, pop, remove, update,
 *     bulk push/update, destructive multi-pop, non-destructive frontier
 *     peek) operating on flat float64/int64 arrays owned by the caller;
 *   - ``gap_deltas``: the per-gap linear re-interpolation deltas of the
 *     greedy pop step.
 *
 * Bit-identity contract: every function reproduces the NumPy formulation
 * of the same computation *bit for bit*.  Two ingredients make that
 * possible:
 *
 *   1. Segment reductions replicate ``np.add.reduceat``'s accumulation
 *      order exactly: the segment's first element plus NumPy's scalar
 *      pairwise summation of the rest (sequential below 8 elements, an
 *      8-accumulator unrolled block up to 128, and a recursive split at a
 *      multiple-of-8 midpoint above that).  The loader cross-checks this
 *      model against the running NumPy at import time and refuses the
 *      native tier on mismatch (e.g. a NumPy built with a SIMD pairwise
 *      path for strides this file does not model).
 *   2. The build disables floating-point contraction (``-ffp-contract=off``
 *      and the ``FP_CONTRACT OFF`` pragma): a fused multiply-add would
 *      round differently from NumPy's separate multiply and add.  The
 *      loader probes for contraction at import time as well.
 *
 * Everything else (multiply, divide, sqrt, compares) is IEEE-754-exact and
 * therefore matches NumPy's elementwise ufuncs operand for operand.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

#include <math.h>
#include <stdlib.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#ifdef __STDC_VERSION__
#if __STDC_VERSION__ >= 199901L
#pragma STDC FP_CONTRACT OFF
#endif
#endif

/* ------------------------------------------------------------------ */
/* argument validation helpers                                         */
/* ------------------------------------------------------------------ */

static int
check_1d(PyArrayObject *arr, int typenum, const char *name, const char *tyname)
{
    if (PyArray_TYPE(arr) != typenum || PyArray_NDIM(arr) != 1
            || !PyArray_IS_C_CONTIGUOUS(arr)) {
        PyErr_Format(PyExc_ValueError,
                     "%s must be a C-contiguous 1-D %s array", name, tyname);
        return 0;
    }
    return 1;
}

#define CHECK_F64(arr, name) check_1d((arr), NPY_FLOAT64, (name), "float64")
#define CHECK_I64(arr, name) check_1d((arr), NPY_INT64, (name), "int64")

/* ------------------------------------------------------------------ */
/* np.add.reduceat accumulation model                                  */
/* ------------------------------------------------------------------ */

/* NumPy's scalar pairwise summation (numpy/_core/src/umath/loops.c.src,
 * ``pairwise_sum_DOUBLE``), transcribed for unit stride.  The 8
 * partial-sum chains are kept in distinct variables and combined in the
 * exact association order NumPy uses; without -ffast-math the compiler
 * may not reassociate them. */
static double
pairwise_sum(const double *a, npy_intp n)
{
    npy_intp i;

    if (n < 8) {
        double res = 0.0;
        for (i = 0; i < n; i++) {
            res += a[i];
        }
        return res;
    }
    if (n <= 128) {
        double res;
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i + 0];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) {
            res += a[i];
        }
        return res;
    }
    {
        /* divide by two but avoid non-multiples of unroll factor */
        npy_intp n2 = n / 2;
        n2 -= n2 % 8;
        return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
    }
}

/* One ``np.add.reduceat`` segment: the reduction is seeded with the
 * segment's first element, then the pairwise sum of the remainder is
 * added. */
static double
reduceat_sum(const double *a, npy_intp n)
{
    if (n <= 0) {
        return 0.0;
    }
    return a[0] + pairwise_sum(a + 1, n - 1);
}

/* ------------------------------------------------------------------ */
/* interior-segment ReHeap ACF kernel                                  */
/* ------------------------------------------------------------------ */

static void
interior_segment_row(const double *current, npy_intp n,
                     const double *counts, const double *sx,
                     const double *sxl, const double *sx2,
                     const double *sx2l, const double *sxxl,
                     npy_intp num_lags,
                     const double *deltas_all, npy_intp total,
                     const npy_int64 *pos, const double *d,
                     npy_intp off, npy_intp len,
                     int has_cross, npy_intp num_cross_lags, int use_bincount,
                     double *buf, double *row)
{
    npy_intp t, j;
    double d_seg, e_seg;

    d_seg = reduceat_sum(d, len);
    for (t = 0; t < len; t++) {
        /* energy = delta * (2*old + delta) */
        buf[t] = d[t] * (2.0 * current[pos[t]] + d[t]);
    }
    e_seg = reduceat_sum(buf, len);

    for (j = 0; j < num_lags; j++) {
        const npy_intp lag = j + 1;
        double d_head, d_tail;
        double new_sx, new_sxl, new_sx2, new_sx2l, new_sxxl;
        double numerator, var_head, var_tail;

        for (t = 0; t < len; t++) {
            /* interior segments guarantee pos±lag stays in range; the
             * clip mirrors np.take(..., mode="clip") defensively. */
            npy_intp idx = pos[t] + lag;
            if (idx > n - 1) {
                idx = n - 1;
            }
            buf[t] = d[t] * current[idx];
        }
        d_head = reduceat_sum(buf, len);
        for (t = 0; t < len; t++) {
            npy_intp idx = pos[t] - lag;
            if (idx < 0) {
                idx = 0;
            }
            buf[t] = d[t] * current[idx];
        }
        d_tail = reduceat_sum(buf, len);

        new_sx = sx[j] + d_seg;
        new_sxl = sxl[j] + d_seg;
        new_sx2 = sx2[j] + e_seg;
        new_sx2l = sx2l[j] + e_seg;
        /* same association order as the NumPy kernel */
        new_sxxl = (sxxl[j] + d_head) + d_tail;

        if (has_cross) {
            double cross = 0.0;
            if (j < num_cross_lags) {
                if (use_bincount) {
                    /* np.bincount accumulates sequentially in increasing
                     * index order, starting from zero. */
                    for (t = lag; t < len; t++) {
                        cross += d[t] * d[t - lag];
                    }
                }
                else {
                    /* Partner-matrix path: masked products (preserving
                     * the sign of masked zeros) reduced per segment with
                     * the reduceat model. */
                    const npy_intp seg_end = off + len;
                    for (t = 0; t < len; t++) {
                        const npy_intp g = off + t;
                        npy_intp partner = g + lag;
                        npy_intp clipped =
                            partner < total ? partner : total - 1;
                        double prod = deltas_all[g] * deltas_all[clipped];
                        double keep =
                            (partner < total && partner < seg_end)
                            ? 1.0 : 0.0;
                        buf[t] = prod * keep;
                    }
                    cross = reduceat_sum(buf, len);
                }
            }
            new_sxxl = new_sxxl + cross;
        }

        numerator = counts[j] * new_sxxl - new_sx * new_sxl;
        var_head = counts[j] * new_sx2 - new_sx * new_sx;
        var_tail = counts[j] * new_sx2l - new_sxl * new_sxl;
        if (var_head > 0.0 && var_tail > 0.0) {
            row[j] = numerator / sqrt(var_head * var_tail);
        }
        else {
            row[j] = 0.0;
        }
    }
}

static PyObject *
py_interior_acf_block(PyObject *self, PyObject *args)
{
    PyArrayObject *current, *counts, *sx, *sxl, *sx2, *sx2l, *sxxl;
    PyArrayObject *lens, *offsets, *positions, *deltas, *out;
    long max_len_arg;
    npy_intp num_segments, num_lags, total, n, max_len;
    int has_cross, use_bincount;
    npy_intp num_cross_lags;
    const double *current_p, *counts_p, *sx_p, *sxl_p, *sx2_p, *sx2l_p, *sxxl_p;
    const double *deltas_p;
    const npy_int64 *lens_p, *offsets_p, *positions_p;
    double *out_p;
    double *scratch;
    int nthreads = 1;
    npy_intp s;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!O!O!O!O!O!lO!",
                          &PyArray_Type, &current, &PyArray_Type, &counts,
                          &PyArray_Type, &sx, &PyArray_Type, &sxl,
                          &PyArray_Type, &sx2, &PyArray_Type, &sx2l,
                          &PyArray_Type, &sxxl, &PyArray_Type, &lens,
                          &PyArray_Type, &offsets, &PyArray_Type, &positions,
                          &PyArray_Type, &deltas, &max_len_arg,
                          &PyArray_Type, &out)) {
        return NULL;
    }
    if (!CHECK_F64(current, "current") || !CHECK_F64(counts, "counts")
            || !CHECK_F64(sx, "sx") || !CHECK_F64(sxl, "sxl")
            || !CHECK_F64(sx2, "sx2") || !CHECK_F64(sx2l, "sx2l")
            || !CHECK_F64(sxxl, "sxxl") || !CHECK_I64(lens, "lens")
            || !CHECK_I64(offsets, "offsets")
            || !CHECK_I64(positions, "positions")
            || !CHECK_F64(deltas, "deltas")) {
        return NULL;
    }
    if (PyArray_TYPE(out) != NPY_FLOAT64 || PyArray_NDIM(out) != 2
            || !PyArray_IS_C_CONTIGUOUS(out)) {
        PyErr_SetString(PyExc_ValueError,
                        "out must be a C-contiguous 2-D float64 array");
        return NULL;
    }
    num_segments = PyArray_DIM(lens, 0);
    num_lags = PyArray_DIM(counts, 0);
    total = PyArray_DIM(deltas, 0);
    n = PyArray_DIM(current, 0);
    max_len = (npy_intp)max_len_arg;
    if (PyArray_DIM(out, 0) != num_segments
            || PyArray_DIM(out, 1) != num_lags
            || PyArray_DIM(offsets, 0) != num_segments
            || PyArray_DIM(positions, 0) != total
            || PyArray_DIM(sx, 0) != num_lags || max_len <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "inconsistent interior_acf_block array shapes");
        return NULL;
    }

    current_p = (const double *)PyArray_DATA(current);
    counts_p = (const double *)PyArray_DATA(counts);
    sx_p = (const double *)PyArray_DATA(sx);
    sxl_p = (const double *)PyArray_DATA(sxl);
    sx2_p = (const double *)PyArray_DATA(sx2);
    sx2l_p = (const double *)PyArray_DATA(sx2l);
    sxxl_p = (const double *)PyArray_DATA(sxxl);
    lens_p = (const npy_int64 *)PyArray_DATA(lens);
    offsets_p = (const npy_int64 *)PyArray_DATA(offsets);
    positions_p = (const npy_int64 *)PyArray_DATA(positions);
    deltas_p = (const double *)PyArray_DATA(deltas);
    out_p = (double *)PyArray_DATA(out);

    /* cross-term path selection, decided for the whole block exactly as
     * _segment_cross_terms does */
    has_cross = max_len > 1;
    num_cross_lags = max_len - 1 < num_lags ? max_len - 1 : num_lags;
    use_bincount = num_cross_lags <= 8;

#ifdef _OPENMP
    nthreads = omp_get_max_threads();
#endif
    scratch = (double *)malloc((size_t)nthreads * (size_t)max_len
                               * sizeof(double));
    if (scratch == NULL) {
        return PyErr_NoMemory();
    }

    Py_BEGIN_ALLOW_THREADS
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (num_segments > 1 && total * num_lags > 16384)
#endif
    for (s = 0; s < num_segments; s++) {
        int tid = 0;
#ifdef _OPENMP
        tid = omp_get_thread_num();
#endif
        interior_segment_row(current_p, n, counts_p, sx_p, sxl_p, sx2_p,
                             sx2l_p, sxxl_p, num_lags, deltas_p, total,
                             positions_p + offsets_p[s],
                             deltas_p + offsets_p[s],
                             offsets_p[s], (npy_intp)lens_p[s],
                             has_cross, num_cross_lags, use_bincount,
                             scratch + (npy_intp)tid * max_len,
                             out_p + s * num_lags);
    }
    Py_END_ALLOW_THREADS

    free(scratch);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* gap re-interpolation deltas                                         */
/* ------------------------------------------------------------------ */

static PyObject *
py_gap_deltas(PyObject *self, PyObject *args)
{
    PyArrayObject *current;
    long left_arg, right_arg;
    npy_intp left, right, n, m, i;
    const double *cur;
    double *out_p;
    double span, cl, cr;
    npy_intp dims[1];
    PyObject *out;

    if (!PyArg_ParseTuple(args, "O!ll", &PyArray_Type, &current,
                          &left_arg, &right_arg)) {
        return NULL;
    }
    if (!CHECK_F64(current, "current")) {
        return NULL;
    }
    left = (npy_intp)left_arg;
    right = (npy_intp)right_arg;
    n = PyArray_DIM(current, 0);
    if (left < 0 || right >= n || right - left < 2) {
        PyErr_SetString(PyExc_ValueError, "invalid gap bounds");
        return NULL;
    }
    m = right - left - 1;
    dims[0] = m;
    out = PyArray_SimpleNew(1, dims, NPY_FLOAT64);
    if (out == NULL) {
        return NULL;
    }
    cur = (const double *)PyArray_DATA(current);
    out_p = (double *)PyArray_DATA((PyArrayObject *)out);
    span = (double)(right - left);
    cl = cur[left];
    cr = cur[right];
    for (i = 0; i < m; i++) {
        const double w = (double)(i + 1) / span;
        const double new_value = cl * (1.0 - w) + cr * w;
        out_p[i] = new_value - cur[left + 1 + i];
    }
    return out;
}

/* ------------------------------------------------------------------ */
/* indexed min-heap on flat arrays                                     */
/* ------------------------------------------------------------------ */

#define HEAP_ABSENT (-1)

typedef struct {
    double *keys;
    npy_int64 *items;
    npy_int64 *slot_of;
    npy_intp capacity;
} heap_t;

/* Parse and validate the three storage arrays shared by every heap
 * function.  Returns 0 and sets an exception on failure. */
static int
heap_from_objects(PyArrayObject *keys, PyArrayObject *items,
                  PyArrayObject *slot_of, heap_t *heap)
{
    if (!CHECK_F64(keys, "keys") || !CHECK_I64(items, "items")
            || !CHECK_I64(slot_of, "slot_of")) {
        return 0;
    }
    if (PyArray_DIM(keys, 0) != PyArray_DIM(items, 0)
            || PyArray_DIM(keys, 0) != PyArray_DIM(slot_of, 0)) {
        PyErr_SetString(PyExc_ValueError,
                        "heap storage arrays must share one capacity");
        return 0;
    }
    heap->keys = (double *)PyArray_DATA(keys);
    heap->items = (npy_int64 *)PyArray_DATA(items);
    heap->slot_of = (npy_int64 *)PyArray_DATA(slot_of);
    heap->capacity = PyArray_DIM(keys, 0);
    return 1;
}

static void
heap_swap(heap_t *h, npy_intp a, npy_intp b)
{
    const double key = h->keys[a];
    const npy_int64 item = h->items[a];
    h->keys[a] = h->keys[b];
    h->items[a] = h->items[b];
    h->keys[b] = key;
    h->items[b] = item;
    h->slot_of[h->items[a]] = a;
    h->slot_of[h->items[b]] = b;
}

static void
heap_sift_up(heap_t *h, npy_intp slot)
{
    while (slot > 0) {
        const npy_intp parent = (slot - 1) / 2;
        if (h->keys[slot] < h->keys[parent]) {
            heap_swap(h, slot, parent);
            slot = parent;
        }
        else {
            break;
        }
    }
}

static void
heap_sift_down(heap_t *h, npy_intp size, npy_intp slot)
{
    for (;;) {
        const npy_intp left = 2 * slot + 1;
        const npy_intp right = left + 1;
        npy_intp smallest = slot;
        if (left < size && h->keys[left] < h->keys[smallest]) {
            smallest = left;
        }
        if (right < size && h->keys[right] < h->keys[smallest]) {
            smallest = right;
        }
        if (smallest == slot) {
            return;
        }
        heap_swap(h, slot, smallest);
        slot = smallest;
    }
}

/* Mirror of IndexedMinHeap._remove_slot; returns the new size. */
static npy_intp
heap_remove_slot(heap_t *h, npy_intp size, npy_intp slot)
{
    const npy_intp last = size - 1;
    h->slot_of[h->items[slot]] = HEAP_ABSENT;
    if (slot != last) {
        h->items[slot] = h->items[last];
        h->keys[slot] = h->keys[last];
        h->slot_of[h->items[slot]] = slot;
    }
    if (slot < last) {
        /* the moved entry may need to travel either direction */
        heap_sift_down(h, last, slot);
        heap_sift_up(h, slot);
    }
    return last;
}

static npy_intp
heap_do_push(heap_t *h, npy_intp size, npy_int64 item, double key)
{
    h->items[size] = item;
    h->keys[size] = key;
    h->slot_of[item] = size;
    heap_sift_up(h, size);
    return size + 1;
}

static PyObject *
py_heap_heapify(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of;
    Py_ssize_t size;
    heap_t h;
    npy_intp slot;

    if (!PyArg_ParseTuple(args, "O!O!O!n", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)) {
        return NULL;
    }
    for (slot = (npy_intp)size / 2 - 1; slot >= 0; slot--) {
        heap_sift_down(&h, (npy_intp)size, slot);
    }
    Py_RETURN_NONE;
}

static PyObject *
py_heap_push(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of;
    Py_ssize_t size;
    long long item;
    double key;
    heap_t h;

    if (!PyArg_ParseTuple(args, "O!O!O!nLd", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size, &item, &key)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)) {
        return NULL;
    }
    if (item < 0 || item >= h.capacity) {
        PyErr_Format(PyExc_ValueError, "item %lld out of range [0, %ld)",
                     item, (long)h.capacity);
        return NULL;
    }
    if (h.slot_of[item] != HEAP_ABSENT) {
        PyErr_Format(PyExc_ValueError,
                     "item %lld is already in the heap; use update()", item);
        return NULL;
    }
    return PyLong_FromSsize_t(
        (Py_ssize_t)heap_do_push(&h, (npy_intp)size, (npy_int64)item, key));
}

static PyObject *
py_heap_pop(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of;
    Py_ssize_t size;
    heap_t h;
    npy_int64 item;
    double key;
    npy_intp new_size;

    if (!PyArg_ParseTuple(args, "O!O!O!n", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)) {
        return NULL;
    }
    if (size <= 0) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty heap");
        return NULL;
    }
    item = h.items[0];
    key = h.keys[0];
    new_size = heap_remove_slot(&h, (npy_intp)size, 0);
    return Py_BuildValue("Ldn", (long long)item, key, (Py_ssize_t)new_size);
}

static PyObject *
py_heap_pop_many(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of, *out_items, *out_keys;
    Py_ssize_t size, k;
    heap_t h;
    npy_intp cur, i, take;
    npy_int64 *oi;
    double *ok;

    if (!PyArg_ParseTuple(args, "O!O!O!nnO!O!", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size, &k, &PyArray_Type, &out_items,
                          &PyArray_Type, &out_keys)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)
            || !CHECK_I64(out_items, "out_items")
            || !CHECK_F64(out_keys, "out_keys")) {
        return NULL;
    }
    take = (npy_intp)(k < size ? k : size);
    if (PyArray_DIM(out_items, 0) < take || PyArray_DIM(out_keys, 0) < take) {
        PyErr_SetString(PyExc_ValueError, "pop_many output arrays too small");
        return NULL;
    }
    oi = (npy_int64 *)PyArray_DATA(out_items);
    ok = (double *)PyArray_DATA(out_keys);
    cur = (npy_intp)size;
    for (i = 0; i < take; i++) {
        oi[i] = h.items[0];
        ok[i] = h.keys[0];
        cur = heap_remove_slot(&h, cur, 0);
    }
    return PyLong_FromSsize_t((Py_ssize_t)cur);
}

/* Non-destructive frontier walk.  The frontier is a little (key, slot)
 * min-heap ordered lexicographically — the same order heapq gives the
 * (key, slot) tuples in the Python implementation.  Each extraction
 * removes the unique minimum, so the produced sequence is identical. */
typedef struct {
    double key;
    npy_intp slot;
} frontier_entry;

static int
frontier_less(const frontier_entry *a, const frontier_entry *b)
{
    if (a->key != b->key) {
        return a->key < b->key;
    }
    return a->slot < b->slot;
}

static void
frontier_push(frontier_entry *f, npy_intp *count, double key, npy_intp slot)
{
    npy_intp i = (*count)++;
    f[i].key = key;
    f[i].slot = slot;
    while (i > 0) {
        const npy_intp parent = (i - 1) / 2;
        if (frontier_less(&f[i], &f[parent])) {
            const frontier_entry tmp = f[i];
            f[i] = f[parent];
            f[parent] = tmp;
            i = parent;
        }
        else {
            break;
        }
    }
}

static frontier_entry
frontier_pop(frontier_entry *f, npy_intp *count)
{
    const frontier_entry result = f[0];
    npy_intp size = --(*count);
    npy_intp i = 0;
    f[0] = f[size];
    for (;;) {
        const npy_intp left = 2 * i + 1;
        const npy_intp right = left + 1;
        npy_intp smallest = i;
        if (left < size && frontier_less(&f[left], &f[smallest])) {
            smallest = left;
        }
        if (right < size && frontier_less(&f[right], &f[smallest])) {
            smallest = right;
        }
        if (smallest == i) {
            break;
        }
        {
            const frontier_entry tmp = f[i];
            f[i] = f[smallest];
            f[smallest] = tmp;
            i = smallest;
        }
    }
    return result;
}

static PyObject *
py_heap_peek_many(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *out_items, *out_keys;
    Py_ssize_t size, k;
    npy_intp take, count, index;
    const double *keys_p;
    const npy_int64 *items_p;
    npy_int64 *oi;
    double *ok;
    frontier_entry *frontier;

    if (!PyArg_ParseTuple(args, "O!O!nnO!O!", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &size, &k,
                          &PyArray_Type, &out_items,
                          &PyArray_Type, &out_keys)) {
        return NULL;
    }
    if (!CHECK_F64(keys, "keys") || !CHECK_I64(items, "items")
            || !CHECK_I64(out_items, "out_items")
            || !CHECK_F64(out_keys, "out_keys")) {
        return NULL;
    }
    take = (npy_intp)(k < size ? k : size);
    if (take <= 0) {
        return PyLong_FromSsize_t(0);
    }
    if (PyArray_DIM(out_items, 0) < take || PyArray_DIM(out_keys, 0) < take) {
        PyErr_SetString(PyExc_ValueError, "peek_many output arrays too small");
        return NULL;
    }
    keys_p = (const double *)PyArray_DATA(keys);
    items_p = (const npy_int64 *)PyArray_DATA(items);
    oi = (npy_int64 *)PyArray_DATA(out_items);
    ok = (double *)PyArray_DATA(out_keys);
    frontier = (frontier_entry *)malloc((size_t)(2 * take + 2)
                                        * sizeof(frontier_entry));
    if (frontier == NULL) {
        return PyErr_NoMemory();
    }
    count = 0;
    frontier_push(frontier, &count, keys_p[0], 0);
    for (index = 0; index < take; index++) {
        const frontier_entry top = frontier_pop(frontier, &count);
        const npy_intp left = 2 * top.slot + 1;
        oi[index] = items_p[top.slot];
        ok[index] = top.key;
        if (left < (npy_intp)size) {
            frontier_push(frontier, &count, keys_p[left], left);
            if (left + 1 < (npy_intp)size) {
                frontier_push(frontier, &count, keys_p[left + 1], left + 1);
            }
        }
    }
    free(frontier);
    return PyLong_FromSsize_t((Py_ssize_t)take);
}

static PyObject *
py_heap_remove(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of;
    Py_ssize_t size;
    long long item;
    heap_t h;
    npy_int64 slot;

    if (!PyArg_ParseTuple(args, "O!O!O!nL", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size, &item)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)) {
        return NULL;
    }
    if (item < 0 || item >= h.capacity) {
        PyErr_Format(PyExc_IndexError, "item %lld out of range", item);
        return NULL;
    }
    slot = h.slot_of[item];
    if (slot == HEAP_ABSENT) {
        return PyLong_FromSsize_t(size);
    }
    return PyLong_FromSsize_t(
        (Py_ssize_t)heap_remove_slot(&h, (npy_intp)size, (npy_intp)slot));
}

static PyObject *
py_heap_update(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of;
    Py_ssize_t size;
    long long item;
    double key;
    heap_t h;
    npy_int64 slot;

    if (!PyArg_ParseTuple(args, "O!O!O!nLd", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size, &item, &key)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)) {
        return NULL;
    }
    if (item < 0 || item >= h.capacity) {
        PyErr_Format(PyExc_ValueError, "item %lld out of range [0, %ld)",
                     item, (long)h.capacity);
        return NULL;
    }
    slot = h.slot_of[item];
    if (slot == HEAP_ABSENT) {
        return PyLong_FromSsize_t(
            (Py_ssize_t)heap_do_push(&h, (npy_intp)size, (npy_int64)item,
                                     key));
    }
    {
        const double old = h.keys[slot];
        h.keys[slot] = key;
        if (key < old) {
            heap_sift_up(&h, (npy_intp)slot);
        }
        else if (key > old) {
            heap_sift_down(&h, (npy_intp)size, (npy_intp)slot);
        }
    }
    return PyLong_FromSsize_t(size);
}

/* Sequential per-item updates for update_many's small-batch path.  Every
 * item is known present; slots are re-resolved per item because an
 * earlier sift in the same batch may have moved a later item. */
static PyObject *
py_heap_update_present(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of, *upd_items, *upd_keys;
    Py_ssize_t size;
    heap_t h;
    const npy_int64 *ui;
    const double *uk;
    npy_intp count, i;

    if (!PyArg_ParseTuple(args, "O!O!O!nO!O!", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size, &PyArray_Type, &upd_items,
                          &PyArray_Type, &upd_keys)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)
            || !CHECK_I64(upd_items, "items") || !CHECK_F64(upd_keys, "keys")) {
        return NULL;
    }
    ui = (const npy_int64 *)PyArray_DATA(upd_items);
    uk = (const double *)PyArray_DATA(upd_keys);
    count = PyArray_DIM(upd_items, 0);
    for (i = 0; i < count; i++) {
        const npy_int64 slot = h.slot_of[ui[i]];
        const double old = h.keys[slot];
        const double key = uk[i];
        h.keys[slot] = key;
        if (key < old) {
            heap_sift_up(&h, (npy_intp)slot);
        }
        else if (key > old) {
            heap_sift_down(&h, (npy_intp)size, (npy_intp)slot);
        }
    }
    Py_RETURN_NONE;
}

/* Bulk push of pre-validated absent items (push_many / the absent half of
 * update_many).  Returns the new size. */
static PyObject *
py_heap_push_many(PyObject *self, PyObject *args)
{
    PyArrayObject *keys, *items, *slot_of, *new_items, *new_keys;
    Py_ssize_t size;
    heap_t h;
    const npy_int64 *ni;
    const double *nk;
    npy_intp count, i, cur;

    if (!PyArg_ParseTuple(args, "O!O!O!nO!O!", &PyArray_Type, &keys,
                          &PyArray_Type, &items, &PyArray_Type, &slot_of,
                          &size, &PyArray_Type, &new_items,
                          &PyArray_Type, &new_keys)) {
        return NULL;
    }
    if (!heap_from_objects(keys, items, slot_of, &h)
            || !CHECK_I64(new_items, "items") || !CHECK_F64(new_keys, "keys")) {
        return NULL;
    }
    ni = (const npy_int64 *)PyArray_DATA(new_items);
    nk = (const double *)PyArray_DATA(new_keys);
    count = PyArray_DIM(new_items, 0);
    if ((npy_intp)size + count > h.capacity) {
        PyErr_SetString(PyExc_ValueError, "push_many exceeds heap capacity");
        return NULL;
    }
    cur = (npy_intp)size;
    for (i = 0; i < count; i++) {
        cur = heap_do_push(&h, cur, ni[i], nk[i]);
    }
    return PyLong_FromSsize_t((Py_ssize_t)cur);
}

/* ------------------------------------------------------------------ */
/* import-time self-check hooks                                        */
/* ------------------------------------------------------------------ */

/* Per-segment sums under this module's reduceat model, for the loader's
 * bit-identity cross-check against the running NumPy. */
static PyObject *
py_reduceat_check(PyObject *self, PyObject *args)
{
    PyArrayObject *values, *offsets;
    const double *v;
    const npy_int64 *off;
    npy_intp n, s, num_segments;
    npy_intp dims[1];
    PyObject *out;
    double *out_p;

    if (!PyArg_ParseTuple(args, "O!O!", &PyArray_Type, &values,
                          &PyArray_Type, &offsets)) {
        return NULL;
    }
    if (!CHECK_F64(values, "values") || !CHECK_I64(offsets, "offsets")) {
        return NULL;
    }
    v = (const double *)PyArray_DATA(values);
    off = (const npy_int64 *)PyArray_DATA(offsets);
    n = PyArray_DIM(values, 0);
    num_segments = PyArray_DIM(offsets, 0);
    dims[0] = num_segments;
    out = PyArray_SimpleNew(1, dims, NPY_FLOAT64);
    if (out == NULL) {
        return NULL;
    }
    out_p = (double *)PyArray_DATA((PyArrayObject *)out);
    for (s = 0; s < num_segments; s++) {
        const npy_intp start = (npy_intp)off[s];
        const npy_intp stop = s + 1 < num_segments ? (npy_intp)off[s + 1] : n;
        out_p[s] = reduceat_sum(v + start, stop - start);
    }
    return out;
}

/* ``a*b - a*b`` in the shape the ACF numerator uses.  Exactly 0.0 unless
 * the compiler contracted one of the products into an FMA. */
static PyObject *
py_fma_probe(PyObject *self, PyObject *args)
{
    double a, b;

    if (!PyArg_ParseTuple(args, "dd", &a, &b)) {
        return NULL;
    }
    {
        /* volatile blocks common-subexpression elimination, so the second
         * product stays eligible for contraction into the subtraction */
        volatile double va = a, vb = b;
        const double first = va * vb;
        const double result = va * vb - first;
        return PyFloat_FromDouble(result);
    }
}

/* ------------------------------------------------------------------ */
/* build / threading introspection                                     */
/* ------------------------------------------------------------------ */

static PyObject *
py_build_info(PyObject *self, PyObject *args)
{
#if defined(__clang__)
    const char *compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
#define REPRO_STR2(x) #x
#define REPRO_STR(x) REPRO_STR2(x)
    const char *compiler = "gcc " REPRO_STR(__GNUC__) "."
        REPRO_STR(__GNUC_MINOR__) "." REPRO_STR(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
    const char *compiler = "msvc";
#else
    const char *compiler = "unknown";
#endif
#ifdef _OPENMP
    const int openmp = 1;
    const int threads = omp_get_max_threads();
#else
    const int openmp = 0;
    const int threads = 1;
#endif
    return Py_BuildValue("{s:s, s:i, s:i}", "compiler", compiler,
                         "openmp", openmp, "max_threads", threads);
}

static PyObject *
py_set_num_threads(PyObject *self, PyObject *args)
{
    int n;

    if (!PyArg_ParseTuple(args, "i", &n)) {
        return NULL;
    }
    if (n <= 0) {
        PyErr_SetString(PyExc_ValueError, "thread count must be positive");
        return NULL;
    }
#ifdef _OPENMP
    omp_set_num_threads(n);
#endif
    Py_RETURN_NONE;
}

static PyObject *
py_get_max_threads(PyObject *self, PyObject *args)
{
#ifdef _OPENMP
    return PyLong_FromLong(omp_get_max_threads());
#else
    return PyLong_FromLong(1);
#endif
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef nativecore_methods[] = {
    {"interior_acf_block", py_interior_acf_block, METH_VARARGS,
     "Fused interior-segment ReHeap ACF kernel (fills `out` in place)."},
    {"gap_deltas", py_gap_deltas, METH_VARARGS,
     "Linear re-interpolation deltas for positions inside (left, right)."},
    {"heap_heapify", py_heap_heapify, METH_VARARGS,
     "Floyd heapify of the first `size` slots."},
    {"heap_push", py_heap_push, METH_VARARGS,
     "Push one (item, key); returns the new size."},
    {"heap_pop", py_heap_pop, METH_VARARGS,
     "Pop the minimum; returns (item, key, new_size)."},
    {"heap_pop_many", py_heap_pop_many, METH_VARARGS,
     "Pop up to k entries into the out arrays; returns the new size."},
    {"heap_peek_many", py_heap_peek_many, METH_VARARGS,
     "Non-destructive k-smallest walk into the out arrays; returns count."},
    {"heap_remove", py_heap_remove, METH_VARARGS,
     "Remove an item if present; returns the new size."},
    {"heap_update", py_heap_update, METH_VARARGS,
     "Update an item's key (push if absent); returns the new size."},
    {"heap_update_present", py_heap_update_present, METH_VARARGS,
     "Sequential per-item updates of known-present items."},
    {"heap_push_many", py_heap_push_many, METH_VARARGS,
     "Push pre-validated absent items; returns the new size."},
    {"reduceat_check", py_reduceat_check, METH_VARARGS,
     "Per-segment sums under the module's np.add.reduceat model."},
    {"fma_probe", py_fma_probe, METH_VARARGS,
     "a*b - a*b; non-zero iff the build contracted to FMA."},
    {"build_info", py_build_info, METH_NOARGS,
     "Compiler / OpenMP metadata of this build."},
    {"set_num_threads", py_set_num_threads, METH_VARARGS,
     "Set the OpenMP thread count (no-op without OpenMP)."},
    {"get_max_threads", py_get_max_threads, METH_NOARGS,
     "Current OpenMP max thread count (1 without OpenMP)."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef nativecore_module = {
    PyModuleDef_HEAD_INIT,
    "_nativecore",
    "Compiled CAMEO hot-path kernels (bit-identical to the NumPy tier).",
    -1,
    nativecore_methods
};

PyMODINIT_FUNC
PyInit__nativecore(void)
{
    import_array();
    return PyModule_Create(&nativecore_module);
}
