"""Loader for the optional compiled kernel tier.

Importing this package never fails: when the ``_nativecore`` extension is
absent (source-only install) or unusable, :data:`MODULE` is ``None`` and
the callers fall back to the pure-NumPy kernels.

Beyond the plain import, the loader runs a bit-identity self-check before
admitting the extension:

* ``reduceat_check`` — the extension's transcription of NumPy's pairwise
  segment summation must reproduce ``np.add.reduceat`` *bit for bit* on a
  battery of segment lengths crossing every accumulation-regime boundary
  (sequential < 8, unrolled <= 128, recursive splits above).  A NumPy
  build whose reduction order differs (e.g. a SIMD pairwise path the C
  model does not cover) disqualifies the native tier on that machine
  rather than silently changing kept-point sets.
* ``fma_probe`` — ``a*b - a*b`` must be exactly ``0.0``; a non-zero
  result means the compiler contracted a product into a fused
  multiply-add, which rounds differently from NumPy's separate ops.

The outcome (and the reason for a refusal) is recorded in
:data:`BUILD_INFO` so ``repro._kernels.active_tier()`` stays diagnosable.

Set ``REPRO_NATIVE_THREADS=<n>`` to pin the OpenMP thread count before
first use (no-op for builds without OpenMP).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["MODULE", "BUILD_INFO"]

#: OpenMP thread-count override, applied at import.
THREADS_ENV = "REPRO_NATIVE_THREADS"

#: The admitted extension module, or ``None`` (absent or failed check).
MODULE = None

#: Build/diagnostic metadata: ``status`` is one of ``"active"``,
#: ``"unavailable"`` (not compiled) or ``"rejected: <reason>"``.
BUILD_INFO: dict = {"status": "unavailable", "compiler": None,
                    "openmp": False, "max_threads": 1}


def _check_reduceat_model(mod) -> bool:
    """Does the extension's summation model match this NumPy, bit for bit?"""
    rng = np.random.default_rng(0xCA3E0)
    for total in (1, 2, 7, 8, 9, 31, 127, 128, 129, 257, 1000, 4099):
        # wide magnitude spread so any reassociation shows up in the bits
        values = rng.normal(0.0, 1.0, total) * 10.0 ** rng.integers(
            -6, 7, total)
        for num_segments in {1, 2, 3, min(17, total)}:
            if total > 1 and num_segments > 1:
                # strictly increasing cuts: the kernels only ever reduce
                # non-empty segments
                cuts = np.unique(rng.integers(1, total, num_segments - 1))
            else:
                cuts = np.empty(0, dtype=np.int64)
            offsets = np.concatenate(([0], cuts)).astype(np.int64)
            expected = np.add.reduceat(values, offsets)
            got = mod.reduceat_check(values, offsets)
            if not np.array_equal(expected, got):
                return False
    return True


def _self_check(mod) -> str | None:
    """Return a rejection reason, or ``None`` when the module is usable."""
    try:
        if mod.fma_probe(1.0000000001e8, 3.0000000003) != 0.0:
            return "build contracted multiplies into FMA"
        if not _check_reduceat_model(mod):
            return "np.add.reduceat accumulation order not reproduced"
    except Exception as exc:  # pragma: no cover - defensive
        return f"self-check crashed: {exc!r}"
    return None


def _load():
    global MODULE, BUILD_INFO
    try:
        from . import _nativecore
    except ImportError:
        return
    info = _nativecore.build_info()
    BUILD_INFO.update(compiler=info["compiler"], openmp=bool(info["openmp"]),
                      max_threads=info["max_threads"])
    threads = os.environ.get(THREADS_ENV)
    if threads and threads.isdigit() and int(threads) > 0:
        _nativecore.set_num_threads(int(threads))
        BUILD_INFO["max_threads"] = _nativecore.get_max_threads()
    reason = _self_check(_nativecore)
    if reason is not None:
        BUILD_INFO["status"] = f"rejected: {reason}"
        return
    BUILD_INFO["status"] = "active"
    MODULE = _nativecore


_load()
