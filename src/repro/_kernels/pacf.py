"""Batched Durbin-Levinson recursion: the vectorized PACF kernel.

CAMEO's ``statistic="pacf"`` mode converts every candidate ACF vector into a
PACF vector through the Durbin-Levinson recursion (paper Equation 3).  The
fused ReHeap path evaluates *hundreds* of candidate ACF vectors per removal,
and running the recursion row by row in Python made PACF tracking the
dominant cost of ``statistic="pacf"`` runs (the ~6x ACF/PACF ratio of the
paper's Section 5.5).

:func:`pacf_from_acf_batched` runs the recursion for all rows at once: the
only remaining Python loop is over the recursion *order* (``L-1``
iterations), while every per-row quantity — the reflection coefficient
numerator/denominator and the predictor-coefficient update — is a NumPy
operation over the row axis.

Bit-exactness contract
----------------------
The kernel is cross-checked **bit for bit** against the preserved per-row
recursion (:func:`repro._kernels.reference.reference_pacf_from_acf`).  This
works because both sides accumulate their inner products with ``np.sum``
over elementwise products: NumPy's pairwise summation reduces each row of a
2-D array exactly like the matching 1-D array, so the batched and per-row
results agree to the last bit on every input (BLAS ``np.dot`` would not —
its accumulation order differs).  The greedy compressor amplifies last-bit
differences into different kept-point sets, so this contract is what keeps
``statistic="pacf"`` results identical to the per-row implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pacf_from_acf_batched", "DEGENERATE_DENOMINATOR"]

#: Denominators below this magnitude make the reflection coefficient 0 for
#: that lag (the recursion stays total on degenerate/perturbed ACF inputs).
DEGENERATE_DENOMINATOR = 1e-12


def pacf_from_acf_batched(acf_rows) -> np.ndarray:
    """PACF of every row of a ``(rows, L)`` ACF matrix via Durbin-Levinson.

    Parameters
    ----------
    acf_rows:
        Matrix whose row ``r`` holds the ACF of one candidate series for
        lags ``1..L``.  Any float input is accepted; rows need not describe
        a positive-definite autocovariance (CAMEO evaluates perturbed ACF
        vectors), in which case degenerate denominators yield a PACF of 0
        at that lag and the recursion continues.

    Returns
    -------
    numpy.ndarray
        ``(rows, L)`` matrix whose row ``r`` is the PACF (lags ``1..L``) of
        ``acf_rows[r]`` — bit-identical to running
        :func:`repro._kernels.reference.reference_pacf_from_acf` on each
        row.
    """
    rho = np.asarray(acf_rows, dtype=np.float64)
    if rho.ndim != 2 or rho.shape[1] == 0:
        raise ValueError("acf_rows must be a (rows, max_lag) matrix with max_lag >= 1")
    rows, max_lag = rho.shape
    out = np.empty((rows, max_lag), dtype=np.float64)
    if rows == 0:
        return out

    out[:, 0] = rho[:, 0]
    if max_lag == 1:
        return out

    # phi_prev[r, :order] holds phi_{order, 1..order} of row r at the start
    # of the iteration computing order+1 (same invariant as the per-row
    # reference; the two buffers swap roles each iteration).
    phi_prev = np.zeros((rows, max_lag), dtype=np.float64)
    phi_curr = np.zeros((rows, max_lag), dtype=np.float64)
    phi_prev[:, 0] = rho[:, 0]
    phi_ll = np.empty(rows, dtype=np.float64)

    for order in range(1, max_lag):
        head = phi_prev[:, :order]
        rho_head = rho[:, :order]
        numerator = rho[:, order] - np.sum(head * rho_head[:, ::-1], axis=1)
        denominator = 1.0 - np.sum(head * rho_head, axis=1)
        # ``~(|den| < eps)`` (not ``|den| >= eps``) so NaN denominators
        # divide through to NaN exactly like the per-row reference.
        valid = ~(np.abs(denominator) < DEGENERATE_DENOMINATOR)
        phi_ll.fill(0.0)
        np.divide(numerator, denominator, out=phi_ll, where=valid)
        out[:, order] = phi_ll
        phi_curr[:, :order] = head - phi_ll[:, np.newaxis] * head[:, ::-1]
        phi_curr[:, order] = phi_ll
        phi_prev, phi_curr = phi_curr, phi_prev
    return out
