"""Block-wise bitstream kernels.

The original bitstream implementation appended **one bit per Python-level
loop iteration**, which put a ~0.5 µs floor under every bit of Gorilla/Chimp
payload.  The classes here operate on 64-bit words instead:

* :class:`BlockBitWriter` keeps a small integer accumulator and flushes full
  64-bit words into a word list, so ``write_bits`` is O(1) regardless of the
  width (at most one flush per call);
* :class:`BlockBitReader` fetches at most two words per ``read_bits`` call;
* :func:`pack_bits` / :meth:`BlockBitWriter.write_bits_array` /
  :meth:`BlockBitReader.read_bits_array` pack or consume whole arrays of
  variable-width fields in a handful of vectorized NumPy operations.

The bit layout is identical to the original implementation: MSB-first within
the stream, with the final byte zero-padded on the right.  64-bit words map
onto that layout as big-endian byte groups, which is what makes the word and
byte views interchangeable.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodecError

__all__ = ["BlockBitWriter", "BlockBitReader", "pack_bits", "words_to_bytes",
           "pack_field_streams"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_U64 = np.uint64
_ONE = np.uint64(1)


def pack_bits(values, widths) -> tuple[np.ndarray, int]:
    """Pack variable-width unsigned fields into a left-aligned word stream.

    Parameters
    ----------
    values:
        Unsigned integers (anything convertible to ``uint64``); each is
        masked to its field width.
    widths:
        Per-field bit widths in ``[0, 64]``.  Zero-width fields contribute
        nothing.

    Returns
    -------
    (words, nbits):
        ``words`` is a ``uint64`` array holding the MSB-first bitstream
        (bit 0 of the stream is the MSB of ``words[0]``; the last word is
        zero-padded on the right), ``nbits`` the exact stream length.
    """
    widths = np.asarray(widths, dtype=np.int64)
    if widths.size == 0:
        return np.empty(0, dtype=_U64), 0
    if int(widths.min()) < 0 or int(widths.max()) > 64:
        raise CodecError("bit widths must be in [0, 64]")
    values = np.asarray(values, dtype=_U64)
    if values.shape != widths.shape:
        raise CodecError("values and widths must have the same shape")

    # Mask each value to its width (shift counts must stay < 64).
    wclip = np.minimum(widths, 63).astype(_U64)
    mask = np.where(widths >= 64, _U64(_MASK64), (_ONE << wclip) - _ONE)
    values = values & mask

    ends = np.cumsum(widths)
    nbits = int(ends[-1])
    if nbits == 0:
        return np.empty(0, dtype=_U64), 0
    starts = ends - widths
    nwords = (nbits + 63) >> 6
    words = np.zeros(nwords, dtype=_U64)

    nz = widths > 0
    v = values[nz]
    w = widths[nz]
    s = starts[nz]
    word_index = s >> 6
    offset = s & 63
    space = 64 - offset          # bits available in the first word
    overflow = w - space         # > 0 when the field straddles two words
    fits = overflow <= 0
    shift = np.where(fits, space - w, overflow).astype(_U64)
    first = np.where(fits, v << shift, v >> shift)
    # Disjoint bit fields cannot carry, so an unbuffered add is a safe OR.
    np.add.at(words, word_index, first)
    if not bool(fits.all()):
        straddle = ~fits
        v2 = v[straddle]
        over = overflow[straddle].astype(_U64)
        second = (v2 & ((_ONE << over) - _ONE)) << (_U64(64) - over)
        np.add.at(words, word_index[straddle] + 1, second)
    return words, nbits


def words_to_bytes(words: np.ndarray, nbits: int) -> bytes:
    """Convert a left-aligned word stream into its exact byte payload."""
    if nbits == 0:
        return b""
    nbytes = (nbits + 7) >> 3
    return words.astype(">u8").tobytes()[:nbytes]


def pack_field_streams(field_stream_fn, bits: np.ndarray, *row_args
                       ) -> list[tuple[bytes, int, int]]:
    """Pack many per-series field streams through **one** :func:`pack_bits`.

    The cross-series batch path of the XOR codecs: ``field_stream_fn`` is
    the codec's sequential control-code pass, called once per row of
    ``bits`` (a ``(num_series, length)`` uint64 matrix) with the matching
    row of every ``row_args`` sequence.  All resulting variable-width
    fields are concatenated — each series zero-padded to a 64-bit word
    boundary — and packed in a single call; the word stream then splits
    cleanly at the per-series boundaries.

    Returns one ``(payload, bit_length, count)`` triple per row,
    byte-identical to packing each series on its own: :func:`pack_bits`
    starts from zeroed words and the padding fields are zero, so a series'
    trailing word bits match the zero-padding of an individual pack.
    """
    count = int(bits.shape[1])
    all_fields: list[int] = []
    all_widths: list[int] = []
    spans: list[tuple[int, int]] = []
    bit_cursor = 0
    for row in range(bits.shape[0]):
        fields, widths = field_stream_fn(int(bits[row, 0]),
                                         *(arg[row] for arg in row_args))
        bit_len = sum(widths)
        spans.append((bit_cursor, bit_len))
        all_fields += fields
        all_widths += widths
        pad = (-bit_len) % 64
        if pad:
            all_fields.append(0)
            all_widths.append(pad)
        bit_cursor += bit_len + pad
    words, _total_bits = pack_bits(np.asarray(all_fields, dtype=_U64),
                                   np.asarray(all_widths, dtype=np.int64))
    results = []
    for start, bit_len in spans:
        lo = start >> 6
        hi = (start + bit_len + 63) >> 6
        results.append((words_to_bytes(words[lo:hi], bit_len), bit_len, count))
    return results


def payload_words(payload: bytes) -> list[int]:
    """View a byte payload as MSB-first 64-bit words (zero-padded ints).

    Inverse of :func:`words_to_bytes`; used by the sequential codec decode
    loops, which want Python ints for cheap shifts.
    """
    pad = (-len(payload)) % 8
    if pad:
        payload = payload + b"\x00" * pad
    return np.frombuffer(payload, dtype=">u8").tolist()


class BlockBitWriter:
    """Append-only MSB-first bit buffer operating on 64-bit words.

    Multi-bit writes are O(1): the bits are shifted into an integer
    accumulator and full words are flushed to a word list, so the per-call
    cost is a handful of integer operations instead of one loop iteration
    per bit.
    """

    __slots__ = ("_words", "_acc", "_acc_bits")

    def __init__(self):
        self._words: list[int] = []   # flushed 64-bit words
        self._acc = 0                 # partial word accumulator
        self._acc_bits = 0            # bits currently in the accumulator (< 64)

    def __len__(self) -> int:
        """Number of bits written so far."""
        return len(self._words) * 64 + self._acc_bits

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (alias of ``len``)."""
        return len(self._words) * 64 + self._acc_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        bits = self._acc_bits + 1
        acc = (self._acc << 1) | (1 if bit else 0)
        if bits == 64:
            self._words.append(acc)
            acc = 0
            bits = 0
        self._acc = acc
        self._acc_bits = bits

    def write_bits(self, value: int, width: int) -> None:
        """Append the ``width`` least-significant bits of ``value`` MSB first."""
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        width = int(width)
        bits = self._acc_bits + width
        # int() keeps NumPy integer inputs out of the arbitrary-precision
        # accumulator (uint64 arithmetic would overflow during the shift).
        acc = (self._acc << width) | (int(value) & ((1 << width) - 1))
        if bits >= 64:
            bits -= 64
            self._words.append((acc >> bits) & _MASK64)
            acc &= (1 << bits) - 1
        self._acc = acc
        self._acc_bits = bits

    def write_bits_array(self, values, widths) -> None:
        """Append many variable-width fields in one vectorized operation.

        Equivalent to calling :meth:`write_bits` for each ``(value, width)``
        pair, but the packing happens in NumPy.
        """
        words, nbits = pack_bits(values, widths)
        self._append_words(words, nbits)

    def _append_words(self, words: np.ndarray, nbits: int) -> None:
        """Append a left-aligned word stream of ``nbits`` bits."""
        if nbits == 0:
            return
        a = self._acc_bits
        if a == 0:
            full = nbits >> 6
            self._words.extend(words[:full].tolist())
            rem = nbits & 63
            if rem:
                self._acc = int(words[full]) >> (64 - rem)
                self._acc_bits = rem
            return
        # Funnel-shift the incoming stream right by ``a`` bits and prepend
        # the accumulator; every output word is a constant-shift combination
        # of two adjacent input words, which vectorizes.
        ua = _U64(a)
        ush = _U64(64 - a)
        hi = words >> ua
        lo = (words << ush) & _U64(_MASK64)
        merged = np.empty_like(words)
        merged[0] = _U64((self._acc << (64 - a)) & _MASK64) | hi[0]
        if words.size > 1:
            np.bitwise_or(lo[:-1], hi[1:], out=merged[1:])
        total = a + nbits
        full = total >> 6
        rem = total & 63
        if full == words.size:
            self._words.extend(merged.tolist())
            self._acc = int(lo[-1]) >> (64 - rem) if rem else 0
        else:  # full == words.size - 1
            self._words.extend(merged[:full].tolist())
            self._acc = int(merged[full]) >> (64 - rem) if rem else 0
        self._acc_bits = rem

    def to_bytes(self) -> bytes:
        """Snapshot of the packed bytes (last byte zero-padded)."""
        head = np.array(self._words, dtype=">u8").tobytes()
        if self._acc_bits:
            nbytes = (self._acc_bits + 7) >> 3
            head += (self._acc << (8 * nbytes - self._acc_bits)).to_bytes(nbytes, "big")
        return head


class BlockBitReader:
    """MSB-first bit consumer fetching at most two words per read."""

    __slots__ = ("_data", "_limit", "_position", "_warr", "_words")

    def __init__(self, data: bytes, bit_length: int | None = None):
        self._data = bytes(data)
        # Clamp to the real payload so a too-large stated bit_length raises
        # on read instead of silently yielding word-padding zeros.
        available = len(self._data) * 8
        self._limit = available if bit_length is None else min(bit_length, available)
        self._position = 0
        pad = (-len(self._data)) % 8
        buffer = self._data + b"\x00" * pad if pad else self._data
        self._warr = np.frombuffer(buffer, dtype=">u8").astype(_U64)
        self._words: list[int] | None = None  # lazy Python-int mirror

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._limit - self._position

    def word_list(self) -> list[int]:
        """The stream as Python-int words (cached; for tight decode loops)."""
        if self._words is None:
            self._words = self._warr.tolist()
        return self._words

    def read_bit(self) -> int:
        """Read a single bit."""
        position = self._position
        if position >= self._limit:
            raise CodecError("attempt to read past the end of the bit stream")
        words = self._words
        if words is None:
            words = self.word_list()
        self._position = position + 1
        return (words[position >> 6] >> (63 - (position & 63))) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (O(1) per call)."""
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        position = self._position
        if position + width > self._limit:
            raise CodecError("attempt to read past the end of the bit stream")
        if width == 0:
            return 0
        words = self._words
        if words is None:
            words = self.word_list()
        word_index = position >> 6
        available = 64 - (position & 63)
        self._position = position + width
        if width <= available:
            return (words[word_index] >> (available - width)) & ((1 << width) - 1)
        low = width - available
        head = words[word_index] & ((1 << available) - 1)
        return (head << low) | (words[word_index + 1] >> (64 - low))

    def read_bits_array(self, widths) -> np.ndarray:
        """Read many variable-width fields in one vectorized operation.

        Returns a ``uint64`` array; equivalent to (but much faster than)
        calling :meth:`read_bits` per width.
        """
        widths = np.asarray(widths, dtype=np.int64)
        if widths.size == 0:
            return np.empty(0, dtype=_U64)
        if int(widths.min()) < 0 or int(widths.max()) > 64:
            raise CodecError("bit widths must be in [0, 64]")
        ends = self._position + np.cumsum(widths)
        if int(ends[-1]) > self._limit:
            raise CodecError("attempt to read past the end of the bit stream")
        starts = ends - widths
        warr = self._warr
        if warr.size == 0:
            # Only reachable when every width is zero (the limit check
            # passed against an empty stream).
            self._position = int(ends[-1])
            return np.zeros(widths.size, dtype=_U64)
        # Zero-width fields may "start" exactly at the end of the stream;
        # clamp the gather (their mask zeroes the result anyway).
        word_index = np.minimum(starts >> 6, warr.size - 1)
        offset = starts & 63
        available = 64 - offset
        current = warr[word_index]

        fits = widths <= available
        fit_shift = np.minimum(available - widths, 63).astype(_U64)
        wclip = np.minimum(widths, 63).astype(_U64)
        mask = np.where(widths >= 64, _U64(_MASK64), (_ONE << wclip) - _ONE)
        fit_value = (current >> fit_shift) & mask

        low = np.clip(widths - available, 1, 63).astype(_U64)
        avail_clip = np.minimum(available, 63).astype(_U64)
        nxt = warr[np.minimum(word_index + 1, warr.size - 1)]
        straddle_value = (((current & ((_ONE << avail_clip) - _ONE)) << low)
                          | (nxt >> (_U64(64) - low)))

        self._position = int(ends[-1])
        return np.where(fits, fit_value, straddle_value)
