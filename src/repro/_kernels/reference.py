"""Reference per-bit bitstream and codec implementations.

This module preserves the original (pre-kernel) per-bit implementations
verbatim.  They are deliberately slow — one Python loop iteration per bit —
and exist for two reasons:

* the property tests cross-check the block kernels against them bit for bit
  (the payloads must be byte-identical), and
* the perf harness measures its speedup ratios against them on the same
  machine, which keeps the regression thresholds hardware-independent.

Do not "optimize" anything in here; that would defeat its purpose.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import CodecError

__all__ = [
    "ReferenceBitWriter",
    "ReferenceBitReader",
    "reference_gorilla_encode",
    "reference_gorilla_decode",
    "reference_chimp_encode",
    "reference_chimp_decode",
    "reference_pacf_from_acf",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _float_to_bits(value: float) -> int:
    return int(np.float64(value).view(np.uint64))


def _bits_to_float(bits: int) -> float:
    return float(np.uint64(bits & _MASK64).view(np.float64))


def _leading_zeros(value: int) -> int:
    if value == 0:
        return 64
    return 64 - value.bit_length()


def _trailing_zeros(value: int) -> int:
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class ReferenceBitWriter:
    """The original byte-array bit writer (one loop iteration per bit)."""

    def __init__(self):
        self._bytes = bytearray()
        self._free_bits = 0
        self._total_bits = 0

    def __len__(self) -> int:
        return self._total_bits

    @property
    def bit_length(self) -> int:
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        if self._free_bits == 0:
            self._bytes.append(0)
            self._free_bits = 8
        if bit:
            self._bytes[-1] |= 1 << (self._free_bits - 1)
        self._free_bits -= 1
        self._total_bits += 1

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        return bytes(self._bytes)


class ReferenceBitReader:
    """The original per-bit reader."""

    def __init__(self, data: bytes, bit_length: int | None = None):
        self._data = bytes(data)
        self._limit = bit_length if bit_length is not None else len(self._data) * 8
        self._position = 0

    @property
    def remaining(self) -> int:
        return self._limit - self._position

    def read_bit(self) -> int:
        if self._position >= self._limit:
            raise CodecError("attempt to read past the end of the bit stream")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


# --------------------------------------------------------------------- #
# reference Gorilla
# --------------------------------------------------------------------- #
def reference_gorilla_encode(values) -> tuple[bytes, int, int]:
    """Per-bit Gorilla encoder (original implementation)."""
    values = as_float_array(values)
    writer = ReferenceBitWriter()
    previous_bits = _float_to_bits(values[0])
    writer.write_bits(previous_bits, 64)
    previous_leading = 65
    previous_trailing = 65

    for value in values[1:]:
        current_bits = _float_to_bits(value)
        xor = (current_bits ^ previous_bits) & _MASK64
        if xor == 0:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            leading = min(_leading_zeros(xor), 31)
            trailing = _trailing_zeros(xor)
            if leading >= previous_leading and trailing >= previous_trailing:
                writer.write_bit(0)
                window = 64 - previous_leading - previous_trailing
                writer.write_bits(xor >> previous_trailing, window)
            else:
                meaningful = 64 - leading - trailing
                writer.write_bit(1)
                writer.write_bits(leading, 5)
                writer.write_bits(meaningful - 1, 6)
                writer.write_bits(xor >> trailing, meaningful)
                previous_leading = leading
                previous_trailing = trailing
        previous_bits = current_bits
    return writer.to_bytes(), writer.bit_length, values.size


def reference_gorilla_decode(payload: bytes, bit_length: int, count: int) -> np.ndarray:
    """Per-bit Gorilla decoder (original implementation)."""
    if count <= 0:
        raise CodecError("count must be positive")
    reader = ReferenceBitReader(payload, bit_length)
    values = np.empty(count, dtype=np.float64)
    previous_bits = reader.read_bits(64)
    values[0] = _bits_to_float(previous_bits)
    leading = 0
    trailing = 0
    for index in range(1, count):
        if reader.read_bit() == 0:
            values[index] = _bits_to_float(previous_bits)
            continue
        if reader.read_bit() == 0:
            window = 64 - leading - trailing
            xor = reader.read_bits(window) << trailing
        else:
            leading = reader.read_bits(5)
            meaningful = reader.read_bits(6) + 1
            trailing = 64 - leading - meaningful
            xor = reader.read_bits(meaningful) << trailing
        previous_bits = (previous_bits ^ xor) & _MASK64
        values[index] = _bits_to_float(previous_bits)
    return values


# --------------------------------------------------------------------- #
# reference Chimp
# --------------------------------------------------------------------- #
_LEADING_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]


def _round_leading(leading: int) -> tuple[int, int]:
    code = 0
    for index, threshold in enumerate(_LEADING_ROUND):
        if leading >= threshold:
            code = index
    return code, _LEADING_ROUND[code]


def reference_chimp_encode(values) -> tuple[bytes, int, int]:
    """Per-bit Chimp encoder (original implementation)."""
    values = as_float_array(values)
    writer = ReferenceBitWriter()
    previous_bits = _float_to_bits(values[0])
    writer.write_bits(previous_bits, 64)
    previous_leading_code = -1

    for value in values[1:]:
        current_bits = _float_to_bits(value)
        xor = (current_bits ^ previous_bits) & _MASK64
        if xor == 0:
            writer.write_bits(0b00, 2)
            previous_leading_code = -1
        else:
            leading = _leading_zeros(xor)
            trailing = _trailing_zeros(xor)
            leading_code, leading_rounded = _round_leading(leading)
            if trailing > 6:
                centre = 64 - leading_rounded - trailing
                writer.write_bits(0b11, 2)
                writer.write_bits(leading_code, 3)
                writer.write_bits(centre, 6)
                writer.write_bits(xor >> trailing, centre)
                previous_leading_code = -1
            elif leading_code == previous_leading_code:
                writer.write_bits(0b01, 2)
                writer.write_bits(xor, 64 - leading_rounded)
            else:
                writer.write_bits(0b10, 2)
                writer.write_bits(leading_code, 3)
                writer.write_bits(xor, 64 - leading_rounded)
                previous_leading_code = leading_code
        previous_bits = current_bits
    return writer.to_bytes(), writer.bit_length, values.size


def reference_chimp_decode(payload: bytes, bit_length: int, count: int) -> np.ndarray:
    """Per-bit Chimp decoder (original implementation)."""
    if count <= 0:
        raise CodecError("count must be positive")
    reader = ReferenceBitReader(payload, bit_length)
    values = np.empty(count, dtype=np.float64)
    previous_bits = reader.read_bits(64)
    values[0] = _bits_to_float(previous_bits)
    previous_leading_rounded = 0

    for index in range(1, count):
        flag = reader.read_bits(2)
        if flag == 0b00:
            xor = 0
        elif flag == 0b11:
            leading_code = reader.read_bits(3)
            leading_rounded = _LEADING_ROUND[leading_code]
            centre = reader.read_bits(6)
            trailing = 64 - leading_rounded - centre
            xor = reader.read_bits(centre) << trailing
        elif flag == 0b10:
            leading_code = reader.read_bits(3)
            leading_rounded = _LEADING_ROUND[leading_code]
            xor = reader.read_bits(64 - leading_rounded)
            previous_leading_rounded = leading_rounded
        else:
            xor = reader.read_bits(64 - previous_leading_rounded)
        previous_bits = (previous_bits ^ xor) & _MASK64
        values[index] = _bits_to_float(previous_bits)
    return values


def reference_pacf_from_acf(acf_values) -> np.ndarray:
    """Per-row Durbin-Levinson recursion (the pre-vectorization PACF path).

    This is the recursion :func:`repro.stats.pacf.pacf_from_acf` ran for
    every candidate row before the batched kernel
    (:func:`repro._kernels.pacf.pacf_from_acf_batched`) replaced it in the
    hot path.  The property tests assert the batched kernel reproduces it
    **bit for bit**, and the perf harness measures the PACF-tracking
    speedup against it.

    One deliberate deviation from the original source: the inner products
    accumulate with ``np.sum`` over elementwise products, where the
    original used BLAS ``np.dot``.  NumPy's pairwise summation gives
    identical results for a 1-D array and for each row of a 2-D array —
    which is what makes a bit-for-bit batched-vs-per-row cross-check
    possible at all — while BLAS accumulation order differs per build, so
    ``np.dot`` results can differ from either in the last bit.  The
    consequence: batched == this reference is proven *exactly* on every
    input, and equivalence with the original ``np.dot`` accumulation is
    verified *empirically* — CAMEO kept-point sets captured from the
    original implementation on fixed-seed configs (both statistics, raw and
    aggregated) are locked in ``tests/core/test_pacf_fastpath.py``.
    """
    rho = np.asarray(acf_values, dtype=np.float64)
    if rho.ndim != 1 or rho.size == 0:
        raise ValueError("acf_values must be a non-empty 1-D array")
    max_lag = rho.size
    pacf_values = np.zeros(max_lag, dtype=np.float64)
    # phi_prev[:order] holds phi_{order, 1..order} at the start of the
    # iteration computing order + 1.
    phi_prev = np.zeros(max_lag, dtype=np.float64)
    phi_curr = np.zeros(max_lag, dtype=np.float64)

    pacf_values[0] = rho[0]
    phi_prev[0] = rho[0]

    for order in range(1, max_lag):
        numerator = rho[order] - float(np.sum(phi_prev[:order] * rho[:order][::-1]))
        denominator = 1.0 - float(np.sum(phi_prev[:order] * rho[:order]))
        if abs(denominator) < 1e-12:
            phi_ll = 0.0
        else:
            phi_ll = numerator / denominator
        pacf_values[order] = phi_ll
        phi_curr[:order] = phi_prev[:order] - phi_ll * phi_prev[:order][::-1]
        phi_curr[order] = phi_ll
        phi_prev, phi_curr = phi_curr.copy(), phi_prev
    return pacf_values
