"""Reference per-bit bitstream and codec implementations.

This module preserves the original (pre-kernel) per-bit implementations
verbatim.  They are deliberately slow — one Python loop iteration per bit —
and exist for two reasons:

* the property tests cross-check the block kernels against them bit for bit
  (the payloads must be byte-identical), and
* the perf harness measures its speedup ratios against them on the same
  machine, which keeps the regression thresholds hardware-independent.

Do not "optimize" anything in here; that would defeat its purpose.
"""

from __future__ import annotations

import threading

import numpy as np

from .._validation import as_float_array
from ..exceptions import CodecError

__all__ = [
    "ReferenceBitWriter",
    "ReferenceBitReader",
    "ReferenceIndexedMinHeap",
    "reference_gorilla_encode",
    "reference_gorilla_decode",
    "reference_chimp_encode",
    "reference_chimp_decode",
    "reference_pacf_from_acf",
    "reference_batched_contiguous_acf",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _float_to_bits(value: float) -> int:
    return int(np.float64(value).view(np.uint64))


def _bits_to_float(bits: int) -> float:
    return float(np.uint64(bits & _MASK64).view(np.float64))


def _leading_zeros(value: int) -> int:
    if value == 0:
        return 64
    return 64 - value.bit_length()


def _trailing_zeros(value: int) -> int:
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class ReferenceBitWriter:
    """The original byte-array bit writer (one loop iteration per bit)."""

    def __init__(self):
        self._bytes = bytearray()
        self._free_bits = 0
        self._total_bits = 0

    def __len__(self) -> int:
        return self._total_bits

    @property
    def bit_length(self) -> int:
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        if self._free_bits == 0:
            self._bytes.append(0)
            self._free_bits = 8
        if bit:
            self._bytes[-1] |= 1 << (self._free_bits - 1)
        self._free_bits -= 1
        self._total_bits += 1

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        return bytes(self._bytes)


class ReferenceBitReader:
    """The original per-bit reader."""

    def __init__(self, data: bytes, bit_length: int | None = None):
        self._data = bytes(data)
        self._limit = bit_length if bit_length is not None else len(self._data) * 8
        self._position = 0

    @property
    def remaining(self) -> int:
        return self._limit - self._position

    def read_bit(self) -> int:
        if self._position >= self._limit:
            raise CodecError("attempt to read past the end of the bit stream")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


# --------------------------------------------------------------------- #
# reference Gorilla
# --------------------------------------------------------------------- #
def reference_gorilla_encode(values) -> tuple[bytes, int, int]:
    """Per-bit Gorilla encoder (original implementation)."""
    values = as_float_array(values)
    writer = ReferenceBitWriter()
    previous_bits = _float_to_bits(values[0])
    writer.write_bits(previous_bits, 64)
    previous_leading = 65
    previous_trailing = 65

    for value in values[1:]:
        current_bits = _float_to_bits(value)
        xor = (current_bits ^ previous_bits) & _MASK64
        if xor == 0:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            leading = min(_leading_zeros(xor), 31)
            trailing = _trailing_zeros(xor)
            if leading >= previous_leading and trailing >= previous_trailing:
                writer.write_bit(0)
                window = 64 - previous_leading - previous_trailing
                writer.write_bits(xor >> previous_trailing, window)
            else:
                meaningful = 64 - leading - trailing
                writer.write_bit(1)
                writer.write_bits(leading, 5)
                writer.write_bits(meaningful - 1, 6)
                writer.write_bits(xor >> trailing, meaningful)
                previous_leading = leading
                previous_trailing = trailing
        previous_bits = current_bits
    return writer.to_bytes(), writer.bit_length, values.size


def reference_gorilla_decode(payload: bytes, bit_length: int, count: int) -> np.ndarray:
    """Per-bit Gorilla decoder (original implementation)."""
    if count <= 0:
        raise CodecError("count must be positive")
    reader = ReferenceBitReader(payload, bit_length)
    values = np.empty(count, dtype=np.float64)
    previous_bits = reader.read_bits(64)
    values[0] = _bits_to_float(previous_bits)
    leading = 0
    trailing = 0
    for index in range(1, count):
        if reader.read_bit() == 0:
            values[index] = _bits_to_float(previous_bits)
            continue
        if reader.read_bit() == 0:
            window = 64 - leading - trailing
            xor = reader.read_bits(window) << trailing
        else:
            leading = reader.read_bits(5)
            meaningful = reader.read_bits(6) + 1
            trailing = 64 - leading - meaningful
            xor = reader.read_bits(meaningful) << trailing
        previous_bits = (previous_bits ^ xor) & _MASK64
        values[index] = _bits_to_float(previous_bits)
    return values


# --------------------------------------------------------------------- #
# reference Chimp
# --------------------------------------------------------------------- #
_LEADING_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]


def _round_leading(leading: int) -> tuple[int, int]:
    code = 0
    for index, threshold in enumerate(_LEADING_ROUND):
        if leading >= threshold:
            code = index
    return code, _LEADING_ROUND[code]


def reference_chimp_encode(values) -> tuple[bytes, int, int]:
    """Per-bit Chimp encoder (original implementation)."""
    values = as_float_array(values)
    writer = ReferenceBitWriter()
    previous_bits = _float_to_bits(values[0])
    writer.write_bits(previous_bits, 64)
    previous_leading_code = -1

    for value in values[1:]:
        current_bits = _float_to_bits(value)
        xor = (current_bits ^ previous_bits) & _MASK64
        if xor == 0:
            writer.write_bits(0b00, 2)
            previous_leading_code = -1
        else:
            leading = _leading_zeros(xor)
            trailing = _trailing_zeros(xor)
            leading_code, leading_rounded = _round_leading(leading)
            if trailing > 6:
                centre = 64 - leading_rounded - trailing
                writer.write_bits(0b11, 2)
                writer.write_bits(leading_code, 3)
                writer.write_bits(centre, 6)
                writer.write_bits(xor >> trailing, centre)
                previous_leading_code = -1
            elif leading_code == previous_leading_code:
                writer.write_bits(0b01, 2)
                writer.write_bits(xor, 64 - leading_rounded)
            else:
                writer.write_bits(0b10, 2)
                writer.write_bits(leading_code, 3)
                writer.write_bits(xor, 64 - leading_rounded)
                previous_leading_code = leading_code
        previous_bits = current_bits
    return writer.to_bytes(), writer.bit_length, values.size


def reference_chimp_decode(payload: bytes, bit_length: int, count: int) -> np.ndarray:
    """Per-bit Chimp decoder (original implementation)."""
    if count <= 0:
        raise CodecError("count must be positive")
    reader = ReferenceBitReader(payload, bit_length)
    values = np.empty(count, dtype=np.float64)
    previous_bits = reader.read_bits(64)
    values[0] = _bits_to_float(previous_bits)
    previous_leading_rounded = 0

    for index in range(1, count):
        flag = reader.read_bits(2)
        if flag == 0b00:
            xor = 0
        elif flag == 0b11:
            leading_code = reader.read_bits(3)
            leading_rounded = _LEADING_ROUND[leading_code]
            centre = reader.read_bits(6)
            trailing = 64 - leading_rounded - centre
            xor = reader.read_bits(centre) << trailing
        elif flag == 0b10:
            leading_code = reader.read_bits(3)
            leading_rounded = _LEADING_ROUND[leading_code]
            xor = reader.read_bits(64 - leading_rounded)
            previous_leading_rounded = leading_rounded
        else:
            xor = reader.read_bits(64 - previous_leading_rounded)
        previous_bits = (previous_bits ^ xor) & _MASK64
        values[index] = _bits_to_float(previous_bits)
    return values


def reference_pacf_from_acf(acf_values) -> np.ndarray:
    """Per-row Durbin-Levinson recursion (the pre-vectorization PACF path).

    This is the recursion :func:`repro.stats.pacf.pacf_from_acf` ran for
    every candidate row before the batched kernel
    (:func:`repro._kernels.pacf.pacf_from_acf_batched`) replaced it in the
    hot path.  The property tests assert the batched kernel reproduces it
    **bit for bit**, and the perf harness measures the PACF-tracking
    speedup against it.

    One deliberate deviation from the original source: the inner products
    accumulate with ``np.sum`` over elementwise products, where the
    original used BLAS ``np.dot``.  NumPy's pairwise summation gives
    identical results for a 1-D array and for each row of a 2-D array —
    which is what makes a bit-for-bit batched-vs-per-row cross-check
    possible at all — while BLAS accumulation order differs per build, so
    ``np.dot`` results can differ from either in the last bit.  The
    consequence: batched == this reference is proven *exactly* on every
    input, and equivalence with the original ``np.dot`` accumulation is
    verified *empirically* — CAMEO kept-point sets captured from the
    original implementation on fixed-seed configs (both statistics, raw and
    aggregated) are locked in ``tests/core/test_pacf_fastpath.py``.
    """
    rho = np.asarray(acf_values, dtype=np.float64)
    if rho.ndim != 1 or rho.size == 0:
        raise ValueError("acf_values must be a non-empty 1-D array")
    max_lag = rho.size
    pacf_values = np.zeros(max_lag, dtype=np.float64)
    # phi_prev[:order] holds phi_{order, 1..order} at the start of the
    # iteration computing order + 1.
    phi_prev = np.zeros(max_lag, dtype=np.float64)
    phi_curr = np.zeros(max_lag, dtype=np.float64)

    pacf_values[0] = rho[0]
    phi_prev[0] = rho[0]

    for order in range(1, max_lag):
        numerator = rho[order] - float(np.sum(phi_prev[:order] * rho[:order][::-1]))
        denominator = 1.0 - float(np.sum(phi_prev[:order] * rho[:order]))
        if abs(denominator) < 1e-12:
            phi_ll = 0.0
        else:
            phi_ll = numerator / denominator
        pacf_values[order] = phi_ll
        phi_curr[:order] = phi_prev[:order] - phi_ll * phi_prev[:order][::-1]
        phi_curr[order] = phi_ll
        phi_prev, phi_curr = phi_curr.copy(), phi_prev
    return pacf_values


# --------------------------------------------------------------------- #
# reference indexed min-heap (the pre-vectorization list-based heap)
# --------------------------------------------------------------------- #
_HEAP_ABSENT = -1


class ReferenceIndexedMinHeap:
    """The original Python-list indexed min-heap (one sift step per level).

    This is the heap the CAMEO main loop used before
    :class:`repro.core.heap.IndexedMinHeap` moved to NumPy-array storage
    with level-at-a-time bulk operations.  It is preserved verbatim so that

    * the hypothesis property tests can cross-check every bulk operation of
      the vectorized heap against per-item sequential semantics, and
    * the perf harness can measure the ``update_many`` speedup against the
      per-item Python sift loops on the same machine.

    Do not "optimize" anything in here; that would defeat its purpose.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        self._keys: list[float] = []
        self._items: list[int] = []
        self._slot_of: list[int] = [_HEAP_ABSENT] * self._capacity

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._capacity and self._slot_of[item] != _HEAP_ABSENT

    def contains_mask(self, items) -> np.ndarray:
        """Vectorized membership: boolean mask of which ``items`` are present."""
        items = np.asarray(items, dtype=np.int64)
        slot_of = self._slot_of
        return np.fromiter((slot_of[item] != _HEAP_ABSENT for item in items.tolist()),
                           dtype=bool, count=items.size)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def capacity(self) -> int:
        """Maximum number of distinct items."""
        return self._capacity

    def key_of(self, item: int) -> float:
        """Current priority of ``item`` (raises ``KeyError`` if absent)."""
        slot = self._slot_of[item]
        if slot == _HEAP_ABSENT:
            raise KeyError(f"item {item} is not in the heap")
        return self._keys[slot]

    def peek(self) -> tuple[int, float]:
        """Return ``(item, key)`` of the minimum without removing it."""
        if not self._items:
            raise IndexError("peek on an empty heap")
        return self._items[0], self._keys[0]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def heapify(self, items, keys) -> None:
        """Bulk-load ``items`` with ``keys`` using Floyd's method (O(n))."""
        items = np.asarray(items, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.float64)
        if items.shape != keys.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size > self._capacity:
            raise ValueError("more items than heap capacity")
        if items.size and (items.min() < 0 or items.max() >= self._capacity):
            raise ValueError("items out of range")
        if np.unique(items).size != items.size:
            raise ValueError("items must be unique")
        self._items = items.tolist()
        self._keys = keys.tolist()
        slot_of = self._slot_of = [_HEAP_ABSENT] * self._capacity
        for slot, item in enumerate(self._items):
            slot_of[item] = slot
        for slot in range(len(self._items) // 2 - 1, -1, -1):
            self._sift_down(slot)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def push(self, item: int, key: float) -> None:
        """Insert ``item`` with priority ``key`` (item must be absent)."""
        item = int(item)
        if not 0 <= item < self._capacity:
            raise ValueError(f"item {item} out of range [0, {self._capacity})")
        if self._slot_of[item] != _HEAP_ABSENT:
            raise ValueError(f"item {item} is already in the heap; use update()")
        slot = len(self._items)
        self._items.append(item)
        self._keys.append(float(key))
        self._slot_of[item] = slot
        self._sift_up(slot)

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        item = self._items[0]
        key = self._keys[0]
        self._remove_slot(0)
        return item, key

    def remove(self, item: int) -> None:
        """Remove ``item`` from the heap (no-op if absent)."""
        slot = self._slot_of[item]
        if slot == _HEAP_ABSENT:
            return
        self._remove_slot(slot)

    def update(self, item: int, key: float) -> None:
        """Change the priority of ``item`` (inserting it if absent)."""
        slot = self._slot_of[item]
        if slot == _HEAP_ABSENT:
            self.push(item, key)
            return
        key = float(key)
        old = self._keys[slot]
        self._keys[slot] = key
        if key < old:
            self._sift_up(slot)
        elif key > old:
            self._sift_down(slot)

    def update_many(self, items, keys) -> None:
        """Per-item sequential ``update`` over the pairs, in order."""
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        for item, key in zip(items.tolist(), key_values.tolist()):
            self.update(item, key)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remove_slot(self, slot: int) -> None:
        items = self._items
        keys = self._keys
        last = len(items) - 1
        self._slot_of[items[slot]] = _HEAP_ABSENT
        if slot != last:
            items[slot] = items[last]
            keys[slot] = keys[last]
            self._slot_of[items[slot]] = slot
        items.pop()
        keys.pop()
        if slot < len(items):
            # The moved entry may need to travel either direction.
            self._sift_down(slot)
            self._sift_up(slot)

    def _swap(self, a: int, b: int) -> None:
        items = self._items
        keys = self._keys
        items[a], items[b] = items[b], items[a]
        keys[a], keys[b] = keys[b], keys[a]
        self._slot_of[items[a]] = a
        self._slot_of[items[b]] = b

    def _sift_up(self, slot: int) -> None:
        keys = self._keys
        while slot > 0:
            parent = (slot - 1) // 2
            if keys[slot] < keys[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        keys = self._keys
        size = len(keys)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and keys[left] < keys[smallest]:
                smallest = left
            if right < size and keys[right] < keys[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest

    # ------------------------------------------------------------------ #
    # debugging / testing aids
    # ------------------------------------------------------------------ #
    def items(self) -> np.ndarray:
        """Items currently in the heap (arbitrary order, copy)."""
        return np.asarray(self._items, dtype=np.int64)

    def check_invariants(self) -> bool:
        """Verify the heap property and the item→slot map (tests only)."""
        for slot in range(1, len(self._items)):
            parent = (slot - 1) // 2
            if self._keys[parent] > self._keys[slot]:
                return False
        for slot in range(len(self._items)):
            if self._slot_of[self._items[slot]] != slot:
                return False
        return True


# --------------------------------------------------------------------- #
# reference fused ReHeap kernel (the pre-speculative-batch implementation)
# --------------------------------------------------------------------- #
#: Upper bound on ``total_positions * max_lag`` per vectorized block in
#: :func:`reference_batched_contiguous_acf` (the original budget).
_REFERENCE_MAX_BLOCK_CELLS = 1 << 21

_reference_block_scratch_tls = threading.local()


def reference_batched_contiguous_acf(state, lengths, positions, deltas
                           ) -> np.ndarray:
    """ACF each of many contiguous-range changes would produce, vectorized.

    The ``k`` hypothetical changes are given in concatenated form:
    ``lengths[s]`` positions belong to segment ``s`` and the segments'
    positions/deltas are stored back to back in ``positions``/``deltas``
    (each segment's positions must be consecutive integers).  Returns a
    ``(k, L)`` matrix whose row ``s`` is the ACF after applying segment
    ``s`` alone; zero-length segments get the current ACF.

    Single-position segments reproduce the arithmetic of
    :func:`batched_single_change_impacts` exactly.  The cross terms
    ``delta_p * delta_{p+l}`` inside each segment are accumulated per lag
    with a bincount over same-segment pairs.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.float64)
    k = lengths.size
    num_lags = state.lags.size
    out = np.empty((k, num_lags), dtype=np.float64)
    if k == 0:
        return out

    nonzero = lengths > 0
    if not bool(nonzero.all()):
        out[~nonzero] = state.acf()
    lens = lengths[nonzero]
    if lens.size == 0:
        return out
    row_index = np.flatnonzero(nonzero)

    cum = np.concatenate(([0], np.cumsum(lens)))
    # Split into blocks so temp arrays stay ~_REFERENCE_MAX_BLOCK_CELLS elements.
    budget = max(_REFERENCE_MAX_BLOCK_CELLS // max(num_lags, 1), int(lens.max()))
    start_seg = 0
    while start_seg < lens.size:
        stop_seg = int(np.searchsorted(cum, cum[start_seg] + budget, side="right")) - 1
        stop_seg = max(stop_seg, start_seg + 1)
        block_rows = row_index[start_seg:stop_seg]
        lo, hi = int(cum[start_seg]), int(cum[stop_seg])
        out[block_rows] = _reference_contiguous_acf_block(
            state, lens[start_seg:stop_seg], positions[lo:hi], deltas[lo:hi])
        start_seg = stop_seg
    return out


class _ReferenceBlockScratch:
    """Reusable ``(T, L)`` scratch buffers for :func:`_reference_contiguous_acf_block`.

    One ReHeap call allocated ~8 ``(T, L)`` temporaries; the pool keeps a
    float64, two int64, and two bool buffers per ``(thread, L)`` and grows
    their row capacity geometrically, so steady-state ReHeap calls allocate
    no ``(T, L)`` arrays at all.
    """

    __slots__ = ("rows", "f1", "f2", "i1", "i2", "b1", "b2")

    def __init__(self, rows: int, num_lags: int):
        self.rows = rows
        self.f1 = np.empty((rows, num_lags), dtype=np.float64)
        self.f2 = np.empty((rows, num_lags), dtype=np.float64)
        self.i1 = np.empty((rows, num_lags), dtype=np.int64)
        self.i2 = np.empty((rows, num_lags), dtype=np.int64)
        self.b1 = np.empty((rows, num_lags), dtype=bool)
        self.b2 = np.empty((rows, num_lags), dtype=bool)



def _reference_block_scratch(rows: int, num_lags: int) -> _ReferenceBlockScratch:
    """Fetch (or grow) this thread's scratch pool for ``num_lags`` lags.

    The retained pool is bounded by roughly ``2 * _REFERENCE_MAX_BLOCK_CELLS`` cells
    per ``(thread, num_lags)`` pair: blocks forced larger than that by a
    single long segment get a one-off scratch that is not kept, so a
    long-lived process cannot accumulate unbounded buffers.
    """
    pools = getattr(_reference_block_scratch_tls, "pools", None)
    if pools is None:
        pools = {}
        _reference_block_scratch_tls.pools = pools
    scratch = pools.get(num_lags)
    if scratch is None or scratch.rows < rows:
        capacity = max(rows, 2 * scratch.rows) if scratch is not None else rows
        scratch = _ReferenceBlockScratch(capacity, num_lags)
        if capacity * num_lags <= 2 * _REFERENCE_MAX_BLOCK_CELLS:
            pools[num_lags] = scratch
    return scratch


def _reference_masked_segment_sums(values, mask: np.ndarray, scratch_rows: np.ndarray,
                         offsets: np.ndarray) -> np.ndarray:
    """``np.add.reduceat(np.where(mask, values, 0.0), offsets, axis=0)``
    without allocating the masked ``(T, L)`` temporary.

    Multiplying by the boolean mask zeroes the masked slots in one pass;
    the products differ from ``np.where`` only in the sign of masked zeros,
    which cannot change the segment sums' final values.
    """
    np.multiply(values, mask, out=scratch_rows)
    return np.add.reduceat(scratch_rows, offsets, axis=0)


def _reference_contiguous_acf_block(state, lens: np.ndarray,
                          positions: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """One vectorized block of :func:`reference_batched_contiguous_acf`.

    All ``(T, L)`` intermediates live in the thread-local scratch pool
    (:func:`_block_scratch`); the arithmetic — and therefore the result, bit
    for bit — matches the original allocation-per-call formulation.
    """
    sums = state.sums
    lags = state.lags
    counts = sums.counts
    current = state.current
    n = state.n
    num_segments = lens.size
    offsets = np.concatenate(([0], np.cumsum(lens[:-1])))

    total = positions.size
    scratch = _reference_block_scratch(total, lags.size)
    f1 = scratch.f1[:total]
    f2 = scratch.f2[:total]
    i1 = scratch.i1[:total]
    i2 = scratch.i2[:total]
    b1 = scratch.b1[:total]
    b2 = scratch.b2[:total]

    pos = positions[:, np.newaxis]                   # (T, 1)
    delta = deltas[:, np.newaxis]                    # (T, 1)
    np.add(pos, lags[np.newaxis, :], out=i1)         # pos + lag
    np.subtract(pos, lags[np.newaxis, :], out=i2)    # pos - lag
    head = np.less_equal(i1, n - 1, out=b1)          # (T, L)
    tail = np.greater_equal(i2, 0, out=b2)

    own = current[pos]
    square_term = delta * (2.0 * own + delta)

    d_sx = _reference_masked_segment_sums(delta, head, f1, offsets)
    d_sxl = _reference_masked_segment_sums(delta, tail, f1, offsets)
    d_sx2 = _reference_masked_segment_sums(square_term, head, f1, offsets)
    d_sx2l = _reference_masked_segment_sums(square_term, tail, f1, offsets)

    # Indices are pre-clipped into range, so mode="clip" is semantically a
    # no-op; it lets np.take skip the slow bounds-checked buffered path.
    right_idx = np.minimum(i1, n - 1, out=i1)
    left_idx = np.maximum(i2, 0, out=i2)
    np.take(current, right_idx, out=f2, mode="clip")
    np.multiply(delta, f2, out=f2)                   # delta * current[right]
    d_head = _reference_masked_segment_sums(f2, head, f1, offsets)
    np.take(current, left_idx, out=f2, mode="clip")
    np.multiply(delta, f2, out=f2)                   # delta * current[left]
    d_tail = _reference_masked_segment_sums(f2, tail, f1, offsets)

    new_sx = sums.sx + d_sx
    new_sxl = sums.sxl + d_sxl
    new_sx2 = sums.sx2 + d_sx2
    new_sx2l = sums.sx2l + d_sx2l
    # Summed in the same association order as the single-change kernel so
    # single-position segments stay bit-identical to it.
    new_sxxl = (sums.sxxl + d_head) + d_tail

    # Cross terms delta_p * delta_{p+l} for pairs inside the same segment.
    # Positions within a segment are consecutive, so lag-l pairs are exactly
    # the concatenated entries at distance l that share a segment; one
    # (T, L) partner gather + segment-reduce covers every lag at once.
    max_len = int(lens.max())
    if max_len > 1:
        segment_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lens)
        num_cross_lags = min(max_len - 1, lags.size)
        if num_cross_lags <= 8:
            # Few lags carry cross terms: a short per-lag bincount beats
            # materialising the full (T, L) pair matrix.
            cross = np.zeros((num_segments, lags.size), dtype=np.float64)
            for lag_index in range(num_cross_lags):
                shift = lag_index + 1
                same = segment_ids[shift:] == segment_ids[:-shift]
                products = deltas[shift:] * deltas[:-shift]
                cross[:, lag_index] = np.bincount(
                    segment_ids[shift:][same], weights=products[same],
                    minlength=num_segments)
            new_sxxl = new_sxxl + cross
        else:
            partner = np.add(np.arange(total, dtype=np.int64)[:, np.newaxis],
                             lags[np.newaxis, :], out=i1)
            in_range = np.less(partner, total, out=b1)
            np.minimum(partner, total - 1, out=partner)
            np.take(segment_ids, partner, out=i2, mode="clip")
            pair = np.equal(i2, segment_ids[:, np.newaxis], out=b2)
            np.logical_and(pair, in_range, out=pair)
            np.take(deltas, partner, out=f2, mode="clip")
            np.multiply(deltas[:, np.newaxis], f2, out=f2)
            new_sxxl = new_sxxl + _reference_masked_segment_sums(f2, pair, f1, offsets)

    numerator = counts * new_sxxl - new_sx * new_sxl
    var_head = counts * new_sx2 - new_sx * new_sx
    var_tail = counts * new_sx2l - new_sxl * new_sxl
    acf_new = np.zeros_like(numerator)
    valid = (var_head > 0.0) & (var_tail > 0.0)
    denom = np.sqrt(np.where(valid, var_head * var_tail, 1.0))
    np.divide(numerator, denom, out=acf_new, where=valid)
    return acf_new


