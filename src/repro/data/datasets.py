"""Synthetic stand-ins for the paper's eight evaluation datasets (Table 1).

Each entry mirrors the structural properties documented in Table 1 of the
paper — length, seasonal period, ACF configuration (number of lags, optional
aggregation window), value range, and rough noise level.  The generated data
is synthetic (see DESIGN.md, substitutions), but preserves the seasonality
that the ACF-aware compressors exploit, which is what the experiments
measure.

``load_dataset(name)`` returns a :class:`repro.data.timeseries.TimeSeries`
whose ``metadata`` carries the per-dataset experiment configuration:

* ``acf_lags`` — number of ACF lags to preserve,
* ``agg_window`` — tumbling-window size for the on-aggregates variant
  (``1`` means the ACF is preserved directly),
* ``group`` — 1 (direct ACF) or 2 (ACF on aggregates), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from ..exceptions import DatasetError
from .generators import (
    SeasonalSpec,
    SyntheticSeriesConfig,
    generate_intermittent_series,
    generate_seasonal_series,
)
from .timeseries import TimeSeries

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "load_all_datasets"]

#: Default length cap so experiments run at laptop scale.  Passing
#: ``full_length=True`` to :func:`load_dataset` generates the paper-scale
#: lengths instead.
DEFAULT_LENGTH_CAP = 100_000


@dataclass
class DatasetSpec:
    """Recipe and experiment configuration for one synthetic dataset."""

    name: str
    paper_length: int
    acf_lags: int
    agg_window: int
    group: int
    description: str
    builder: Callable[[int, int], np.ndarray]
    default_epsilon: float = 0.01
    metadata: dict = field(default_factory=dict)

    def build(self, length: int, seed: int) -> np.ndarray:
        """Generate ``length`` samples with the given ``seed``."""
        return self.builder(length, seed)


def _elec_power(length: int, seed: int) -> np.ndarray:
    """Household electric power: strong daily cycle, spiky appliance noise."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=96, amplitude=1.2, harmonics=3),
                       SeasonalSpec(period=96 * 7, amplitude=0.4)],
        trend_slope=0.0,
        noise_std=0.35,
        ar_coefficient=0.55,
        level=2.0,
        clip_min=0.05,
        round_to=3,
    )
    return generate_seasonal_series(config, seed=seed)


def _min_temp(length: int, seed: int) -> np.ndarray:
    """Daily minimum temperature: yearly seasonality, moderate noise."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=365, amplitude=5.5, harmonics=2)],
        noise_std=2.2,
        ar_coefficient=0.6,
        level=11.0,
        clip_min=-5.0,
        round_to=1,
    )
    return generate_seasonal_series(config, seed=seed)


def _pedestrian(length: int, seed: int) -> np.ndarray:
    """Hourly pedestrian counts: daily + weekly cycle, non-negative integers."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=24, amplitude=900.0, harmonics=3),
                       SeasonalSpec(period=24 * 7, amplitude=350.0)],
        noise_std=180.0,
        ar_coefficient=0.4,
        level=1000.0,
        clip_min=0.0,
        round_to=0,
    )
    return generate_seasonal_series(config, seed=seed)


def _uk_elec_dem(length: int, seed: int) -> np.ndarray:
    """Half-hourly national electricity demand: daily + weekly seasonality."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=48, amplitude=5200.0, harmonics=3),
                       SeasonalSpec(period=48 * 7, amplitude=1800.0)],
        trend_slope=-10.0,
        noise_std=900.0,
        ar_coefficient=0.8,
        level=28000.0,
        clip_min=15000.0,
        round_to=0,
    )
    return generate_seasonal_series(config, seed=seed)


def _aus_elec_dem(length: int, seed: int) -> np.ndarray:
    """Half-hourly Victorian electricity demand, aggregated ACF (7 lags on 48)."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=48, amplitude=1100.0, harmonics=2),
                       SeasonalSpec(period=48 * 7, amplitude=450.0),
                       SeasonalSpec(period=48 * 365, amplitude=300.0)],
        noise_std=260.0,
        ar_coefficient=0.7,
        level=6800.0,
        clip_min=3000.0,
        round_to=1,
    )
    return generate_seasonal_series(config, seed=seed)


def _humidity(length: int, seed: int) -> np.ndarray:
    """1-minute relative humidity: smooth daily cycle, bounded to [0, 100]."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=1440, amplitude=14.0, harmonics=2)],
        noise_std=1.2,
        ar_coefficient=0.95,
        level=72.0,
        clip_min=5.0,
        clip_max=100.0,
        round_to=2,
    )
    return generate_seasonal_series(config, seed=seed)


def _ir_bio_temp(length: int, seed: int) -> np.ndarray:
    """1-minute infrared surface temperature: daily cycle plus slow drift."""
    config = SyntheticSeriesConfig(
        length=length,
        seasonalities=[SeasonalSpec(period=1440, amplitude=7.5, harmonics=2),
                       SeasonalSpec(period=1440 * 30, amplitude=4.0)],
        noise_std=0.8,
        ar_coefficient=0.9,
        level=23.0,
        clip_min=-10.0,
        round_to=2,
    )
    return generate_seasonal_series(config, seed=seed)


def _solar_power(length: int, seed: int) -> np.ndarray:
    """30-second solar power production: zero at night, half-sine bump by day.

    The day is always 2,880 samples (the paper's 30-second sampling), so the
    distinctive night plateau — Table 1's 75% share of repeated values — only
    reaches its full extent once the requested length covers several days.
    """
    return generate_intermittent_series(
        length, period=2880, active_fraction=0.45, peak=110.0, noise_std=3.0, seed=seed)


DATASETS: Dict[str, DatasetSpec] = {
    "ElecPower": DatasetSpec(
        name="ElecPower", paper_length=2_977, acf_lags=48, agg_window=1, group=1,
        description="household electric power, 15-minute sampling",
        builder=_elec_power, default_epsilon=0.01),
    "MinTemp": DatasetSpec(
        name="MinTemp", paper_length=3_652, acf_lags=365, agg_window=1, group=1,
        description="daily minimum temperature, Melbourne 1981-1990",
        builder=_min_temp, default_epsilon=0.01),
    "Pedestrian": DatasetSpec(
        name="Pedestrian", paper_length=8_766, acf_lags=24, agg_window=1, group=1,
        description="hourly pedestrian counts",
        builder=_pedestrian, default_epsilon=0.01),
    "UKElecDem": DatasetSpec(
        name="UKElecDem", paper_length=17_520, acf_lags=48, agg_window=1, group=1,
        description="half-hourly GB electricity demand 2021",
        builder=_uk_elec_dem, default_epsilon=0.01),
    "AUSElecDem": DatasetSpec(
        name="AUSElecDem", paper_length=230_736, acf_lags=7, agg_window=48, group=2,
        description="half-hourly Victorian electricity demand (ACF: 7 lags on 48-point windows)",
        builder=_aus_elec_dem, default_epsilon=0.001),
    "Humidity": DatasetSpec(
        name="Humidity", paper_length=397_440, acf_lags=24, agg_window=60, group=2,
        description="1-minute relative humidity (ACF: 24 lags on hourly means)",
        builder=_humidity, default_epsilon=0.001),
    "IRBioTemp": DatasetSpec(
        name="IRBioTemp", paper_length=878_400, acf_lags=24, agg_window=60, group=2,
        description="1-minute IR surface temperature (ACF: 24 lags on hourly means)",
        builder=_ir_bio_temp, default_epsilon=0.001),
    "SolarPower": DatasetSpec(
        name="SolarPower", paper_length=986_297, acf_lags=24, agg_window=120, group=2,
        description="30-second solar power production (ACF: 24 lags on hourly means)",
        builder=_solar_power, default_epsilon=0.001),
}


def dataset_names() -> list[str]:
    """Names of all available synthetic datasets, in the paper's order."""
    return list(DATASETS.keys())


def load_dataset(name: str, *, length: int | None = None, seed: int = 7,
                 full_length: bool = False) -> TimeSeries:
    """Generate the synthetic stand-in for a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    length:
        Override the number of samples.  By default the paper length is
        used, capped at :data:`DEFAULT_LENGTH_CAP` unless ``full_length``.
    seed:
        Random seed; the same ``(name, length, seed)`` triple always yields
        the same series.
    full_length:
        Generate the full paper-scale length even when it exceeds the cap.
    """
    key = next((k for k in DATASETS if k.lower() == str(name).lower()), None)
    if key is None:
        raise DatasetError(f"unknown dataset {name!r}; available: {dataset_names()}")
    spec = DATASETS[key]
    if length is None:
        length = spec.paper_length
        if not full_length:
            length = min(length, DEFAULT_LENGTH_CAP)
    if length < 4:
        raise DatasetError("dataset length must be at least 4")
    values = spec.build(length, seed)
    metadata = {
        "acf_lags": spec.acf_lags,
        "agg_window": spec.agg_window,
        "group": spec.group,
        "default_epsilon": spec.default_epsilon,
        "paper_length": spec.paper_length,
        "seed": seed,
    }
    metadata.update(spec.metadata)
    period = spec.acf_lags * spec.agg_window
    return TimeSeries(values=values, name=spec.name, period=period,
                      description=spec.description, metadata=metadata)


def load_all_datasets(*, length: int | None = None, seed: int = 7) -> dict[str, TimeSeries]:
    """Load every dataset (capped length); convenient for sweep benchmarks."""
    return {name: load_dataset(name, length=length, seed=seed) for name in dataset_names()}
