"""Synthetic anomaly-detection corpus (stand-in for the UCR anomaly archive).

The paper's last experiment (Figure 13) evaluates anomaly-detection accuracy
after compression on the UCR anomaly archive: 250 univariate series, each
with exactly one labelled anomaly, scored by whether the detector's location
falls within +-100 points of the label ("UCR-score").

This module generates a corpus with the same protocol: seasonal base signals
with one injected anomaly per series drawn from a small taxonomy (spike,
dip, level shift, noise burst, frequency change, flatline).  Each item
records the ground-truth anomaly interval so the same UCR-style score can be
computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError

__all__ = ["AnomalyCase", "generate_anomaly_case", "generate_anomaly_corpus", "ANOMALY_KINDS"]

ANOMALY_KINDS = ("spike", "dip", "level_shift", "noise_burst", "frequency_change", "flatline")


@dataclass
class AnomalyCase:
    """One corpus item: values, anomaly interval, and generation details."""

    values: np.ndarray
    anomaly_start: int
    anomaly_end: int
    kind: str
    name: str

    @property
    def anomaly_center(self) -> int:
        """Midpoint of the labelled anomaly region."""
        return (self.anomaly_start + self.anomaly_end) // 2

    def is_hit(self, detected_index: int, tolerance: int = 100) -> bool:
        """UCR-style hit test: detection within ``tolerance`` of the region."""
        return (self.anomaly_start - tolerance) <= detected_index <= (self.anomaly_end + tolerance)


def _base_signal(length: int, period: int, rng: np.random.Generator) -> np.ndarray:
    t = np.arange(length, dtype=np.float64)
    amplitude = rng.uniform(0.8, 1.5)
    harmonics = rng.integers(1, 4)
    signal = np.zeros(length)
    for harmonic in range(1, int(harmonics) + 1):
        signal += (amplitude / harmonic) * np.sin(
            2 * np.pi * harmonic * t / period + rng.uniform(0, 2 * np.pi))
    signal += rng.normal(0.0, 0.08, size=length)
    return signal


def generate_anomaly_case(kind: str, *, length: int = 4000, period: int = 100,
                          seed: int | None = None, name: str | None = None) -> AnomalyCase:
    """Generate one series with a single injected anomaly of the given kind."""
    if kind not in ANOMALY_KINDS:
        raise InvalidParameterError(f"unknown anomaly kind {kind!r}; available: {ANOMALY_KINDS}")
    length = check_positive_int(length, "length")
    period = check_positive_int(period, "period")
    rng = np.random.default_rng(seed)
    values = _base_signal(length, period, rng)

    # Place the anomaly in the second half so detectors have a clean training
    # prefix, mirroring the UCR archive convention.
    start = int(rng.integers(length // 2, length - max(period, 200) - 1))
    if kind == "spike":
        width = int(rng.integers(1, 4))
        end = start + width
        values[start:end] += rng.uniform(4.0, 7.0)
    elif kind == "dip":
        width = int(rng.integers(1, 4))
        end = start + width
        values[start:end] -= rng.uniform(4.0, 7.0)
    elif kind == "level_shift":
        width = int(rng.integers(period // 2, period))
        end = start + width
        values[start:end] += rng.uniform(1.5, 2.5)
    elif kind == "noise_burst":
        width = int(rng.integers(period // 2, period))
        end = start + width
        values[start:end] += rng.normal(0.0, 1.2, size=width)
    elif kind == "frequency_change":
        width = period
        end = start + width
        t = np.arange(width, dtype=np.float64)
        values[start:end] = np.sin(2 * np.pi * t / max(period // 3, 2)) + rng.normal(
            0.0, 0.08, size=width)
    else:  # flatline
        width = int(rng.integers(period // 2, period))
        end = start + width
        values[start:end] = values[start]
    return AnomalyCase(values=values, anomaly_start=start, anomaly_end=int(end),
                       kind=kind, name=name or f"{kind}-{seed}")


def generate_anomaly_corpus(num_cases: int = 50, *, length: int = 4000, period: int = 100,
                            seed: int = 11) -> list[AnomalyCase]:
    """Generate a corpus of anomaly cases cycling through all anomaly kinds."""
    num_cases = check_positive_int(num_cases, "num_cases")
    cases = []
    for index in range(num_cases):
        kind = ANOMALY_KINDS[index % len(ANOMALY_KINDS)]
        cases.append(generate_anomaly_case(
            kind, length=length, period=period, seed=seed + index,
            name=f"case-{index:03d}-{kind}"))
    return cases
