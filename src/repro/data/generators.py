"""Synthetic time-series generators.

The paper evaluates CAMEO on eight public datasets that are not available in
this offline environment.  The generators below synthesize series with the
same structural properties the algorithms rely on — length, seasonal
period(s), trend, value range, noise level, and discreteness — so the shape
of every experiment (who wins, where curves cross) is reproducible.  The
mapping from each paper dataset to a generator configuration lives in
:mod:`repro.data.datasets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError

__all__ = [
    "SeasonalSpec",
    "SyntheticSeriesConfig",
    "generate_seasonal_series",
    "generate_random_walk",
    "generate_ar_process",
    "generate_intermittent_series",
    "generate_sine_mixture",
]


@dataclass
class SeasonalSpec:
    """One seasonal component: period in samples, amplitude, optional harmonics."""

    period: int
    amplitude: float = 1.0
    harmonics: int = 1
    phase: float = 0.0

    def render(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Evaluate the seasonal component over ``n`` samples."""
        t = np.arange(n, dtype=np.float64)
        component = np.zeros(n)
        for harmonic in range(1, self.harmonics + 1):
            # Higher harmonics decay in amplitude to keep the wave natural.
            amplitude = self.amplitude / harmonic
            phase = self.phase + rng.uniform(0, 2 * np.pi) * (harmonic > 1)
            component += amplitude * np.sin(2 * np.pi * harmonic * t / self.period + phase)
        return component


@dataclass
class SyntheticSeriesConfig:
    """Full recipe for a synthetic series.

    Attributes
    ----------
    length:
        Number of samples.
    seasonalities:
        One or more :class:`SeasonalSpec` components (e.g. daily + weekly).
    trend_slope:
        Linear trend added per 1000 samples.
    noise_std:
        Standard deviation of additive Gaussian noise.
    ar_coefficient:
        Optional AR(1) coefficient for correlated noise (0 disables).
    level:
        Base level added to everything.
    scale:
        Final multiplicative scale.
    clip_min / clip_max:
        Optional clipping, e.g. to keep counts non-negative.
    round_to:
        Round values to this many decimals (None disables); integer datasets
        such as Pedestrian use 0.
    zero_fraction:
        Fraction of the seasonal cycle forced to (near) zero — models solar
        power production at night.
    """

    length: int
    seasonalities: Sequence[SeasonalSpec] = field(default_factory=list)
    trend_slope: float = 0.0
    noise_std: float = 0.1
    ar_coefficient: float = 0.0
    level: float = 0.0
    scale: float = 1.0
    clip_min: float | None = None
    clip_max: float | None = None
    round_to: int | None = None
    zero_fraction: float = 0.0


def _correlated_noise(n: int, std: float, ar_coefficient: float,
                      rng: np.random.Generator) -> np.ndarray:
    """White or AR(1) noise with the requested marginal standard deviation."""
    if std <= 0:
        return np.zeros(n)
    white = rng.normal(0.0, std, size=n)
    if ar_coefficient == 0.0:
        return white
    if not -1.0 < ar_coefficient < 1.0:
        raise InvalidParameterError("ar_coefficient must lie in (-1, 1)")
    innovations = white * np.sqrt(1.0 - ar_coefficient ** 2)
    noise = np.empty(n)
    noise[0] = white[0]
    for t in range(1, n):
        noise[t] = ar_coefficient * noise[t - 1] + innovations[t]
    return noise


def generate_seasonal_series(config: SyntheticSeriesConfig, *,
                             seed: int | None = None) -> np.ndarray:
    """Generate a series from a :class:`SyntheticSeriesConfig`."""
    n = check_positive_int(config.length, "length")
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    series = np.full(n, float(config.level))
    for spec in config.seasonalities:
        series += spec.render(n, rng)
    series += config.trend_slope * t / 1000.0
    series += _correlated_noise(n, config.noise_std, config.ar_coefficient, rng)
    if config.zero_fraction > 0.0 and config.seasonalities:
        period = config.seasonalities[0].period
        phase = (t % period) / period
        mask = phase < config.zero_fraction
        series[mask] = 0.0
    series *= config.scale
    if config.clip_min is not None or config.clip_max is not None:
        series = np.clip(series, config.clip_min, config.clip_max)
    if config.round_to is not None:
        series = np.round(series, config.round_to)
    return series


def generate_random_walk(length: int, *, step_std: float = 1.0, level: float = 0.0,
                         seed: int | None = None) -> np.ndarray:
    """Gaussian random walk — a convenient non-seasonal stress test."""
    length = check_positive_int(length, "length")
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, step_std, size=length)
    steps[0] = 0.0
    return level + np.cumsum(steps)


def generate_ar_process(length: int, coefficients: Sequence[float], *,
                        noise_std: float = 1.0, seed: int | None = None) -> np.ndarray:
    """Simulate an AR(p) process with the given coefficients.

    Used by tests to produce series whose theoretical ACF/PACF are known.
    """
    length = check_positive_int(length, "length")
    phi = np.asarray(coefficients, dtype=np.float64)
    order = phi.size
    if order == 0:
        raise InvalidParameterError("AR process needs at least one coefficient")
    rng = np.random.default_rng(seed)
    burn_in = max(10 * order, 100)
    total = length + burn_in
    noise = rng.normal(0.0, noise_std, size=total)
    x = np.zeros(total)
    for t in range(order, total):
        x[t] = float(np.dot(phi, x[t - order:t][::-1])) + noise[t]
    return x[burn_in:]


def generate_intermittent_series(length: int, *, period: int = 2880,
                                 active_fraction: float = 0.5, peak: float = 100.0,
                                 noise_std: float = 2.0,
                                 seed: int | None = None) -> np.ndarray:
    """Series that is exactly zero for part of every cycle (solar-power shape).

    ``active_fraction`` of each period follows a half-sine bump up to
    ``peak``; the remainder is zero.  This reproduces SolarPower's unusual
    75% probability of consecutive equal values (Table 1).
    """
    length = check_positive_int(length, "length")
    period = check_positive_int(period, "period")
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    phase = (t % period) / period
    series = np.zeros(length)
    active = phase < active_fraction
    bump = np.sin(np.pi * phase[active] / active_fraction)
    series[active] = peak * bump + rng.normal(0.0, noise_std, size=int(active.sum()))
    return np.clip(series, 0.0, None)


def generate_sine_mixture(length: int, periods: Sequence[int], *,
                          amplitudes: Sequence[float] | None = None,
                          noise_std: float = 0.05,
                          seed: int | None = None) -> np.ndarray:
    """Simple mixture of sines — handy for unit tests with known spectrum."""
    length = check_positive_int(length, "length")
    if not periods:
        raise InvalidParameterError("at least one period is required")
    if amplitudes is None:
        amplitudes = [1.0] * len(periods)
    if len(amplitudes) != len(periods):
        raise InvalidParameterError("amplitudes must match periods in length")
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    series = np.zeros(length)
    for period, amplitude in zip(periods, amplitudes):
        series += amplitude * np.sin(2 * np.pi * t / period)
    if noise_std > 0:
        series += rng.normal(0.0, noise_std, size=length)
    return series
