"""Time series containers used across the library.

Three containers cover the life-cycle of a compressed series:

* :class:`TimeSeries` — an equidistant (regular) univariate series plus
  metadata (name, seasonal period, sampling description).
* :class:`IrregularSeries` — a subset of the original points, i.e. what every
  line-simplification compressor produces.  It knows how to reconstruct the
  regular series via linear interpolation (the paper's decompression) and
  how large it is in bits.
* :class:`MultivariateSeries` — a thin column collection used by the
  multivariate CAMEO extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from .._validation import as_float_array
from ..exceptions import DecompressionError, InvalidParameterError, InvalidSeriesError

__all__ = ["TimeSeries", "IrregularSeries", "MultivariateSeries", "BITS_PER_VALUE_RAW"]

#: Bits needed to store one raw value (double precision), used by the paper's
#: bits-per-value analysis (Table 2).
BITS_PER_VALUE_RAW = 64


@dataclass
class TimeSeries:
    """A regular (equidistant) univariate time series.

    Attributes
    ----------
    values:
        The observations as a 1-D ``float64`` array.
    name:
        Human-readable identifier (dataset name).
    period:
        Dominant seasonal period in samples (0 when unknown / none).
    description:
        Free-form sampling description, e.g. ``"hourly pedestrian counts"``.
    metadata:
        Extra attributes (aggregation window, number of ACF lags, ...).
    """

    values: np.ndarray
    name: str = "series"
    period: int = 0
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = as_float_array(self.values, name="values")
        if self.period < 0:
            raise InvalidParameterError("period must be >= 0")

    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, item):
        return self.values[item]

    # ------------------------------------------------------------------ #
    # convenience statistics (used by the Table 1 reproduction)
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Summary statistics in the spirit of the paper's Table 1."""
        x = self.values
        diffs = np.diff(x)
        n_diffs = diffs.size if diffs.size else 1
        return {
            "name": self.name,
            "length": int(x.size),
            "period": int(self.period),
            "min": float(np.min(x)),
            "max": float(np.max(x)),
            "value_range": float(np.max(x) - np.min(x)),
            "median": float(np.median(x)),
            "std": float(np.std(x)),
            "p_up": float(np.sum(diffs > 0) / n_diffs),
            "p_eq": float(np.sum(diffs == 0) / n_diffs),
            "p_down": float(np.sum(diffs < 0) / n_diffs),
            "mean_delta": float(np.mean(diffs)) if diffs.size else 0.0,
        }

    def slice(self, start: int, stop: int) -> "TimeSeries":
        """Return a copy of the series restricted to ``[start, stop)``."""
        return TimeSeries(
            values=self.values[start:stop].copy(),
            name=f"{self.name}[{start}:{stop}]",
            period=self.period,
            description=self.description,
            metadata=dict(self.metadata),
        )

    def bits(self) -> int:
        """Storage size of the raw series in bits (64 bits per value)."""
        return int(self.values.size) * BITS_PER_VALUE_RAW


@dataclass
class IrregularSeries:
    """A subset of original points — the output of line simplification.

    Attributes
    ----------
    indices:
        Sorted positions of the retained points in the original series.
    values:
        Values of the retained points (same length as ``indices``).
    original_length:
        Length ``n`` of the original series.
    name:
        Identifier, usually derived from the compressor and input series.
    metadata:
        Compressor-specific details (error bound, achieved ACF deviation...).
    """

    indices: np.ndarray
    values: np.ndarray
    original_length: int
    name: str = "compressed"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        values = as_float_array(self.values, name="values")
        if indices.ndim != 1:
            raise InvalidSeriesError("indices must be one-dimensional")
        if indices.size != values.size:
            raise InvalidSeriesError("indices and values must have equal length")
        if indices.size < 2:
            raise InvalidSeriesError("an irregular series needs at least two points")
        if np.any(np.diff(indices) <= 0):
            raise InvalidSeriesError("indices must be strictly increasing")
        if indices[0] != 0 or indices[-1] != self.original_length - 1:
            raise InvalidSeriesError(
                "the first and last original points must always be retained"
            )
        self.indices = indices
        self.values = values

    def __len__(self) -> int:
        return int(self.indices.size)

    # ------------------------------------------------------------------ #
    # reconstruction and size accounting
    # ------------------------------------------------------------------ #
    def decompress(self) -> np.ndarray:
        """Reconstruct the regular series by linear interpolation.

        This is the paper's decompression procedure: a single forward pass
        over the retained points.
        """
        if self.original_length < 2:
            raise DecompressionError("original length must be at least 2")
        positions = np.arange(self.original_length, dtype=np.float64)
        return np.interp(positions, self.indices.astype(np.float64), self.values)

    def value_at(self, position: int) -> float:
        """Reconstructed value at a single position (interpolated)."""
        if not 0 <= position < self.original_length:
            raise IndexError(f"position {position} out of range")
        return float(np.interp(float(position), self.indices.astype(np.float64), self.values))

    def compression_ratio(self) -> float:
        """``n / n'`` — original points over retained points."""
        return float(self.original_length) / float(self.indices.size)

    def bits(self, *, store_indices: bool = True) -> int:
        """Compressed size in bits.

        The paper's bits-per-value analysis charges 64 bits per retained
        value.  Storing positions as well (needed to reconstruct an
        irregular series exactly) costs another 32 bits per point; the paper
        reports the value-only figure, so ``store_indices`` defaults to
        ``True`` only for the honest accounting and can be disabled to match
        the paper's convention.
        """
        per_point = BITS_PER_VALUE_RAW + (32 if store_indices else 0)
        return int(self.indices.size) * per_point

    def bits_per_value(self, *, store_indices: bool = False) -> float:
        """Bits of compressed storage per original value (Table 2 metric)."""
        return self.bits(store_indices=store_indices) / float(self.original_length)

    def segments(self) -> Iterator[tuple[int, int, float, float]]:
        """Iterate over the line segments ``(i0, i1, v0, v1)`` of the model."""
        for left, right, v_left, v_right in zip(
                self.indices[:-1], self.indices[1:], self.values[:-1], self.values[1:]):
            yield int(left), int(right), float(v_left), float(v_right)


@dataclass
class MultivariateSeries:
    """A named collection of equally long univariate series (columns)."""

    columns: Mapping[str, np.ndarray]
    name: str = "multivariate"

    def __post_init__(self) -> None:
        converted = {}
        length = None
        if not self.columns:
            raise InvalidSeriesError("a multivariate series needs at least one column")
        for key, column in self.columns.items():
            array = as_float_array(column, name=f"column {key!r}")
            if length is None:
                length = array.size
            elif array.size != length:
                raise InvalidSeriesError("all columns must have the same length")
            converted[str(key)] = array
        self.columns = converted

    def __len__(self) -> int:
        first = next(iter(self.columns.values()))
        return int(first.size)

    @property
    def column_names(self) -> Sequence[str]:
        return list(self.columns.keys())

    def column(self, name: str) -> np.ndarray:
        """Return a single column by name."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise InvalidParameterError(f"unknown column {name!r}") from exc

    def as_matrix(self) -> np.ndarray:
        """Stack all columns into an ``(n, d)`` matrix."""
        return np.column_stack([self.columns[name] for name in self.column_names])
