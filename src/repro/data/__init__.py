"""Datasets, containers, and synthetic generators."""

from .anomaly_corpus import AnomalyCase, generate_anomaly_case, generate_anomaly_corpus
from .datasets import DATASETS, DatasetSpec, dataset_names, load_all_datasets, load_dataset
from .generators import (
    SeasonalSpec,
    SyntheticSeriesConfig,
    generate_ar_process,
    generate_intermittent_series,
    generate_random_walk,
    generate_seasonal_series,
    generate_sine_mixture,
)
from .timeseries import BITS_PER_VALUE_RAW, IrregularSeries, MultivariateSeries, TimeSeries

__all__ = [
    "TimeSeries",
    "IrregularSeries",
    "MultivariateSeries",
    "BITS_PER_VALUE_RAW",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "load_all_datasets",
    "SeasonalSpec",
    "SyntheticSeriesConfig",
    "generate_seasonal_series",
    "generate_random_walk",
    "generate_ar_process",
    "generate_intermittent_series",
    "generate_sine_mixture",
    "AnomalyCase",
    "generate_anomaly_case",
    "generate_anomaly_corpus",
]
