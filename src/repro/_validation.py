"""Shared input-validation helpers.

These utilities normalise user input into ``numpy`` arrays and raise the
library's exception types with actionable messages.  They are used by every
public entry point so that error behaviour is consistent across subsystems.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import InvalidParameterError, InvalidSeriesError

__all__ = [
    "as_float_array",
    "check_min_length",
    "check_positive_int",
    "check_probability",
    "check_positive_float",
    "check_lag",
]


def as_float_array(values: Iterable[float], name: str = "values") -> np.ndarray:
    """Convert ``values`` to a 1-D ``float64`` array and validate it.

    Parameters
    ----------
    values:
        Any iterable of numbers (list, tuple, ndarray, generator).
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A contiguous 1-D ``float64`` copy of the input.

    Raises
    ------
    InvalidSeriesError
        If the input is empty, not one-dimensional, or contains NaN/inf.
    """
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(
            f"{name} must be one-dimensional, got shape {array.shape}"
        )
    if array.size == 0:
        raise InvalidSeriesError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise InvalidSeriesError(f"{name} contains NaN or infinite entries")
    return np.ascontiguousarray(array)


def check_min_length(values: np.ndarray, minimum: int, name: str = "series") -> None:
    """Raise if ``values`` has fewer than ``minimum`` elements."""
    if values.size < minimum:
        raise InvalidSeriesError(
            f"{name} must contain at least {minimum} points, got {values.size}"
        )


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return int(value)


def check_positive_float(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite float."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0:
            raise InvalidParameterError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise InvalidParameterError(f"{name} must be > 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0, 1], got {value}")
    return value


def check_lag(max_lag: int, n: int, name: str = "max_lag") -> int:
    """Validate an ACF maximum lag against the series length ``n``."""
    max_lag = check_positive_int(max_lag, name)
    if max_lag >= n:
        raise InvalidParameterError(
            f"{name} must be smaller than the series length ({n}), got {max_lag}"
        )
    return max_lag


def ensure_sequence_of_arrays(series: Sequence[Iterable[float]],
                              name: str = "series") -> list[np.ndarray]:
    """Validate a collection of series and return them as float arrays."""
    if len(series) == 0:
        raise InvalidSeriesError(f"{name} must contain at least one series")
    return [as_float_array(s, name=f"{name}[{i}]") for i, s in enumerate(series)]
