"""Deterministic fault injection for the batch engine.

The supervisor layer (:mod:`repro.engine.supervisor`) promises that a batch
*always* terminates with per-series outcomes — through worker crashes, hangs,
mid-encode exceptions, and corrupted shared-memory manifests.  Promises like
that rot unless every recovery path is exercised on every backend, so this
module provides *planned* faults instead of hope:

* a :class:`FaultPlan` is a list of :class:`FaultAction` entries, each naming
  a *kind* (``crash`` / ``hang`` / ``raise`` / ``corrupt``), an injection
  *site* (``chunk`` / ``encode`` / ``manifest``), and the batch index of the
  series that selects where it fires;
* plans travel to worker processes through the ``REPRO_FAULT_PLAN``
  environment variable (JSON), so ``fork`` and ``spawn`` children both see
  them without any pickling support from the executor;
* each action fires a bounded number of times (``max_hits``, default once).
  Hits are claimed through ``O_CREAT | O_EXCL`` marker files in the plan's
  ``state_dir``, which makes the accounting atomic *across processes*: a
  worker that crashes after claiming its hit does not crash again on retry,
  which is exactly the recover-on-retry scenario the supervisor tests need;
* ``crash`` only hard-kills (``os._exit``) when it fires in a process other
  than the one that activated the plan; in the activating process (serial
  and thread backends) it degrades to raising :class:`InjectedCrash`, so a
  hostile plan can never take down the test runner itself.

The test suite activates plans with :func:`active_plan`; the stress harness
derives reproducible plans from integer seeds with :func:`random_plan` (the
seed is recorded, so any soak failure replays deterministically).

This module is import-cheap and :func:`fire` is a no-op dictionary lookup
when no plan is active, so production code pays nothing for the hooks.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = [
    "ENV_PLAN",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "ServiceFaultAction",
    "StorageFaultAction",
    "active_plan",
    "fire",
    "fire_service",
    "fire_storage",
    "inject_bit_flip",
    "inject_torn_write",
    "load_plan",
    "random_plan",
    "random_service_plan",
    "random_storage_plan",
]

#: Environment variable carrying the active plan as JSON.
ENV_PLAN = "REPRO_FAULT_PLAN"

#: Exit status used by injected worker crashes (recognizable in waitpid logs).
CRASH_EXIT_CODE = 86

#: Recognised fault kinds.
KINDS = ("crash", "hang", "raise", "corrupt")

#: Recognised injection sites.
#:
#: ``chunk``
#:     Fires at the start of a chunk task, before per-series error isolation
#:     — the supervisor's retry/rebuild machinery is what must absorb it.
#: ``encode``
#:     Fires inside the per-series encode loop — per-series isolation must
#:     turn it into one error outcome while the rest of the chunk completes.
#: ``manifest``
#:     Fires in the parent while building the shared-memory manifest —
#:     corrupts one entry so the worker cannot view that chunk's input.
SITES = ("chunk", "encode", "manifest")

#: Recognised storage fault kinds (see :class:`StorageFaultAction`).
#:
#: ``crash``
#:     Stop execution at the site: ``os._exit`` in a worker process, or
#:     :class:`InjectedCrash` in the plan-activating process (the durable
#:     store's kill-at-every-syncpoint harness runs in-process, so a crash
#:     is an exception the harness catches before reopening the store).
#: ``torn_write``
#:     Truncate the bytes being written at ``at_byte`` — the on-disk
#:     artifact ends up holding only a prefix, exactly what a power loss
#:     mid-write (or a non-atomic rename) leaves behind.  Recovery must
#:     detect it through the record/segment CRC, never decode it.
#: ``bit_flip``
#:     Flip bit ``bit`` of the bytes being written — silent media
#:     corruption.  The CRC must reject the artifact.
#: ``raise``
#:     Raise :class:`InjectedFault` at the site (an I/O error stand-in).
STORAGE_KINDS = ("crash", "torn_write", "bit_flip", "raise")

#: Recognised storage injection sites, in write-path order.
#:
#: ``wal_append``
#:     One WAL record's bytes, before they are written.  A ``crash`` here
#:     loses the record (it was never durable); ``torn_write``/``bit_flip``
#:     publish a corrupt record that recovery must truncate at.
#: ``wal_sync``
#:     After the WAL record bytes hit the file, before/at fsync return.
#:     A ``crash`` here leaves a fully written record: the append was
#:     never acknowledged, but recovery may legitimately replay it.
#: ``segment_write``
#:     One sealed segment file's bytes (``torn_write``/``bit_flip``
#:     corrupt the published file; checksum verification must quarantine).
#: ``wal_compact``
#:     The rewritten WAL generation produced by a checkpoint.
#: ``manifest_write``
#:     The manifest bytes of an atomic manifest swap.
#: ``before_rename`` / ``after_rename``
#:     Immediately before / after the tmp-file → final-name rename of any
#:     durable artifact (the ``target`` filter selects which).
STORAGE_SITES = ("wal_append", "wal_sync", "segment_write", "wal_compact",
                 "manifest_write", "before_rename", "after_rename")

#: Recognised service fault kinds (see :class:`ServiceFaultAction`).
#:
#: ``crash``
#:     Stop the service at the site: :class:`InjectedCrash` in the
#:     plan-activating process (the in-process chaos harness treats it as
#:     process death — abandon the service, reopen the store, replay), or
#:     ``os._exit`` in a separate service process.
#: ``hang``
#:     Sleep ``seconds`` at the site — a stalled parser, a slow enqueue, a
#:     wedged response write.  Deadlines and drain budgets must bound it.
#: ``raise``
#:     Raise :class:`InjectedFault` at the site; the service must map it to
#:     a well-formed error response (or a best-effort drain), never a hung
#:     connection.
SERVICE_KINDS = ("crash", "hang", "raise")

#: Recognised service injection sites, in request-lifecycle order.
#:
#: ``request_parse``
#:     Before the request body is parsed — a failure here must produce a
#:     well-formed 400/500, never a hung connection.
#: ``enqueue``
#:     At job admission, after shedding decisions but before the job is
#:     queued — the window where an accepted-but-unqueued request exists.
#: ``mid_job_crash``
#:     Inside job execution: for ingest jobs *after* the spool append (the
#:     acked-but-unanswered window that idempotent retry must cover); for
#:     compress jobs before the engine runs.
#: ``drain``
#:     At the start of the graceful-drain sequence — drain must be
#:     best-effort through injected failures and crash-consistent through
#:     injected crashes.
#: ``response_write``
#:     Immediately before response bytes are written — a crash here is the
#:     classic "server died after committing, before answering" window.
SERVICE_SITES = ("request_parse", "enqueue", "mid_job_crash", "drain",
                 "response_write")


class InjectedFault(RuntimeError):
    """An exception raised deliberately by an active fault plan."""


class InjectedCrash(InjectedFault):
    """A ``crash`` action firing in the plan-activating process.

    Real ``os._exit`` crashes only happen in worker processes; in the
    activating process the crash is represented as this exception so the
    serial and thread backends exercise the same plan without killing the
    interpreter that is running the tests.
    """


@dataclass(frozen=True)
class FaultAction:
    """One planned fault.

    Parameters
    ----------
    kind:
        ``crash`` | ``hang`` | ``raise`` | ``corrupt``.
    series:
        Batch index selecting where the action fires: the chunk containing
        this series (sites ``chunk`` / ``manifest``) or this series' own
        encode call (site ``encode``).  Selecting by series index — not by
        chunk position or worker id — keeps plans deterministic under any
        chunk planning or pool scheduling.
    site:
        Injection site (defaults to the kind's natural site: ``manifest``
        for ``corrupt``, ``chunk`` otherwise).
    seconds:
        Sleep duration for ``hang`` actions.
    max_hits:
        How many times the action fires before becoming inert; ``None``
        means it fires on every match (a *persistent* fault, used to drive
        the degradation ladder to its end).
    """

    kind: str
    series: int
    site: str = ""
    seconds: float = 1.0
    max_hits: int | None = 1

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {', '.join(KINDS)}")
        site = self.site or ("manifest" if self.kind == "corrupt" else "chunk")
        object.__setattr__(self, "site", site)
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {', '.join(SITES)}")

    @property
    def marker(self) -> str:
        """Stable identity used for cross-process hit accounting."""
        return f"{self.kind}-{self.site}-{self.series}"


@dataclass(frozen=True)
class StorageFaultAction:
    """One planned storage fault (see :data:`STORAGE_KINDS` / ``_SITES``).

    Parameters
    ----------
    kind:
        ``crash`` | ``torn_write`` | ``bit_flip`` | ``raise``.
    site:
        Storage injection site (:data:`STORAGE_SITES`).
    target:
        Substring filter on the artifact path the site is handling; an
        empty string matches every path at the site.  Lets one plan crash
        the rename of *the manifest* while leaving segment renames alone.
    at_byte:
        ``torn_write`` truncation point.  ``None`` truncates at half the
        payload; values beyond the payload length leave it untouched
        (the torn write happened past the end — a no-op).
    bit:
        ``bit_flip`` target bit index (modulo the payload's bit length).
    skip_hits:
        Number of matching calls to let through unharmed before firing —
        the knob that turns one action into a *kill at the k-th syncpoint*
        probe.  Skip accounting is per-process (the storage harness runs
        in-process).
    max_hits:
        Firing budget once the skips are exhausted (``None`` = every
        match).
    """

    kind: str
    site: str
    target: str = ""
    at_byte: int | None = None
    bit: int = 0
    skip_hits: int = 0
    max_hits: int | None = 1

    def __post_init__(self):
        if self.kind not in STORAGE_KINDS:
            raise ValueError(f"unknown storage fault kind {self.kind!r}; "
                             f"choose from {', '.join(STORAGE_KINDS)}")
        if self.site not in STORAGE_SITES:
            raise ValueError(f"unknown storage fault site {self.site!r}; "
                             f"choose from {', '.join(STORAGE_SITES)}")

    @property
    def marker(self) -> str:
        """Stable identity used for hit accounting."""
        return (f"storage-{self.kind}-{self.site}-{self.target or '*'}"
                f"-{self.at_byte}-{self.bit}-{self.skip_hits}")


@dataclass(frozen=True)
class ServiceFaultAction:
    """One planned service-layer fault (see :data:`SERVICE_KINDS`/``_SITES``).

    Parameters
    ----------
    kind:
        ``crash`` | ``hang`` | ``raise``.
    site:
        Service injection site (:data:`SERVICE_SITES`).
    target:
        Substring filter on the ``detail`` the site reports (usually the
        endpoint path, e.g. ``"/ingest"``); empty matches every call.
    seconds:
        Sleep duration for ``hang`` actions.
    skip_hits:
        Matching calls to let through unharmed before firing (per-process
        accounting, like :class:`StorageFaultAction`).
    max_hits:
        Firing budget once the skips are exhausted (``None`` = every
        match).
    """

    kind: str
    site: str
    target: str = ""
    seconds: float = 0.2
    skip_hits: int = 0
    max_hits: int | None = 1

    def __post_init__(self):
        if self.kind not in SERVICE_KINDS:
            raise ValueError(f"unknown service fault kind {self.kind!r}; "
                             f"choose from {', '.join(SERVICE_KINDS)}")
        if self.site not in SERVICE_SITES:
            raise ValueError(f"unknown service fault site {self.site!r}; "
                             f"choose from {', '.join(SERVICE_SITES)}")

    @property
    def marker(self) -> str:
        """Stable identity used for hit accounting (filename-safe)."""
        target = "".join(ch if ch.isalnum() or ch in "-._" else "~"
                         for ch in (self.target or "*"))
        return f"service-{self.kind}-{self.site}-{target}-{self.skip_hits}"


@dataclass
class FaultPlan:
    """A set of actions plus the bookkeeping needed to apply them safely."""

    actions: list[FaultAction] = field(default_factory=list)
    #: Storage-layer actions (fired through :func:`fire_storage`).
    storage_actions: list[StorageFaultAction] = field(default_factory=list)
    #: Service-layer actions (fired through :func:`fire_service`).
    service_actions: list[ServiceFaultAction] = field(default_factory=list)
    #: Directory for hit-claim marker files (shared across processes).
    state_dir: str | None = None
    #: PID of the activating process; ``crash`` never hard-kills this one.
    pid: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "actions": [asdict(action) for action in self.actions],
            "storage_actions": [asdict(action)
                                for action in self.storage_actions],
            "service_actions": [asdict(action)
                                for action in self.service_actions],
            "state_dir": self.state_dir,
            "pid": self.pid,
        })

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        document = json.loads(payload)
        return cls(
            actions=[FaultAction(**entry) for entry in document["actions"]],
            storage_actions=[StorageFaultAction(**entry)
                             for entry in document.get("storage_actions", [])],
            service_actions=[ServiceFaultAction(**entry)
                             for entry in document.get("service_actions", [])],
            state_dir=document.get("state_dir"),
            pid=int(document.get("pid") or 0))


# --------------------------------------------------------------------- #
# plan loading and hit accounting
# --------------------------------------------------------------------- #
_plan_cache: tuple[str, FaultPlan] | None = None
#: In-process fallback hit counters (used when a plan has no state_dir).
_local_hits: dict[str, int] = {}
#: In-process skip counters for :class:`StorageFaultAction.skip_hits`.
_local_skips: dict[str, int] = {}


def load_plan() -> FaultPlan | None:
    """The active plan from the environment, or ``None``."""
    global _plan_cache
    payload = os.environ.get(ENV_PLAN)
    if not payload:
        return None
    if _plan_cache is not None and _plan_cache[0] == payload:
        return _plan_cache[1]
    plan = FaultPlan.from_json(payload)
    _plan_cache = (payload, plan)
    return plan


def _claim_hit(plan: FaultPlan, action: FaultAction) -> bool:
    """Atomically claim one firing of ``action``; False once exhausted.

    With a ``state_dir`` the claim is an ``O_CREAT | O_EXCL`` marker file, so
    it is atomic across processes and *survives the claimer crashing* — the
    whole point: a worker that claims, then ``os._exit``\\ s, leaves the claim
    behind and the retried chunk sails through.  Without a ``state_dir``
    (plans built by hand in-process) a per-process counter is used instead.
    """
    if action.max_hits is None:
        return True
    if plan.state_dir and os.path.isdir(plan.state_dir):
        for hit in range(action.max_hits):
            path = os.path.join(plan.state_dir, f"{action.marker}.{hit}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False
    taken = _local_hits.get(action.marker, 0)
    if taken >= action.max_hits:
        return False
    _local_hits[action.marker] = taken + 1
    return True


# --------------------------------------------------------------------- #
# the hook
# --------------------------------------------------------------------- #
def fire(site: str, *, indices=None, index: int | None = None,
         manifest: dict | None = None) -> None:
    """Fire every matching action of the active plan (no-op without one).

    Parameters
    ----------
    site:
        The injection site this call guards.
    indices:
        Batch indices of the chunk being processed (sites ``chunk``).
    index:
        Batch index of the series being encoded (site ``encode``).
    manifest:
        The shared-memory manifest under construction (site ``manifest``);
        ``corrupt`` actions mutate their target entry in place.
    """
    plan = load_plan()
    if plan is None:
        return
    for action in plan.actions:
        if action.site != site:
            continue
        if site == "encode":
            if index is None or action.series != index:
                continue
        elif site == "chunk":
            if indices is None or action.series not in indices:
                continue
        elif site == "manifest":
            if manifest is None or action.series not in manifest:
                continue
        if not _claim_hit(plan, action):
            continue
        _perform(plan, action, manifest)


def _perform(plan: FaultPlan, action: FaultAction, manifest: dict | None) -> None:
    if action.kind == "hang":
        time.sleep(max(float(action.seconds), 0.0))
        return
    if action.kind == "raise":
        raise InjectedFault(
            f"injected fault at site {action.site!r} (series {action.series})")
    if action.kind == "crash":
        if plan.pid and os.getpid() != plan.pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected worker crash (series {action.series}; in-process, "
            "represented as an exception)")
    if action.kind == "corrupt" and manifest is not None:
        offset, length, dtype = manifest[action.series]
        # An offset far beyond the segment makes the worker's zero-copy view
        # construction fail deterministically.
        manifest[action.series] = (offset + (1 << 40), length, dtype)


# --------------------------------------------------------------------- #
# the storage hook
# --------------------------------------------------------------------- #
def fire_storage(site: str, *, path, data: bytes | None = None) -> bytes | None:
    """Fire matching storage actions; returns ``data`` (possibly corrupted).

    The durable store calls this at every write-path syncpoint (see
    :data:`STORAGE_SITES`) with the artifact ``path`` and, at byte-carrying
    sites, the ``data`` about to be written.  Without an active plan the
    call is a no-op returning ``data`` unchanged.

    ``torn_write`` / ``bit_flip`` actions transform ``data`` — the caller
    writes the corrupted bytes, simulating corruption that made it to disk.
    ``crash`` raises :class:`InjectedCrash` (in the activating process) or
    hard-exits (in a worker); ``raise`` raises :class:`InjectedFault`.
    """
    plan = load_plan()
    if plan is None or not plan.storage_actions:
        return data
    path_text = str(path)
    for action in plan.storage_actions:
        if action.site != site:
            continue
        if action.target and action.target not in path_text:
            continue
        if action.skip_hits:
            skipped = _local_skips.get(action.marker, 0)
            if skipped < action.skip_hits:
                _local_skips[action.marker] = skipped + 1
                continue
        if not _claim_hit(plan, action):
            continue
        data = _perform_storage(plan, action, path_text, data)
    return data


def _perform_storage(plan: FaultPlan, action: StorageFaultAction,
                     path: str, data: bytes | None) -> bytes | None:
    if action.kind == "raise":
        raise InjectedFault(
            f"injected storage fault at site {action.site!r} ({path})")
    if action.kind == "crash":
        if plan.pid and os.getpid() != plan.pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected storage crash at site {action.site!r} ({path}; "
            "in-process, represented as an exception)")
    if data is None:
        return None
    if action.kind == "torn_write":
        cut = len(data) // 2 if action.at_byte is None else int(action.at_byte)
        return data[: max(cut, 0)]
    if action.kind == "bit_flip" and data:
        mutated = bytearray(data)
        bit = int(action.bit) % (len(mutated) * 8)
        mutated[bit // 8] ^= 1 << (bit % 8)
        return bytes(mutated)
    return data


# --------------------------------------------------------------------- #
# the service hook
# --------------------------------------------------------------------- #
def fire_service(site: str, *, detail: str = "") -> None:
    """Fire matching service actions at ``site`` (no-op without a plan).

    The compression service calls this at every request-lifecycle site
    (:data:`SERVICE_SITES`) with a ``detail`` string (usually the endpoint
    path) that ``target`` filters select on.  ``hang`` sleeps in place;
    ``raise`` raises :class:`InjectedFault` (the service must answer with a
    well-formed error); ``crash`` raises :class:`InjectedCrash` in the
    activating process or hard-exits in a separate service process — the
    chaos harness treats either as process death.
    """
    plan = load_plan()
    if plan is None or not plan.service_actions:
        return
    for action in plan.service_actions:
        if action.site != site:
            continue
        if action.target and action.target not in detail:
            continue
        if action.skip_hits:
            skipped = _local_skips.get(action.marker, 0)
            if skipped < action.skip_hits:
                _local_skips[action.marker] = skipped + 1
                continue
        if not _claim_hit(plan, action):
            continue
        if action.kind == "hang":
            time.sleep(max(float(action.seconds), 0.0))
            continue
        if action.kind == "raise":
            raise InjectedFault(
                f"injected service fault at site {site!r} ({detail or '*'})")
        if plan.pid and os.getpid() != plan.pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected service crash at site {site!r} ({detail or '*'}; "
            "in-process, represented as an exception)")


# --------------------------------------------------------------------- #
# at-rest corruption helpers (deterministic, for fsck/recovery tests)
# --------------------------------------------------------------------- #
def inject_torn_write(path, keep_bytes: int) -> int:
    """Truncate the file at ``path`` to its first ``keep_bytes`` bytes.

    Simulates a torn write discovered *after* publication (a non-atomic
    filesystem, or corruption below the rename boundary).  Returns the
    number of bytes removed.
    """
    data = open(path, "rb").read()
    keep = max(min(int(keep_bytes), len(data)), 0)
    with open(path, "wb") as handle:
        handle.write(data[:keep])
    return len(data) - keep


def inject_bit_flip(path, bit_index: int) -> int:
    """Flip one bit of the file at ``path`` (index modulo the bit length).

    Simulates silent media corruption of an artifact at rest.  Returns the
    absolute bit index actually flipped.
    """
    data = bytearray(open(path, "rb").read())
    if not data:
        raise ValueError(f"cannot flip a bit of empty file {path}")
    bit = int(bit_index) % (len(data) * 8)
    data[bit // 8] ^= 1 << (bit % 8)
    with open(path, "wb") as handle:
        handle.write(data)
    return bit


# --------------------------------------------------------------------- #
# activation helpers
# --------------------------------------------------------------------- #
@contextmanager
def active_plan(actions, state_dir: str | None = None):
    """Activate a fault plan for the duration of a ``with`` block.

    Sets :data:`ENV_PLAN` (so pools created inside the block inherit the
    plan), creates a temporary ``state_dir`` for cross-process hit claims
    when none is supplied, and restores the previous environment on exit.
    Yields the activated :class:`FaultPlan`.
    """
    import shutil
    import tempfile

    owned_dir = None
    if state_dir is None:
        owned_dir = state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    engine_actions = [action for action in actions
                      if isinstance(action, FaultAction)]
    storage_actions = [action for action in actions
                       if isinstance(action, StorageFaultAction)]
    service_actions = [action for action in actions
                       if isinstance(action, ServiceFaultAction)]
    plan = FaultPlan(actions=engine_actions, storage_actions=storage_actions,
                     service_actions=service_actions,
                     state_dir=str(state_dir), pid=os.getpid())
    previous = os.environ.get(ENV_PLAN)
    os.environ[ENV_PLAN] = plan.to_json()
    # Forget any counters claimed by a previous in-process plan.
    _local_hits.clear()
    _local_skips.clear()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_PLAN, None)
        else:
            os.environ[ENV_PLAN] = previous
        _local_hits.clear()
        _local_skips.clear()
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)


def random_plan(seed: int, series_count: int, *,
                max_actions: int = 2, hang_seconds: float = 0.6
                ) -> list[FaultAction]:
    """A reproducible fault plan derived from ``seed``.

    Used by the ``-m stress`` soak: every plan is a pure function of its
    seed, so a failing soak run is replayed exactly by re-running with the
    recorded seed.
    """
    rng = random.Random(int(seed))
    count = rng.randint(1, max(int(max_actions), 1))
    actions: list[FaultAction] = []
    for _ in range(count):
        kind = rng.choice(("crash", "hang", "raise", "raise", "corrupt"))
        series = rng.randrange(max(int(series_count), 1))
        site = "encode" if kind == "raise" and rng.random() < 0.5 else ""
        persistent = kind in ("raise", "corrupt") and rng.random() < 0.25
        actions.append(FaultAction(
            kind=kind, series=series, site=site,
            seconds=round(rng.uniform(0.2, hang_seconds), 3),
            max_hits=None if persistent else 1))
    return actions


def random_service_plan(seed: int, *, max_actions: int = 2,
                        max_skip: int = 4, hang_seconds: float = 0.4
                        ) -> list[ServiceFaultAction]:
    """A reproducible service fault plan derived from ``seed``.

    Drives the seeded service chaos soak (``-m stress``): every plan is a
    pure function of its seed, so a failing soak replays exactly.  Crashes
    dominate — any of them must leave the store recoverable and acked
    ingests exactly-once; hangs and raises probe the well-formed-error
    contract at every lifecycle site.
    """
    rng = random.Random(int(seed))
    count = rng.randint(1, max(int(max_actions), 1))
    actions: list[ServiceFaultAction] = []
    for _ in range(count):
        kind = rng.choice(("crash", "crash", "hang", "raise", "raise"))
        site = rng.choice(SERVICE_SITES)
        target = rng.choice(("", "", "/ingest", "/compress"))
        if site == "drain":
            target = ""
        actions.append(ServiceFaultAction(
            kind=kind, site=site, target=target,
            seconds=round(rng.uniform(0.05, hang_seconds), 3),
            skip_hits=rng.randrange(max(int(max_skip), 1)),
            max_hits=1))
    return actions


def random_storage_plan(seed: int, *, max_actions: int = 2,
                        max_skip: int = 6) -> list[StorageFaultAction]:
    """A reproducible storage fault plan derived from ``seed``.

    Drives the seeded torn-write/bit-flip storage soak (``-m stress``):
    every plan is a pure function of its seed, so a failing soak replays
    exactly.  Crashes dominate the mix — they are the cheap, always-legal
    probe (recovery must succeed after any of them); torn writes and bit
    flips exercise the checksum rejection paths.
    """
    rng = random.Random(int(seed))
    count = rng.randint(1, max(int(max_actions), 1))
    actions: list[StorageFaultAction] = []
    for _ in range(count):
        kind = rng.choice(("crash", "crash", "torn_write", "bit_flip", "raise"))
        site = rng.choice(STORAGE_SITES)
        if kind in ("torn_write", "bit_flip") and site in (
                "before_rename", "after_rename"):
            site = rng.choice(("wal_append", "segment_write",
                               "manifest_write", "wal_compact"))
        actions.append(StorageFaultAction(
            kind=kind, site=site,
            at_byte=rng.randrange(512) if kind == "torn_write" else None,
            bit=rng.randrange(1 << 14),
            skip_hits=rng.randrange(max(int(max_skip), 1)),
            max_hits=1))
    return actions
