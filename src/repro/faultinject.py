"""Deterministic fault injection for the batch engine.

The supervisor layer (:mod:`repro.engine.supervisor`) promises that a batch
*always* terminates with per-series outcomes — through worker crashes, hangs,
mid-encode exceptions, and corrupted shared-memory manifests.  Promises like
that rot unless every recovery path is exercised on every backend, so this
module provides *planned* faults instead of hope:

* a :class:`FaultPlan` is a list of :class:`FaultAction` entries, each naming
  a *kind* (``crash`` / ``hang`` / ``raise`` / ``corrupt``), an injection
  *site* (``chunk`` / ``encode`` / ``manifest``), and the batch index of the
  series that selects where it fires;
* plans travel to worker processes through the ``REPRO_FAULT_PLAN``
  environment variable (JSON), so ``fork`` and ``spawn`` children both see
  them without any pickling support from the executor;
* each action fires a bounded number of times (``max_hits``, default once).
  Hits are claimed through ``O_CREAT | O_EXCL`` marker files in the plan's
  ``state_dir``, which makes the accounting atomic *across processes*: a
  worker that crashes after claiming its hit does not crash again on retry,
  which is exactly the recover-on-retry scenario the supervisor tests need;
* ``crash`` only hard-kills (``os._exit``) when it fires in a process other
  than the one that activated the plan; in the activating process (serial
  and thread backends) it degrades to raising :class:`InjectedCrash`, so a
  hostile plan can never take down the test runner itself.

The test suite activates plans with :func:`active_plan`; the stress harness
derives reproducible plans from integer seeds with :func:`random_plan` (the
seed is recorded, so any soak failure replays deterministically).

This module is import-cheap and :func:`fire` is a no-op dictionary lookup
when no plan is active, so production code pays nothing for the hooks.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = [
    "ENV_PLAN",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "active_plan",
    "fire",
    "load_plan",
    "random_plan",
]

#: Environment variable carrying the active plan as JSON.
ENV_PLAN = "REPRO_FAULT_PLAN"

#: Exit status used by injected worker crashes (recognizable in waitpid logs).
CRASH_EXIT_CODE = 86

#: Recognised fault kinds.
KINDS = ("crash", "hang", "raise", "corrupt")

#: Recognised injection sites.
#:
#: ``chunk``
#:     Fires at the start of a chunk task, before per-series error isolation
#:     — the supervisor's retry/rebuild machinery is what must absorb it.
#: ``encode``
#:     Fires inside the per-series encode loop — per-series isolation must
#:     turn it into one error outcome while the rest of the chunk completes.
#: ``manifest``
#:     Fires in the parent while building the shared-memory manifest —
#:     corrupts one entry so the worker cannot view that chunk's input.
SITES = ("chunk", "encode", "manifest")


class InjectedFault(RuntimeError):
    """An exception raised deliberately by an active fault plan."""


class InjectedCrash(InjectedFault):
    """A ``crash`` action firing in the plan-activating process.

    Real ``os._exit`` crashes only happen in worker processes; in the
    activating process the crash is represented as this exception so the
    serial and thread backends exercise the same plan without killing the
    interpreter that is running the tests.
    """


@dataclass(frozen=True)
class FaultAction:
    """One planned fault.

    Parameters
    ----------
    kind:
        ``crash`` | ``hang`` | ``raise`` | ``corrupt``.
    series:
        Batch index selecting where the action fires: the chunk containing
        this series (sites ``chunk`` / ``manifest``) or this series' own
        encode call (site ``encode``).  Selecting by series index — not by
        chunk position or worker id — keeps plans deterministic under any
        chunk planning or pool scheduling.
    site:
        Injection site (defaults to the kind's natural site: ``manifest``
        for ``corrupt``, ``chunk`` otherwise).
    seconds:
        Sleep duration for ``hang`` actions.
    max_hits:
        How many times the action fires before becoming inert; ``None``
        means it fires on every match (a *persistent* fault, used to drive
        the degradation ladder to its end).
    """

    kind: str
    series: int
    site: str = ""
    seconds: float = 1.0
    max_hits: int | None = 1

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {', '.join(KINDS)}")
        site = self.site or ("manifest" if self.kind == "corrupt" else "chunk")
        object.__setattr__(self, "site", site)
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {', '.join(SITES)}")

    @property
    def marker(self) -> str:
        """Stable identity used for cross-process hit accounting."""
        return f"{self.kind}-{self.site}-{self.series}"


@dataclass
class FaultPlan:
    """A set of actions plus the bookkeeping needed to apply them safely."""

    actions: list[FaultAction] = field(default_factory=list)
    #: Directory for hit-claim marker files (shared across processes).
    state_dir: str | None = None
    #: PID of the activating process; ``crash`` never hard-kills this one.
    pid: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "actions": [asdict(action) for action in self.actions],
            "state_dir": self.state_dir,
            "pid": self.pid,
        })

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        document = json.loads(payload)
        return cls(
            actions=[FaultAction(**entry) for entry in document["actions"]],
            state_dir=document.get("state_dir"),
            pid=int(document.get("pid") or 0))


# --------------------------------------------------------------------- #
# plan loading and hit accounting
# --------------------------------------------------------------------- #
_plan_cache: tuple[str, FaultPlan] | None = None
#: In-process fallback hit counters (used when a plan has no state_dir).
_local_hits: dict[str, int] = {}


def load_plan() -> FaultPlan | None:
    """The active plan from the environment, or ``None``."""
    global _plan_cache
    payload = os.environ.get(ENV_PLAN)
    if not payload:
        return None
    if _plan_cache is not None and _plan_cache[0] == payload:
        return _plan_cache[1]
    plan = FaultPlan.from_json(payload)
    _plan_cache = (payload, plan)
    return plan


def _claim_hit(plan: FaultPlan, action: FaultAction) -> bool:
    """Atomically claim one firing of ``action``; False once exhausted.

    With a ``state_dir`` the claim is an ``O_CREAT | O_EXCL`` marker file, so
    it is atomic across processes and *survives the claimer crashing* — the
    whole point: a worker that claims, then ``os._exit``\\ s, leaves the claim
    behind and the retried chunk sails through.  Without a ``state_dir``
    (plans built by hand in-process) a per-process counter is used instead.
    """
    if action.max_hits is None:
        return True
    if plan.state_dir and os.path.isdir(plan.state_dir):
        for hit in range(action.max_hits):
            path = os.path.join(plan.state_dir, f"{action.marker}.{hit}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False
    taken = _local_hits.get(action.marker, 0)
    if taken >= action.max_hits:
        return False
    _local_hits[action.marker] = taken + 1
    return True


# --------------------------------------------------------------------- #
# the hook
# --------------------------------------------------------------------- #
def fire(site: str, *, indices=None, index: int | None = None,
         manifest: dict | None = None) -> None:
    """Fire every matching action of the active plan (no-op without one).

    Parameters
    ----------
    site:
        The injection site this call guards.
    indices:
        Batch indices of the chunk being processed (sites ``chunk``).
    index:
        Batch index of the series being encoded (site ``encode``).
    manifest:
        The shared-memory manifest under construction (site ``manifest``);
        ``corrupt`` actions mutate their target entry in place.
    """
    plan = load_plan()
    if plan is None:
        return
    for action in plan.actions:
        if action.site != site:
            continue
        if site == "encode":
            if index is None or action.series != index:
                continue
        elif site == "chunk":
            if indices is None or action.series not in indices:
                continue
        elif site == "manifest":
            if manifest is None or action.series not in manifest:
                continue
        if not _claim_hit(plan, action):
            continue
        _perform(plan, action, manifest)


def _perform(plan: FaultPlan, action: FaultAction, manifest: dict | None) -> None:
    if action.kind == "hang":
        time.sleep(max(float(action.seconds), 0.0))
        return
    if action.kind == "raise":
        raise InjectedFault(
            f"injected fault at site {action.site!r} (series {action.series})")
    if action.kind == "crash":
        if plan.pid and os.getpid() != plan.pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected worker crash (series {action.series}; in-process, "
            "represented as an exception)")
    if action.kind == "corrupt" and manifest is not None:
        offset, length, dtype = manifest[action.series]
        # An offset far beyond the segment makes the worker's zero-copy view
        # construction fail deterministically.
        manifest[action.series] = (offset + (1 << 40), length, dtype)


# --------------------------------------------------------------------- #
# activation helpers
# --------------------------------------------------------------------- #
@contextmanager
def active_plan(actions, state_dir: str | None = None):
    """Activate a fault plan for the duration of a ``with`` block.

    Sets :data:`ENV_PLAN` (so pools created inside the block inherit the
    plan), creates a temporary ``state_dir`` for cross-process hit claims
    when none is supplied, and restores the previous environment on exit.
    Yields the activated :class:`FaultPlan`.
    """
    import shutil
    import tempfile

    owned_dir = None
    if state_dir is None:
        owned_dir = state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    plan = FaultPlan(actions=list(actions), state_dir=str(state_dir),
                     pid=os.getpid())
    previous = os.environ.get(ENV_PLAN)
    os.environ[ENV_PLAN] = plan.to_json()
    # Forget any counters claimed by a previous in-process plan.
    _local_hits.clear()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_PLAN, None)
        else:
            os.environ[ENV_PLAN] = previous
        _local_hits.clear()
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)


def random_plan(seed: int, series_count: int, *,
                max_actions: int = 2, hang_seconds: float = 0.6
                ) -> list[FaultAction]:
    """A reproducible fault plan derived from ``seed``.

    Used by the ``-m stress`` soak: every plan is a pure function of its
    seed, so a failing soak run is replayed exactly by re-running with the
    recorded seed.
    """
    rng = random.Random(int(seed))
    count = rng.randint(1, max(int(max_actions), 1))
    actions: list[FaultAction] = []
    for _ in range(count):
        kind = rng.choice(("crash", "hang", "raise", "raise", "corrupt"))
        series = rng.randrange(max(int(series_count), 1))
        site = "encode" if kind == "raise" and rng.random() < 0.5 else ""
        persistent = kind in ("raise", "corrupt") and rng.random() < 0.25
        actions.append(FaultAction(
            kind=kind, series=series, site=site,
            seconds=round(rng.uniform(0.2, hang_seconds), 3),
            max_hits=None if persistent else 1))
    return actions
