"""The built-in fidelity metrics.

Six metrics cover the three things the paper's evaluation cares about:

* **statistical structure** — :func:`acf_distance` / :func:`pacf_distance`
  (L2 over lag-wise deltas of the statistic CAMEO actually bounds; the exact
  metric shape of generative-model ACF evaluators) and
  :func:`spectral_distance` (normalized-periodogram L2, the frequency-domain
  view of the same promise);
* **pointwise guarantees** — :func:`max_error` (L-infinity) and
  :func:`nrmse` (range-normalized RMSE, Section 2.3);
* **downstream impact** — :func:`forecast_delta`, which measures how much a
  seasonal-naive forecast degrades when trained on the reconstruction
  instead of the original.

All metrics return ``0.0`` for an identical reconstruction and are NaN-free
on degenerate (constant / near-constant) input; see each docstring for the
sentinel conventions.  Statistical metrics honour ``context.agg_window`` so
group-2 style "ACF on aggregates" configurations score what they bound.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import InvalidSeriesError
from ..forecasting import SeasonalNaive
from ..forecasting.naive import NaiveForecaster
from ..metrics import pointwise
from ..stats import acf as _acf
from ..stats import pacf_from_acf, tumbling_window_aggregate
from .base import FidelityContext

__all__ = [
    "acf_distance",
    "pacf_distance",
    "spectral_distance",
    "max_error",
    "nrmse",
    "forecast_delta",
    "normalized_periodogram",
]


def _pair(original, reconstruction) -> tuple[np.ndarray, np.ndarray]:
    x = as_float_array(original, name="original")
    y = as_float_array(reconstruction, name="reconstruction")
    if x.shape != y.shape:
        raise InvalidSeriesError(
            f"original and reconstruction must have the same shape, "
            f"got {x.shape} and {y.shape}")
    return x, y


def _tracked(values: np.ndarray, context: FidelityContext) -> np.ndarray:
    """The series the statistic is computed on (aggregated when configured)."""
    if context.agg_window > 1 and values.size >= context.agg_window:
        return tumbling_window_aggregate(values, context.agg_window)
    return values


def _statistic_lag(tracked: np.ndarray, context: FidelityContext) -> int:
    return max(1, min(int(context.max_lag), tracked.size - 2))


def acf_distance(original, reconstruction, context: FidelityContext) -> float:
    """L2 norm of the lag-wise ACF deltas over lags ``1..max_lag``.

    ``|| ACF(X) - ACF(X') ||_2`` with the lagged-Pearson estimator CAMEO
    bounds (Equation 2).  This is the canonical statistical-fidelity score:
    zero iff the reconstruction's autocorrelation structure is exactly
    preserved at every compared lag.  Both series are aggregated first when
    ``context.agg_window > 1``.  Series too short to compare even one lag
    score ``0.0`` when identical, else the pointwise NRMSE sentinel path is
    irrelevant — the ACF of both degenerates to the same empty vector and
    the distance is ``0.0``.
    """
    x, y = _pair(original, reconstruction)
    tx, ty = _tracked(x, context), _tracked(y, context)
    if tx.size < 3:
        return 0.0 if np.array_equal(tx, ty) else float("inf")
    lag = _statistic_lag(tx, context)
    delta = _acf(tx, lag) - _acf(ty, lag)
    return float(np.sqrt(np.dot(delta, delta)))


def pacf_distance(original, reconstruction, context: FidelityContext) -> float:
    """L2 norm of the lag-wise PACF deltas over lags ``1..max_lag``.

    Same shape as :func:`acf_distance` but over the partial autocorrelation
    (Durbin-Levinson on the lagged-Pearson ACF) — the statistic CAMEO's
    ``statistic="pacf"`` mode bounds.
    """
    x, y = _pair(original, reconstruction)
    tx, ty = _tracked(x, context), _tracked(y, context)
    if tx.size < 3:
        return 0.0 if np.array_equal(tx, ty) else float("inf")
    lag = _statistic_lag(tx, context)
    delta = pacf_from_acf(_acf(tx, lag)) - pacf_from_acf(_acf(ty, lag))
    return float(np.sqrt(np.dot(delta, delta)))


def normalized_periodogram(values: np.ndarray) -> np.ndarray:
    """Power spectrum of the centred series, normalized to unit total power.

    The DC bin is dropped (centring zeroes it up to rounding) and the
    remaining ``floor(n/2)`` bins are divided by their sum, making the
    spectrum shape-only: invariant under affine rescaling of the series.  A
    constant series has no power anywhere; its spectrum is all zeros by
    convention (not NaN).
    """
    x = np.asarray(values, dtype=np.float64)
    centred = x - x.mean()
    power = np.abs(np.fft.rfft(centred)[1:]) ** 2
    total = float(power.sum())
    if total <= 0.0:
        return np.zeros_like(power)
    return power / total


def spectral_distance(original, reconstruction, context: FidelityContext) -> float:
    """L2 distance between normalized periodograms.

    Scores how well the reconstruction keeps the *distribution of power
    over frequencies* — the spectral mirror of the ACF promise
    (Wiener-Khinchin).  Both spectra are normalized to unit total power, so
    the score is scale-free; identical series score exactly ``0.0`` and
    constant series (zero spectra) score ``0.0`` against each other.
    """
    x, y = _pair(original, reconstruction)
    delta = normalized_periodogram(x) - normalized_periodogram(y)
    return float(np.sqrt(np.dot(delta, delta)))


def max_error(original, reconstruction, context: FidelityContext) -> float:
    """Maximum absolute pointwise deviation (L-infinity norm).

    The per-point guarantee most compression papers report; delegates to
    :func:`repro.metrics.pointwise.chebyshev`.
    """
    return pointwise.chebyshev(original, reconstruction)


def nrmse(original, reconstruction, context: FidelityContext) -> float:
    """Range-normalized RMSE (paper Section 2.3).

    Delegates to :func:`repro.metrics.pointwise.nrmse`, including its
    degenerate-input sentinel: a constant original scores ``0.0`` when the
    reconstruction is exact and ``inf`` otherwise.
    """
    return pointwise.nrmse(original, reconstruction)


def _probe_forecaster(train_size: int, context: FidelityContext):
    """A fresh deterministic forecaster appropriate for the context."""
    period = int(context.period)
    if period >= 2 and train_size >= 2 * period:
        return SeasonalNaive(period)
    return NaiveForecaster()


def forecast_delta(original, reconstruction, context: FidelityContext) -> float:
    """Downstream-task probe: forecast-accuracy loss caused by compression.

    Train the same forecaster twice — once on the original's first
    ``n - horizon`` points, once on the reconstruction's — forecast
    ``horizon`` steps, and score both against the *original's* held-out
    tail.  The metric is ``mae(recon forecast) - mae(original forecast)``:
    exactly ``0.0`` for an identical reconstruction, positive when the
    compression damaged forecastability, and (rarely) negative when the
    smoothing helped.  A seasonal-naive forecaster is used when the context
    has a period and enough history; the last-value naive otherwise — both
    deterministic, so the probe is reproducible bit for bit.
    """
    x, y = _pair(original, reconstruction)
    horizon = max(1, min(int(context.horizon), x.size // 4))
    train = x.size - horizon
    if train < 2:
        return 0.0
    actual = x[train:]
    forecast_x = _probe_forecaster(train, context).fit(x[:train]).forecast(horizon)
    forecast_y = _probe_forecaster(train, context).fit(y[:train]).forecast(horizon)
    return float(pointwise.mae(forecast_y, actual) - pointwise.mae(forecast_x, actual))
