"""Brute-force reference implementations of the fidelity metrics.

Kept in the style of :mod:`repro._kernels.reference`: straightforward
scalar loops with no vectorization tricks, serving as the oracle the
hypothesis property suite checks the production metrics against.  Slow by
design — never import these from a hot path.
"""

from __future__ import annotations

import math

import numpy as np

from .base import FidelityContext

__all__ = [
    "reference_acf",
    "reference_pacf",
    "reference_periodogram",
    "reference_acf_distance",
    "reference_pacf_distance",
    "reference_spectral_distance",
    "reference_max_error",
    "reference_nrmse",
]


def reference_acf(values, max_lag: int) -> np.ndarray:
    """Lagged-Pearson ACF (Equation 2) as an explicit per-lag scalar loop."""
    x = [float(v) for v in np.asarray(values, dtype=np.float64)]
    n = len(x)
    out = np.zeros(max_lag, dtype=np.float64)
    for lag in range(1, max_lag + 1):
        count = n - lag
        sx = sxl = sx2 = sx2l = sxxl = 0.0
        for i in range(count):
            head = x[i]
            tail = x[i + lag]
            sx += head
            sxl += tail
            sx2 += head * head
            sx2l += tail * tail
            sxxl += head * tail
        numerator = count * sxxl - sx * sxl
        var_head = count * sx2 - sx * sx
        var_tail = count * sx2l - sxl * sxl
        if var_head <= 0.0 or var_tail <= 0.0:
            out[lag - 1] = 0.0
        else:
            denominator = math.sqrt(var_head * var_tail)
            out[lag - 1] = numerator / denominator if denominator else 0.0
    return out


def reference_pacf(values, max_lag: int) -> np.ndarray:
    """PACF via the scalar Durbin-Levinson recursion on :func:`reference_acf`."""
    rho = reference_acf(values, max_lag)
    size = rho.size
    pacf = np.zeros(size, dtype=np.float64)
    previous = [0.0] * size
    current = [0.0] * size
    pacf[0] = rho[0]
    previous[0] = rho[0]
    for order in range(2, size + 1):
        numerator = rho[order - 1]
        denominator = 1.0
        for k in range(1, order):
            numerator -= previous[k - 1] * rho[order - k - 1]
            denominator -= previous[k - 1] * rho[k - 1]
        phi = 0.0 if abs(denominator) < 1e-12 else numerator / denominator
        pacf[order - 1] = phi
        for k in range(1, order):
            current[k - 1] = previous[k - 1] - phi * previous[order - k - 1]
        current[order - 1] = phi
        previous, current = current, previous
    return pacf


def reference_periodogram(values) -> np.ndarray:
    """Normalized power spectrum via an O(n^2) direct DFT loop (no FFT)."""
    x = [float(v) for v in np.asarray(values, dtype=np.float64)]
    n = len(x)
    mean = sum(x) / n
    centred = [v - mean for v in x]
    bins = n // 2
    power = np.zeros(bins, dtype=np.float64)
    for k in range(1, bins + 1):
        real = imag = 0.0
        for t in range(n):
            angle = -2.0 * math.pi * k * t / n
            real += centred[t] * math.cos(angle)
            imag += centred[t] * math.sin(angle)
        power[k - 1] = real * real + imag * imag
    total = float(power.sum())
    if total <= 0.0:
        return np.zeros(bins, dtype=np.float64)
    return power / total


def _l2(delta: np.ndarray) -> float:
    total = 0.0
    for value in delta:
        total += float(value) * float(value)
    return math.sqrt(total)


def _lag_for(x: np.ndarray, context: FidelityContext) -> int:
    return max(1, min(int(context.max_lag), x.size - 2))


def reference_acf_distance(original, reconstruction,
                           context: FidelityContext) -> float:
    """Loop-reference twin of :func:`repro.fidelity.metrics.acf_distance`."""
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstruction, dtype=np.float64)
    if x.size < 3:
        return 0.0 if np.array_equal(x, y) else float("inf")
    lag = _lag_for(x, context)
    return _l2(reference_acf(x, lag) - reference_acf(y, lag))


def reference_pacf_distance(original, reconstruction,
                            context: FidelityContext) -> float:
    """Loop-reference twin of :func:`repro.fidelity.metrics.pacf_distance`."""
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstruction, dtype=np.float64)
    if x.size < 3:
        return 0.0 if np.array_equal(x, y) else float("inf")
    lag = _lag_for(x, context)
    return _l2(reference_pacf(x, lag) - reference_pacf(y, lag))


def reference_spectral_distance(original, reconstruction,
                                context: FidelityContext) -> float:
    """Loop-reference twin of :func:`repro.fidelity.metrics.spectral_distance`."""
    return _l2(reference_periodogram(original) - reference_periodogram(reconstruction))


def reference_max_error(original, reconstruction,
                        context: FidelityContext) -> float:
    """Loop-reference twin of :func:`repro.fidelity.metrics.max_error`."""
    worst = 0.0
    for a, b in zip(np.asarray(original, dtype=np.float64),
                    np.asarray(reconstruction, dtype=np.float64)):
        worst = max(worst, abs(float(a) - float(b)))
    return worst


def reference_nrmse(original, reconstruction,
                    context: FidelityContext) -> float:
    """Loop-reference twin of :func:`repro.fidelity.metrics.nrmse`."""
    x = [float(v) for v in np.asarray(original, dtype=np.float64)]
    y = [float(v) for v in np.asarray(reconstruction, dtype=np.float64)]
    total = 0.0
    for a, b in zip(x, y):
        total += (a - b) * (a - b)
    rmse = math.sqrt(total / len(x))
    value_range = max(x) - min(x)
    if value_range == 0.0:
        return 0.0 if rmse == 0.0 else float("inf")
    return rmse / value_range
