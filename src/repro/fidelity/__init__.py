"""Statistical-fidelity metrics: scoring codecs on what the paper promises."""

from .base import (
    DEFAULT_HORIZON,
    DEFAULT_MAX_LAG,
    FidelityContext,
    FidelityMetric,
    context_for_series,
)
from .metrics import (
    acf_distance,
    forecast_delta,
    max_error,
    normalized_periodogram,
    nrmse,
    pacf_distance,
    spectral_distance,
)
from .registry import (
    FidelitySpec,
    available_fidelity_metrics,
    fidelity_spec,
    fidelity_specs,
    get_fidelity_metric,
    register_fidelity_metric,
)

__all__ = [
    "DEFAULT_HORIZON",
    "DEFAULT_MAX_LAG",
    "FidelityContext",
    "FidelityMetric",
    "context_for_series",
    "acf_distance",
    "pacf_distance",
    "spectral_distance",
    "max_error",
    "nrmse",
    "forecast_delta",
    "normalized_periodogram",
    "FidelitySpec",
    "register_fidelity_metric",
    "get_fidelity_metric",
    "fidelity_spec",
    "fidelity_specs",
    "available_fidelity_metrics",
]
