"""The fidelity-metric protocol: what "a good reconstruction" means here.

The paper's core promise is *statistical* fidelity — a reconstruction that
keeps the ACF/PACF structure of the original — not merely small pointwise
error.  A :class:`FidelityMetric` scores an ``(original, reconstruction)``
pair under a :class:`FidelityContext` that carries the per-series evaluation
configuration (how many lags to compare, the aggregation window, the
seasonal period for the downstream forecast probe).

Conventions every metric follows:

* the score is a single ``float`` where **0 means perfect fidelity** and
  larger means worse (distances, not rewards);
* an identical reconstruction scores exactly ``0.0``;
* outputs are never NaN — degenerate inputs map to a documented sentinel
  (``0.0`` or ``inf``), mirroring :func:`repro.metrics.pointwise.nrmse`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Protocol

import numpy as np

__all__ = ["FidelityContext", "FidelityMetric", "context_for_series",
           "DEFAULT_MAX_LAG", "DEFAULT_HORIZON"]

#: Lags compared by the statistical metrics when a series specifies none.
DEFAULT_MAX_LAG = 24

#: Fallback forecast horizon for the downstream probe.
DEFAULT_HORIZON = 12


@dataclass(frozen=True)
class FidelityContext:
    """Per-series evaluation configuration shared by every fidelity metric.

    Attributes
    ----------
    max_lag:
        Number of lags the ACF/PACF distances compare (clamped to the
        series length by :func:`context_for_series`).
    agg_window:
        Tumbling-window size for the on-aggregates statistic variant
        (1 = score the raw series).
    period:
        Dominant seasonal period (0 = none); selects the forecaster of the
        downstream probe.
    horizon:
        Forecast horizon of the downstream probe.
    """

    max_lag: int = DEFAULT_MAX_LAG
    agg_window: int = 1
    period: int = 0
    horizon: int = DEFAULT_HORIZON

    def clamped(self, n: int) -> "FidelityContext":
        """A copy whose lag/horizon fit a series of ``n`` points."""
        tracked = n // max(self.agg_window, 1)
        max_lag = max(1, min(self.max_lag, tracked - 2))
        horizon = max(1, min(self.horizon, n // 4))
        return replace(self, max_lag=max_lag, horizon=horizon)


class FidelityMetric(Protocol):
    """Callable scoring a reconstruction against its original."""

    def __call__(self, original: np.ndarray, reconstruction: np.ndarray,
                 context: FidelityContext) -> float:  # pragma: no cover
        ...


#: Concrete type used by the registry.
MetricFn = Callable[[np.ndarray, np.ndarray, FidelityContext], float]


def context_for_series(series) -> FidelityContext:
    """Derive the evaluation context from a series' own metadata.

    Works with :class:`~repro.data.timeseries.TimeSeries` (uses
    ``metadata["acf_lags"]`` / ``metadata["agg_window"]`` / ``period``) and
    plain arrays (falls back to the defaults), always clamping to the
    series length.
    """
    metadata = getattr(series, "metadata", None) or {}
    values = getattr(series, "values", series)
    n = int(np.asarray(values).size)
    period = int(getattr(series, "period", 0) or 0)
    context = FidelityContext(
        max_lag=int(metadata.get("acf_lags", DEFAULT_MAX_LAG)),
        agg_window=int(metadata.get("agg_window", 1)),
        period=period,
        horizon=max(period, DEFAULT_HORIZON) if period else DEFAULT_HORIZON)
    return context.clamped(n)
