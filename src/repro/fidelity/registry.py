"""Name-based fidelity-metric registry (modeled on :mod:`repro.codecs.registry`).

The scorecard driver, the CLI, and downstream codec-selection logic iterate
fidelity metrics generically; this registry is their single source of truth.
Registration order is preserved so scorecard columns are stable.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from .base import MetricFn
from . import metrics as _metrics

__all__ = [
    "FidelitySpec",
    "register_fidelity_metric",
    "get_fidelity_metric",
    "fidelity_spec",
    "fidelity_specs",
    "available_fidelity_metrics",
]


@dataclass(frozen=True)
class FidelitySpec:
    """Registry entry for one fidelity metric.

    Attributes
    ----------
    name:
        Canonical (lowercase) lookup key.
    fn:
        Callable ``(original, reconstruction, context) -> float``.
    label:
        Display name used in scorecard tables.
    description:
        One-line summary (shown by ``repro scorecard --list``).
    symmetric:
        Whether swapping original and reconstruction provably yields the
        same score (asserted by the property suite).
    kind:
        ``"statistical"``, ``"pointwise"``, or ``"downstream"`` — what the
        metric measures; lets consumers weight families differently.
    """

    name: str
    fn: MetricFn
    label: str = ""
    description: str = ""
    symmetric: bool = False
    kind: str = "statistical"


_REGISTRY: dict[str, FidelitySpec] = {}


def register_fidelity_metric(name: str, fn: MetricFn, *, label: str | None = None,
                             description: str = "", symmetric: bool = False,
                             kind: str = "statistical",
                             overwrite: bool = False) -> None:
    """Register a fidelity metric under ``name`` (case-insensitive)."""
    key = str(name).strip().lower()
    if not key:
        raise InvalidParameterError("fidelity metric name must be a non-empty string")
    if not callable(fn):
        raise InvalidParameterError(f"fidelity metric {name!r} must be callable")
    if key in _REGISTRY and not overwrite:
        raise InvalidParameterError(f"fidelity metric {name!r} is already registered")
    _REGISTRY[key] = FidelitySpec(
        name=key, fn=fn, label=str(label) if label is not None else str(name),
        description=description, symmetric=bool(symmetric), kind=str(kind))


def fidelity_spec(name: str) -> FidelitySpec:
    """Look up the registry entry for one fidelity metric."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError as exc:
        message = (f"unknown fidelity metric {name!r}; available: "
                   f"{', '.join(available_fidelity_metrics())}")
        close = difflib.get_close_matches(key, list(_REGISTRY), n=3)
        if close:
            message += f" (did you mean: {', '.join(close)}?)"
        raise InvalidParameterError(message) from exc


def fidelity_specs(kind: str | None = None) -> list[FidelitySpec]:
    """All registered specs in registration order, optionally one ``kind``."""
    specs = list(_REGISTRY.values())
    if kind is None:
        return specs
    return [spec for spec in specs if spec.kind == kind]


def available_fidelity_metrics() -> list[str]:
    """Registered fidelity metric names, in registration order."""
    return list(_REGISTRY)


def get_fidelity_metric(name: str) -> MetricFn:
    """Resolve a fidelity metric by name (callables pass through)."""
    if callable(name):
        return name
    return fidelity_spec(name).fn


def _register_builtins() -> None:
    register_fidelity_metric(
        "acf_dist", _metrics.acf_distance, label="ACF-L2",
        description="L2 over lag-wise ACF deltas (the statistic CAMEO bounds)",
        symmetric=True, kind="statistical", overwrite=True)
    register_fidelity_metric(
        "pacf_dist", _metrics.pacf_distance, label="PACF-L2",
        description="L2 over lag-wise PACF deltas (Durbin-Levinson)",
        symmetric=True, kind="statistical", overwrite=True)
    register_fidelity_metric(
        "spectral_dist", _metrics.spectral_distance, label="Spec-L2",
        description="L2 between unit-power normalized periodograms",
        symmetric=True, kind="statistical", overwrite=True)
    register_fidelity_metric(
        "max_error", _metrics.max_error, label="MaxErr",
        description="maximum absolute pointwise deviation (L-infinity)",
        symmetric=True, kind="pointwise", overwrite=True)
    register_fidelity_metric(
        "nrmse", _metrics.nrmse, label="NRMSE",
        description="RMSE normalized by the original's value range",
        symmetric=False, kind="pointwise", overwrite=True)
    register_fidelity_metric(
        "forecast_delta", _metrics.forecast_delta, label="FcastDelta",
        description="forecast-MAE degradation when training on the reconstruction",
        symmetric=False, kind="downstream", overwrite=True)


_register_builtins()
