"""Swing Filter — online piece-wise linear approximation with an L-infinity bound.

The Swing filter (Elmeleegy et al., PVLDB 2009) maintains, for the current
segment, the cone of admissible line slopes (the "swing door"): every new
point narrows the upper and lower slope bounds; when the cone collapses the
segment is closed and a new one starts.  Each segment stores two scalars
(end index and end value — the start is the previous segment's end), so the
stored-value count is ``2 * segments + 2``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float
from .base import CompressedModel, LossyCompressor

__all__ = ["SwingFilter", "swing_segments"]


def swing_segments(values: np.ndarray, error_bound: float) -> list[tuple[int, float, int, float]]:
    """Greedy swing-door segmentation.

    Returns ``(start_index, start_value, end_index, end_value)`` tuples; the
    reconstruction linearly interpolates between the two anchor points of
    each segment and is guaranteed to stay within ``error_bound`` of every
    original value of that segment.
    """
    n = values.size
    segments: list[tuple[int, float, int, float]] = []
    start = 0
    anchor_value = float(values[0])
    if n == 1:
        return [(0, anchor_value, 0, anchor_value)]

    upper_slope = np.inf
    lower_slope = -np.inf
    last_admissible = start

    index = 1
    while index < n:
        dx = index - start
        value = float(values[index])
        upper_candidate = (value + error_bound - anchor_value) / dx
        lower_candidate = (value - error_bound - anchor_value) / dx
        new_upper = min(upper_slope, upper_candidate)
        new_lower = max(lower_slope, lower_candidate)
        if new_lower <= new_upper:
            upper_slope, lower_slope = new_upper, new_lower
            last_admissible = index
            index += 1
            continue
        # The cone collapsed: close the segment at the last admissible point.
        slope = 0.5 * (upper_slope + lower_slope) if np.isfinite(upper_slope) else 0.0
        end = last_admissible
        end_value = anchor_value + slope * (end - start)
        segments.append((start, anchor_value, end, end_value))
        start = end
        anchor_value = end_value
        upper_slope, lower_slope = np.inf, -np.inf
        last_admissible = start
        # Do not advance ``index``: the violating point starts the next cone.
        if end == index:
            index += 1
    slope = 0.5 * (upper_slope + lower_slope) if np.isfinite(upper_slope) else 0.0
    end = n - 1
    end_value = anchor_value + slope * (end - start)
    segments.append((start, anchor_value, end, end_value))
    return segments


class SwingFilter(LossyCompressor):
    """Connected piece-wise linear compressor with per-value error bound."""

    name = "SWING"

    def __init__(self, error_bound: float):
        self.error_bound = check_positive_float(error_bound, "error_bound")

    def compress(self, series) -> CompressedModel:
        values, name = self._values_of(series)
        segments = swing_segments(values, self.error_bound)
        n = values.size

        starts = np.asarray([s for s, _sv, _e, _ev in segments], dtype=np.int64)
        start_values = np.asarray([sv for _s, sv, _e, _ev in segments], dtype=np.float64)
        ends = np.asarray([e for _s, _sv, e, _ev in segments], dtype=np.int64)
        end_values = np.asarray([ev for _s, _sv, _e, ev in segments], dtype=np.float64)

        def reconstruct() -> np.ndarray:
            out = np.empty(n, dtype=np.float64)
            for start, start_value, end, end_value in zip(starts, start_values,
                                                          ends, end_values):
                if end == start:
                    out[start] = start_value
                    continue
                t = np.arange(start, end + 1, dtype=np.float64)
                out[start:end + 1] = start_value + (end_value - start_value) * (
                    (t - start) / (end - start))
            out[-1] = end_values[-1] if ends[-1] == n - 1 else out[-1]
            return out

        # Connected segments share anchors: store one (index, value) pair per
        # segment boundary.
        stored = 2 * (len(segments) + 1)
        return CompressedModel(
            reconstruct=reconstruct,
            stored_values=stored,
            original_length=n,
            name=f"SWING({name})",
            metadata={
                "compressor": self.name,
                "error_bound": self.error_bound,
                "segments": len(segments),
            },
        )
