"""Common interface for the functional-approximation / transform baselines.

Unlike the line-simplification family, these compressors do not retain a
subset of original points: PMC and SWING/Sim-Piece store per-segment model
parameters, FFT stores frequency coefficients.  They expose:

* :meth:`LossyCompressor.compress` — produce a :class:`CompressedModel`,
* :meth:`CompressedModel.decompress` — reconstruct the regular series,
* :meth:`CompressedModel.bits` / ``compression_ratio`` — size accounting,

plus a shared trial-and-error search (:func:`search_parameter_for_acf`) that
mirrors how the paper tunes each baseline's own error knob until a desired
ACF deviation is met, since none of them can bound the ACF directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._validation import as_float_array
from ..data.timeseries import BITS_PER_VALUE_RAW, TimeSeries
from ..exceptions import InvalidParameterError
from ..metrics import get_metric
from ..stats.acf import acf
from ..stats.windowed import tumbling_window_aggregate

__all__ = ["CompressedModel", "LossyCompressor", "acf_deviation_of", "search_parameter_for_acf"]


@dataclass
class CompressedModel:
    """Generic compressed representation with reconstruction attached.

    Attributes
    ----------
    reconstruct:
        Zero-argument callable returning the reconstructed series.
    stored_values:
        Number of scalar values the representation stores (each charged 64
        bits, matching the paper's accounting).
    original_length:
        Length of the original series.
    name / metadata:
        Book-keeping for benchmark tables.
    """

    reconstruct: Callable[[], np.ndarray]
    stored_values: int
    original_length: int
    name: str = "model"
    metadata: dict = field(default_factory=dict)

    def decompress(self) -> np.ndarray:
        """Reconstruct the regular series."""
        return self.reconstruct()

    def compression_ratio(self) -> float:
        """Original values over stored values."""
        return float(self.original_length) / max(float(self.stored_values), 1.0)

    def bits(self) -> int:
        """Compressed size in bits (64 bits per stored scalar)."""
        return int(self.stored_values) * BITS_PER_VALUE_RAW

    def bits_per_value(self) -> float:
        """Bits of compressed storage per original value."""
        return self.bits() / float(self.original_length)


class LossyCompressor(ABC):
    """Base class for the PMC / SWING / Sim-Piece / FFT baselines."""

    #: Short name used in benchmark tables.
    name: str = "lossy"

    @abstractmethod
    def compress(self, series) -> CompressedModel:
        """Compress an array-like or :class:`TimeSeries`."""

    @staticmethod
    def _values_of(series) -> tuple[np.ndarray, str]:
        if isinstance(series, TimeSeries):
            return series.values, series.name
        return as_float_array(series), "series"


def acf_deviation_of(original: np.ndarray, reconstruction: np.ndarray, max_lag: int, *,
                     metric="mae", agg_window: int = 1, agg: str = "mean") -> float:
    """ACF deviation between a series and its reconstruction.

    Used by every baseline (and the benchmarks) to measure how much a given
    parameter setting disturbed the autocorrelation structure.
    """
    original = as_float_array(original)
    reconstruction = as_float_array(reconstruction)
    if agg_window > 1:
        original = tumbling_window_aggregate(original, agg_window, agg)
        reconstruction = tumbling_window_aggregate(reconstruction, agg_window, agg)
    lag = min(max_lag, original.size - 1)
    metric_fn = get_metric(metric)
    return float(metric_fn(acf(original, lag), acf(reconstruction, lag)))


def search_parameter_for_acf(compress_fn: Callable[[float], CompressedModel],
                             original: np.ndarray, max_lag: int, epsilon: float, *,
                             metric="mae", agg_window: int = 1, agg: str = "mean",
                             low: float = 1e-6, high: float = 1.0,
                             iterations: int = 12) -> tuple[CompressedModel, float, float]:
    """Trial-and-error search of a baseline's error knob for a target ACF bound.

    The paper cannot enforce the ACF constraint inside PMC/SWING/SP/FFT, so
    it explores each method's own parameter until the measured ACF deviation
    is as close to (but not above) ``epsilon`` as possible.  This helper
    performs a monotone bisection on the parameter in ``[low, high]``:
    larger parameters are assumed to compress more and deviate more.

    Returns ``(best_model, best_parameter, achieved_deviation)``; when even
    the smallest parameter violates the bound, that smallest-parameter model
    is returned with its deviation so callers can decide what to do.
    """
    if epsilon <= 0:
        raise InvalidParameterError("epsilon must be positive")
    original = as_float_array(original)

    def deviation_of(model: CompressedModel) -> float:
        return acf_deviation_of(original, model.decompress(), max_lag,
                                metric=metric, agg_window=agg_window, agg=agg)

    best_model = compress_fn(low)
    best_parameter = low
    best_deviation = deviation_of(best_model)
    if best_deviation >= epsilon:
        return best_model, best_parameter, best_deviation

    low_bound, high_bound = low, high
    for _iteration in range(iterations):
        middle = np.sqrt(low_bound * high_bound) if low_bound > 0 else (
            (low_bound + high_bound) / 2.0)
        model = compress_fn(float(middle))
        deviation = deviation_of(model)
        if deviation < epsilon:
            if model.compression_ratio() >= best_model.compression_ratio():
                best_model, best_parameter, best_deviation = model, float(middle), deviation
            low_bound = float(middle)
        else:
            high_bound = float(middle)
        if high_bound / max(low_bound, 1e-12) < 1.05:
            break
    return best_model, best_parameter, best_deviation
