"""Lossy compression baselines: PMC, SWING, Sim-Piece, FFT."""

from .base import (
    CompressedModel,
    LossyCompressor,
    acf_deviation_of,
    search_parameter_for_acf,
)
from .fft import FFTCompressor
from .pmc import PoorMansCompressionMean, pmc_segments
from .simpiece import SimPiece, simpiece_segments
from .swing import SwingFilter, swing_segments

__all__ = [
    "CompressedModel",
    "LossyCompressor",
    "acf_deviation_of",
    "search_parameter_for_acf",
    "PoorMansCompressionMean",
    "pmc_segments",
    "SwingFilter",
    "swing_segments",
    "SimPiece",
    "simpiece_segments",
    "FFTCompressor",
]
