"""Poor Man's Compression — Mean (PMC-Mean).

PMC approximates the series with constant segments: a segment grows while all
of its values stay within ``error_bound`` of the running mean (the
"mean" variant; the "midrange" variant uses the mid-point of min/max).  Each
segment stores two scalars — the constant value and the segment end — so the
stored-value count is ``2 * number_of_segments``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float
from .base import CompressedModel, LossyCompressor

__all__ = ["PoorMansCompressionMean", "pmc_segments"]


def pmc_segments(values: np.ndarray, error_bound: float, *, variant: str = "midrange"
                 ) -> list[tuple[int, int, float]]:
    """Greedy constant-segment cover of ``values``.

    Returns a list of ``(start, end_exclusive, constant)`` triples whose
    union covers the series.  Every value differs from its segment constant
    by at most ``error_bound`` (the classical L-infinity guarantee of PMC).
    """
    segments: list[tuple[int, int, float]] = []
    n = values.size
    start = 0
    running_min = values[0]
    running_max = values[0]
    running_sum = values[0]
    for index in range(1, n + 1):
        if index < n:
            candidate_min = min(running_min, values[index])
            candidate_max = max(running_max, values[index])
            if candidate_max - candidate_min <= 2.0 * error_bound:
                running_min, running_max = candidate_min, candidate_max
                running_sum += values[index]
                continue
        length = index - start
        if variant == "mean":
            constant = running_sum / length
        else:
            constant = 0.5 * (running_min + running_max)
        segments.append((start, index, float(constant)))
        if index < n:
            start = index
            running_min = running_max = running_sum = values[index]
    return segments


class PoorMansCompressionMean(LossyCompressor):
    """PMC with a per-value L-infinity error bound.

    Parameters
    ----------
    error_bound:
        Maximum absolute deviation of any value from its segment constant.
    variant:
        ``"midrange"`` (classical PMC-MR, default) or ``"mean"``.
    """

    name = "PMC"

    def __init__(self, error_bound: float, *, variant: str = "midrange"):
        self.error_bound = check_positive_float(error_bound, "error_bound")
        if variant not in ("mean", "midrange"):
            raise ValueError("variant must be 'mean' or 'midrange'")
        self.variant = variant

    def compress(self, series) -> CompressedModel:
        values, name = self._values_of(series)
        segments = pmc_segments(values, self.error_bound, variant=self.variant)
        n = values.size
        ends = np.asarray([end for _start, end, _constant in segments], dtype=np.int64)
        constants = np.asarray([constant for _s, _e, constant in segments], dtype=np.float64)

        def reconstruct() -> np.ndarray:
            out = np.empty(n, dtype=np.float64)
            start = 0
            for end, constant in zip(ends, constants):
                out[start:end] = constant
                start = int(end)
            return out

        return CompressedModel(
            reconstruct=reconstruct,
            stored_values=2 * len(segments),
            original_length=n,
            name=f"PMC({name})",
            metadata={
                "compressor": self.name,
                "error_bound": self.error_bound,
                "variant": self.variant,
                "segments": len(segments),
            },
        )
