"""Sim-Piece — piece-wise linear approximation with similar-segment merging.

Sim-Piece (Kitsios et al., PVLDB 2023) first builds error-bounded linear
segments whose intercepts are quantised to multiples of the error bound, then
groups segments with the same quantised intercept and overlapping slope
ranges so that one ``(intercept, slope)`` pair is stored for a whole group.
This faithful re-implementation keeps the two phases (segmentation +
similar-segment merging) and charges storage accordingly:

* one scalar per group for the representative slope,
* one scalar per distinct quantised intercept,
* one scalar per segment for its start index (timestamps must be kept to
  reconstruct segment boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_float
from .base import CompressedModel, LossyCompressor

__all__ = ["SimPiece", "simpiece_segments"]


@dataclass
class _Segment:
    """One error-bounded linear segment anchored at a quantised intercept."""

    start: int
    end: int          # inclusive
    intercept: float  # quantised value at ``start``
    slope_low: float
    slope_high: float

    @property
    def slope(self) -> float:
        return 0.5 * (self.slope_low + self.slope_high)


def simpiece_segments(values: np.ndarray, error_bound: float) -> list[_Segment]:
    """Phase 1: greedy error-bounded segmentation with quantised intercepts."""
    n = values.size
    segments: list[_Segment] = []
    start = 0
    while start < n:
        intercept = np.floor(values[start] / error_bound) * error_bound
        slope_low, slope_high = -np.inf, np.inf
        end = start
        for index in range(start + 1, n):
            dx = index - start
            upper = (values[index] + error_bound - intercept) / dx
            lower = (values[index] - error_bound - intercept) / dx
            new_high = min(slope_high, upper)
            new_low = max(slope_low, lower)
            if new_low > new_high:
                break
            slope_low, slope_high = new_low, new_high
            end = index
        if end == start:
            slope_low = slope_high = 0.0
        segments.append(_Segment(start=start, end=end, intercept=float(intercept),
                                 slope_low=float(slope_low), slope_high=float(slope_high)))
        start = end + 1
    return segments


def _merge_groups(segments: list[_Segment]) -> dict[float, list[tuple[list[_Segment], float]]]:
    """Phase 2: per-intercept grouping of segments with overlapping slope ranges.

    Returns ``{intercept: [(segments, representative_slope), ...]}``.
    """
    by_intercept: dict[float, list[_Segment]] = {}
    for segment in segments:
        by_intercept.setdefault(segment.intercept, []).append(segment)

    grouped: dict[float, list[tuple[list[_Segment], float]]] = {}
    for intercept, group in by_intercept.items():
        group_sorted = sorted(group, key=lambda s: s.slope_low)
        merged: list[tuple[list[_Segment], float]] = []
        current: list[_Segment] = []
        low, high = -np.inf, np.inf
        for segment in group_sorted:
            new_low = max(low, segment.slope_low)
            new_high = min(high, segment.slope_high)
            if current and new_low > new_high:
                merged.append((current, 0.5 * (low + high)))
                current = [segment]
                low, high = segment.slope_low, segment.slope_high
            else:
                current.append(segment)
                low, high = new_low, new_high
        if current:
            merged.append((current, 0.5 * (low + high)))
        grouped[intercept] = merged
    return grouped


class SimPiece(LossyCompressor):
    """Sim-Piece with an L-infinity per-value error bound."""

    name = "SP"

    def __init__(self, error_bound: float):
        self.error_bound = check_positive_float(error_bound, "error_bound")

    def compress(self, series) -> CompressedModel:
        values, name = self._values_of(series)
        n = values.size
        segments = simpiece_segments(values, self.error_bound)
        grouped = _merge_groups(segments)

        # Assign each segment the representative slope of its group.
        slope_of: dict[int, float] = {}
        group_count = 0
        for merged in grouped.values():
            for group_segments, representative_slope in merged:
                group_count += 1
                for segment in group_segments:
                    slope_of[segment.start] = representative_slope

        starts = np.asarray([s.start for s in segments], dtype=np.int64)
        ends = np.asarray([s.end for s in segments], dtype=np.int64)
        intercepts = np.asarray([s.intercept for s in segments], dtype=np.float64)
        slopes = np.asarray([slope_of[s.start] for s in segments], dtype=np.float64)

        def reconstruct() -> np.ndarray:
            out = np.empty(n, dtype=np.float64)
            for start, end, intercept, slope in zip(starts, ends, intercepts, slopes):
                t = np.arange(0, end - start + 1, dtype=np.float64)
                out[start:end + 1] = intercept + slope * t
            return out

        stored = group_count + len(grouped) + len(segments)
        return CompressedModel(
            reconstruct=reconstruct,
            stored_values=stored,
            original_length=n,
            name=f"SP({name})",
            metadata={
                "compressor": self.name,
                "error_bound": self.error_bound,
                "segments": len(segments),
                "groups": group_count,
                "distinct_intercepts": len(grouped),
            },
        )
