"""Lossy compression through the discrete Fourier transform.

The FFT baseline keeps only the ``k`` largest-magnitude frequency components
of the real FFT and discards the rest; decompression is the inverse FFT of
the sparse spectrum.  Storage is charged as three scalars per retained
component (index, real part, imaginary part), matching how a sparse spectrum
would actually be persisted.

Two knobs are offered because the paper sweeps "compression levels":

* ``keep_fraction`` — fraction of rFFT components retained,
* ``keep_components`` — absolute number of retained components (overrides
  the fraction when given).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from .base import CompressedModel, LossyCompressor

__all__ = ["FFTCompressor"]


class FFTCompressor(LossyCompressor):
    """Keep the top-k magnitude rFFT coefficients."""

    name = "FFT"

    def __init__(self, keep_fraction: float = 0.1, *, keep_components: int | None = None):
        if keep_components is None:
            if not 0.0 < keep_fraction <= 1.0:
                raise InvalidParameterError("keep_fraction must lie in (0, 1]")
        elif keep_components < 1:
            raise InvalidParameterError("keep_components must be >= 1")
        self.keep_fraction = float(keep_fraction)
        self.keep_components = keep_components

    def compress(self, series) -> CompressedModel:
        values, name = self._values_of(series)
        n = values.size
        spectrum = np.fft.rfft(values)
        total_components = spectrum.size
        if self.keep_components is not None:
            keep = min(int(self.keep_components), total_components)
        else:
            keep = max(1, int(round(self.keep_fraction * total_components)))
        # Always retain the DC component plus the top-(keep-1) magnitudes.
        magnitudes = np.abs(spectrum)
        magnitudes[0] = np.inf
        kept_indices = np.sort(np.argpartition(magnitudes, -keep)[-keep:])
        kept_values = spectrum[kept_indices]

        def reconstruct() -> np.ndarray:
            sparse = np.zeros(total_components, dtype=np.complex128)
            sparse[kept_indices] = kept_values
            return np.fft.irfft(sparse, n=n)

        return CompressedModel(
            reconstruct=reconstruct,
            stored_values=3 * keep,
            original_length=n,
            name=f"FFT({name})",
            metadata={
                "compressor": self.name,
                "kept_components": int(keep),
                "total_components": int(total_components),
                "keep_fraction": float(keep) / float(total_components),
            },
        )
