"""Crash-tolerant compression service over the durable store.

This package turns the library into a long-running process: a stdlib-only
threaded HTTP service fronting :class:`repro.engine.BatchEngine` (request
compression), :class:`repro.streaming.MultiStreamCompressor` (durable,
idempotent ingest through the PR 9 WAL spool), and
:class:`repro.storage.durable.DurableStore`.  The headline is the
robustness machinery, not the routing:

* **admission control** (:mod:`repro.service.admission`) — a bounded job
  queue with watermark-hysteresis load shedding (429 + ``Retry-After``,
  never unbounded memory) and per-tenant in-flight caps;
* **deadline propagation** (:mod:`repro.service.deadlines`) — each request
  carries a budget that flows into the engine supervisor's chunk waits, so
  a slow chunk never holds a connection past its deadline;
* **idempotent retries** — client idempotency keys journaled through the
  WAL spool (:meth:`repro.streaming.MultiStreamCompressor.add_idempotent`),
  so a crashed-then-retried ingest is applied exactly once after replay;
* **graceful drain** (:mod:`repro.service.lifecycle`) — SIGTERM stops
  admission, finishes or sheds queued jobs under a drain deadline, flushes
  the spool, checkpoints the store, then exits; ``/readyz`` flips before
  ``/healthz``;
* **circuit breaker** (:mod:`repro.service.breaker`) — repeated backend
  degradations trip a per-codec breaker that fails fast with 503 until a
  half-open probe succeeds.

Failure behaviour is proven by the deterministic service fault sites in
:mod:`repro.faultinject` (``request_parse`` / ``enqueue`` /
``mid_job_crash`` / ``drain`` / ``response_write``) — see
``docs/service.md`` for the endpoint reference and the failure matrix.
"""

from .admission import AdmissionController, Job, Shed
from .breaker import CircuitBreaker
from .config import ServiceConfig
from .deadlines import Deadline
from .lifecycle import Lifecycle, install_signal_handlers
from .metrics import ServiceMetrics
from .server import CompressionService, DrainReport

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CompressionService",
    "Deadline",
    "DrainReport",
    "Job",
    "Lifecycle",
    "ServiceConfig",
    "ServiceMetrics",
    "Shed",
    "install_signal_handlers",
]
