"""Service lifecycle: readiness, liveness, and signal-driven drain.

The state machine is deliberately tiny — ``starting → running → draining
→ stopped`` — because its ordering contract is what matters:

* ``/readyz`` answers 200 only in ``running``.  Entering ``draining``
  flips readiness *first*, before admission stops, so a load balancer
  stops routing new traffic ahead of the first 503.
* ``/healthz`` answers 200 in every state the process can still respond
  from — liveness outlasts readiness by design, so an orchestrator does
  not kill a pod that is busy draining.
"""

from __future__ import annotations

import signal
import threading

__all__ = ["Lifecycle", "install_signal_handlers"]

STARTING = "starting"
RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"

_ORDER = (STARTING, RUNNING, DRAINING, STOPPED)


class Lifecycle:
    """Monotonic service state with waitable drain completion."""

    def __init__(self):
        self._lock = threading.Lock()
        self._state = STARTING
        #: Set once the drain sequence (graceful or aborted) has finished.
        self.drained = threading.Event()

    @property
    def state(self) -> str:
        return self._state

    @property
    def is_ready(self) -> bool:
        return self._state == RUNNING

    @property
    def is_alive(self) -> bool:
        return self._state != STOPPED

    def _advance(self, target: str) -> bool:
        """Move forward to ``target``; False if already at or past it."""
        with self._lock:
            if _ORDER.index(target) <= _ORDER.index(self._state):
                return False
            self._state = target
            return True

    def mark_running(self) -> bool:
        return self._advance(RUNNING)

    def begin_drain(self) -> bool:
        """Flip readiness off.  True only for the first caller."""
        return self._advance(DRAINING)

    def mark_stopped(self) -> bool:
        return self._advance(STOPPED)


def install_signal_handlers(service, signals=(signal.SIGTERM, signal.SIGINT)):
    """SIGTERM/SIGINT → graceful drain (only callable from the main thread).

    The handler must return immediately (a drain can take seconds), so it
    only kicks off the service's background drain thread.  Returns the
    previous handlers so callers can restore them.
    """
    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(
            signum, lambda _signum, _frame: service.initiate_drain(
                reason=f"signal-{_signum}"))
    return previous
