"""Service metrics: counters, gauges, and latency quantiles.

Plain-text exposition in the Prometheus line format (no dependencies):
``name{label="value"} 123``.  Latency quantiles come from a fixed-size
ring reservoir per endpoint — bounded memory no matter how long the
service runs, which is the same discipline as the admission queue.
"""

from __future__ import annotations

import threading
from collections import defaultdict

__all__ = ["LatencyReservoir", "ServiceMetrics"]

#: Quantiles reported per endpoint.
QUANTILES = (0.5, 0.9, 0.99)


class LatencyReservoir:
    """A fixed-size ring of recent observations (seconds)."""

    def __init__(self, size: int = 512):
        self._ring: list[float] = [0.0] * max(int(size), 1)
        self._count = 0

    def record(self, seconds: float) -> None:
        self._ring[self._count % len(self._ring)] = float(seconds)
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window (0.0 when empty)."""
        held = min(self._count, len(self._ring))
        if not held:
            return 0.0
        window = sorted(self._ring[:held])
        rank = min(int(q * held), held - 1)
        return window[rank]


def _render_labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + inner + "}"


class ServiceMetrics:
    """Thread-safe counter/latency registry with text exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple], float] = defaultdict(float)
        self._latency: dict[str, LatencyReservoir] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1,
            labels: dict | None = None) -> None:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            self._counters[key] += value

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request: count by status plus latency."""
        self.inc("repro_requests_total",
                 labels={"endpoint": endpoint, "status": str(int(status))})
        with self._lock:
            reservoir = self._latency.get(endpoint)
            if reservoir is None:
                reservoir = self._latency[endpoint] = LatencyReservoir()
            reservoir.record(seconds)

    def absorb_report(self, report) -> None:
        """Fold one :class:`~repro.engine.report.BatchReport` in."""
        self.inc("repro_engine_series_total", report.series)
        self.inc("repro_engine_failed_series_total", report.failed)
        self.inc("repro_engine_retries_total", report.retries)
        self.inc("repro_engine_timeouts_total", report.timeouts)
        self.inc("repro_engine_pool_rebuilds_total", report.pool_rebuilds)
        self.inc("repro_engine_degraded_series_total", report.degraded_series)
        self.inc("repro_compressed_points_total", report.total_points)
        self.inc("repro_encoded_bits_total", report.encoded_bits)

    def counter(self, name: str, labels: dict | None = None) -> float:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            return self._counters.get(key, 0)

    # ------------------------------------------------------------------ #
    def render(self, gauges: dict | None = None) -> str:
        """The plain-text exposition; ``gauges`` are point-in-time values.

        A gauge value may be a plain number or ``{"value": x, "labels":
        {...}}``; gauge names may repeat across label sets by suffixing
        ``#anything`` (stripped on render).
        """
        lines: list[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            latency = {endpoint: [(q, res.quantile(q)) for q in QUANTILES]
                       for endpoint, res in sorted(self._latency.items())}
        for (name, label_items), value in counters:
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name}{_render_labels(dict(label_items))} {rendered}")
        for endpoint, quantiles in latency.items():
            for q, seconds in quantiles:
                labels = _render_labels(
                    {"endpoint": endpoint, "quantile": f"{q:g}"})
                lines.append(f"repro_request_seconds{labels} {seconds:.6f}")
        for name, value in sorted((gauges or {}).items()):
            clean = name.split("#", 1)[0]
            if isinstance(value, dict):
                labels = _render_labels(value.get("labels"))
                lines.append(f"{clean}{labels} {float(value['value']):g}")
            else:
                lines.append(f"{clean} {float(value):g}")
        return "\n".join(lines) + "\n"
