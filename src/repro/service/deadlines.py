"""Request deadlines on the monotonic clock.

A :class:`Deadline` is an absolute ``time.monotonic()`` instant plus the
budget it was minted from.  Requests carry one from parse time; the
remaining budget flows into the engine supervisor
(:class:`repro.engine.supervisor.SupervisorPolicy`'s ``deadline``) so a
slow chunk can never hold a connection past its deadline, and the request
thread's wait on its job is bounded by the same instant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..exceptions import InvalidParameterError

__all__ = ["Deadline", "parse_budget"]

#: Header carrying the request budget in milliseconds.
DEADLINE_HEADER = "X-Deadline-Ms"


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant on the monotonic clock."""

    expires_at: float
    budget: float

    @classmethod
    def after(cls, budget_seconds: float) -> "Deadline":
        budget = float(budget_seconds)
        if not budget > 0:
            raise InvalidParameterError(
                f"deadline budget must be positive, got {budget_seconds!r}")
        return cls(expires_at=time.monotonic() + budget, budget=budget)

    def remaining(self) -> float:
        """Seconds left (clamped at zero)."""
        return max(self.expires_at - time.monotonic(), 0.0)

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at


def parse_budget(raw, *, default: float, maximum: float) -> float:
    """A request's budget in seconds from its ``X-Deadline-Ms`` value.

    ``None``/empty falls back to ``default``; anything else must be a
    positive number of milliseconds (:class:`ValueError` otherwise — the
    route maps it to 400).  The result is capped at ``maximum``.
    """
    if raw is None or raw == "":
        return min(float(default), float(maximum))
    try:
        millis = float(raw)
    except (TypeError, ValueError):
        raise ValueError(f"deadline must be a number of milliseconds, "
                         f"got {raw!r}") from None
    if not millis > 0:
        raise ValueError(f"deadline must be positive, got {raw!r}")
    return min(millis / 1000.0, float(maximum))
