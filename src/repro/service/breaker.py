"""A per-key circuit breaker over backend degradation signals.

States follow the classic closed → open → half-open cycle:

* **closed** — traffic flows; consecutive degraded runs are counted and
  reset by any healthy run.
* **open** — after ``threshold`` consecutive degradations every request
  for the key fails fast with 503 (+ ``Retry-After``) instead of burning a
  worker on a backend that is already struggling.
* **half-open** — once ``cooldown`` has passed, exactly one probe request
  is let through; success closes the breaker, another degradation re-opens
  it (and restarts the cooldown).

The service keys breakers by codec and feeds them the supervisor's
degradation accounting (quarantined chunks, pool rebuilds, degraded
series) — PR 6's ``degraded_to`` machinery, not HTTP status codes, which
keeps client errors (bad input, blown deadlines) from tripping it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _KeyState:
    state: str = CLOSED
    failures: int = 0
    opened_at: float = 0.0
    probing: bool = False
    opened_total: int = 0
    rejected_total: int = 0


@dataclass
class CircuitBreaker:
    """Thread-safe breaker registry (one state machine per key)."""

    threshold: int = 3
    cooldown: float = 5.0
    clock: callable = time.monotonic
    _states: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self):
        if int(self.threshold) < 1:
            raise InvalidParameterError(
                f"threshold must be >= 1, got {self.threshold!r}")
        if not float(self.cooldown) > 0:
            raise InvalidParameterError(
                f"cooldown must be positive, got {self.cooldown!r}")

    def _state(self, key: str) -> _KeyState:
        return self._states.setdefault(str(key), _KeyState())

    # ------------------------------------------------------------------ #
    def allow(self, key: str) -> tuple[bool, float]:
        """May a request for ``key`` proceed?  Returns ``(allowed, retry_after)``.

        ``retry_after`` is only meaningful when ``allowed`` is False.  An
        open breaker past its cooldown admits exactly one probe (moving to
        half-open); concurrent requests keep failing fast until the probe
        reports back.
        """
        now = self.clock()
        with self._lock:
            state = self._state(key)
            if state.state == CLOSED:
                return True, 0.0
            if state.state == OPEN:
                waited = now - state.opened_at
                if waited >= self.cooldown:
                    state.state = HALF_OPEN
                    state.probing = True
                    return True, 0.0
                state.rejected_total += 1
                return False, max(self.cooldown - waited, 0.1)
            # half-open: one probe at a time
            if state.probing:
                state.rejected_total += 1
                return False, max(self.cooldown, 0.1)
            state.probing = True
            return True, 0.0

    def record(self, key: str, ok: bool) -> None:
        """Report the outcome of a run admitted for ``key``."""
        with self._lock:
            state = self._state(key)
            if ok:
                state.state = CLOSED
                state.failures = 0
                state.probing = False
                return
            state.failures += 1
            state.probing = False
            if state.state == HALF_OPEN or state.failures >= self.threshold:
                state.state = OPEN
                state.opened_at = self.clock()
                state.opened_total += 1

    # ------------------------------------------------------------------ #
    def state_of(self, key: str) -> str:
        with self._lock:
            return self._states.get(str(key), _KeyState()).state

    def snapshot(self) -> dict[str, dict]:
        """Per-key state for the metrics surface."""
        with self._lock:
            return {key: {"state": st.state, "failures": st.failures,
                          "opened_total": st.opened_total,
                          "rejected_total": st.rejected_total}
                    for key, st in self._states.items()}
