"""Service configuration: one validated, frozen bundle of knobs."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codecs import codec_spec
from ..exceptions import InvalidParameterError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.server.CompressionService` needs.

    Parameters
    ----------
    host, port:
        Bind address (``port=0`` picks a free port; read it back from
        :attr:`~repro.service.server.CompressionService.port`).
    workers:
        Job-executor threads consuming the admission queue.
    queue_depth:
        Hard cap on queued jobs.  ``high_watermark`` (default: 75 % of the
        depth) enters shedding mode, ``low_watermark`` (default: 50 %)
        leaves it — hysteresis so the service does not flap at the edge.
    per_tenant_inflight:
        Maximum admitted-but-unfinished jobs per ``X-Tenant`` value.
    default_deadline, max_deadline:
        Request budget in seconds when the client sends none, and the cap
        applied to whatever the client asks for.
    drain_timeout:
        Graceful-drain budget: queued jobs get this long to finish before
        the remainder is shed.
    codec:
        Default codec for ``/compress`` requests and the ingest pipeline.
    chunk_size:
        Values per sealed ingest chunk (see
        :class:`~repro.streaming.MultiStreamCompressor`).
    backend, engine_workers, chunk_timeout, retries:
        Engine execution knobs for ``/compress`` jobs.  The default
        ``thread`` backend keeps per-chunk waits preemptible, which is what
        lets a deadline cut a slow chunk loose.
    store:
        Optional durable-store directory enabling ``/ingest`` spooling and
        idempotency journaling.  ``spool_fsync`` is its WAL fsync policy.
    drain_batch:
        Pending sealed chunks that trigger an inline ingest drain.
    breaker_threshold, breaker_cooldown:
        Consecutive degraded runs that open a codec's circuit breaker, and
        the seconds before a half-open probe is allowed.
    max_body_bytes:
        Request-body size cap (413 beyond it — bounded memory, always).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_depth: int = 64
    high_watermark: int | None = None
    low_watermark: int | None = None
    per_tenant_inflight: int = 8
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    drain_timeout: float = 10.0
    codec: str = "gorilla"
    codec_options: dict = field(default_factory=dict)
    chunk_size: int = 256
    backend: str = "thread"
    engine_workers: int | None = None
    chunk_timeout: float | None = 10.0
    retries: int = 1
    store: str | None = None
    spool_fsync: str = "always"
    drain_batch: int = 8
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    max_body_bytes: int = 8 << 20

    def __post_init__(self):
        codec_spec(self.codec)  # validates the default codec name early
        for name in ("workers", "queue_depth", "per_tenant_inflight",
                     "chunk_size", "drain_batch", "breaker_threshold",
                     "max_body_bytes"):
            if int(getattr(self, name)) < 1:
                raise InvalidParameterError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}")
        for name in ("default_deadline", "max_deadline", "breaker_cooldown"):
            if not float(getattr(self, name)) > 0:
                raise InvalidParameterError(
                    f"{name} must be positive, got {getattr(self, name)!r}")
        if float(self.drain_timeout) < 0:
            raise InvalidParameterError(
                f"drain_timeout must be >= 0, got {self.drain_timeout!r}")
        if not 0 <= int(self.port) <= 65535:
            raise InvalidParameterError(
                f"port must be in [0, 65535], got {self.port!r}")
        high = self.high_watermark
        low = self.low_watermark
        if high is None:
            high = max(int(self.queue_depth * 3 // 4), 1)
        if low is None:
            low = max(int(self.queue_depth // 2), 0)
        if not 0 <= int(low) <= int(high) <= int(self.queue_depth):
            raise InvalidParameterError(
                f"watermarks must satisfy 0 <= low ({low}) <= high ({high}) "
                f"<= queue_depth ({self.queue_depth})")
        object.__setattr__(self, "high_watermark", int(high))
        object.__setattr__(self, "low_watermark", int(low))
