"""Request routing and validation for the compression service.

Every function returns ``(status, body, headers)`` where ``body`` is a
JSON-able dict (or a plain string for ``/metrics``).  The transport layer
(:mod:`repro.service.server`) owns the socket; this module owns the
contract that *every* refusal — malformed input, overload, open breaker,
blown deadline, draining — is a well-formed error response with the right
status code, never a hung connection:

=========  =======================================================
status     meaning
=========  =======================================================
400        malformed request (bad JSON, bad series, bad deadline)
404 / 405  unknown endpoint / method
413        request body beyond ``max_body_bytes``
429        shed: queue watermark latched, queue full, or tenant cap
503        draining, circuit breaker open, or injected enqueue fail
504        request deadline expired before the job finished
=========  =======================================================

429 and 503 shed responses always carry ``Retry-After``.
"""

from __future__ import annotations

import json

from .. import faultinject
from ..codecs import codec_spec
from ..exceptions import InvalidParameterError
from ..faultinject import InjectedCrash, InjectedFault
from .admission import Job
from .deadlines import DEADLINE_HEADER, Deadline, parse_budget

__all__ = ["handle_request"]

TENANT_HEADER = "X-Tenant"
IDEMPOTENCY_HEADER = "Idempotency-Key"
DEFAULT_TENANT = "public"

#: Sentinel status a crashed-in-flight job is finished with so its waiter
#: can tell "the service died" apart from any real response.
CRASHED_STATUS = 599


class _BadRequest(Exception):
    """Validation failure carrying the client-facing message."""


def handle_request(service, method: str, path: str, headers,
                   body: bytes | None) -> tuple[int, object, dict]:
    """Dispatch one request; never raises except for injected crashes."""
    try:
        faultinject.fire_service("request_parse", detail=path)
    except InjectedCrash:
        raise
    except InjectedFault as exc:
        return 400, {"error": f"request parse failed: {exc}"}, {}

    if method == "GET":
        return _handle_get(service, path)
    if method != "POST":
        return 405, {"error": f"method {method} is not allowed"}, {}
    if path not in ("/compress", "/ingest"):
        return 404, {"error": f"unknown endpoint {path}"}, {}
    if body is None:
        return 413, {"error": "request body exceeds the configured "
                              f"cap of {service.config.max_body_bytes} "
                              "bytes"}, {}
    try:
        document = json.loads(body.decode("utf-8") or "{}")
        if not isinstance(document, dict):
            raise _BadRequest("request body must be a JSON object")
        if path == "/compress":
            return _submit_compress(service, document, headers)
        return _submit_ingest(service, document, headers)
    except _BadRequest as exc:
        return 400, {"error": str(exc)}, {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return 400, {"error": f"request body is not valid JSON: {exc}"}, {}


# --------------------------------------------------------------------- #
# GET surface
# --------------------------------------------------------------------- #
def _handle_get(service, path: str) -> tuple[int, object, dict]:
    if path == "/healthz":
        alive = service.lifecycle.is_alive
        return (200 if alive else 503), {
            "alive": alive, "state": service.lifecycle.state}, {}
    if path == "/readyz":
        ready = service.lifecycle.is_ready
        body = {"ready": ready, "state": service.lifecycle.state}
        if ready:
            return 200, body, {}
        return 503, body, {"Retry-After": "1"}
    if path == "/metrics":
        text = service.render_metrics()
        return 200, text, {"Content-Type": "text/plain; version=0.0.4"}
    if path == "/streams":
        return 200, service.stream_summary(), {}
    return 404, {"error": f"unknown endpoint {path}"}, {}


# --------------------------------------------------------------------- #
# POST /compress
# --------------------------------------------------------------------- #
def _normalize_series(document) -> tuple[list, list[str]]:
    raw = document.get("series")
    if isinstance(raw, dict) and raw:
        names = [str(name) for name in raw]
        rows = list(raw.values())
    elif isinstance(raw, list) and raw:
        rows = raw
        names = document.get("names")
        if names is None:
            names = [f"series-{position}" for position in range(len(rows))]
        elif (not isinstance(names, list)
              or len(names) != len(rows)):
            raise _BadRequest(
                f"names must be a list of {len(rows)} strings")
        names = [str(name) for name in names]
    else:
        raise _BadRequest(
            "series must be a non-empty JSON array of value arrays "
            "or an object mapping names to value arrays")
    series = []
    for position, row in enumerate(rows):
        if not isinstance(row, list) or not row:
            raise _BadRequest(
                f"series[{position}] must be a non-empty array of numbers")
        try:
            series.append([float(value) for value in row])
        except (TypeError, ValueError):
            raise _BadRequest(
                f"series[{position}] contains non-numeric values") from None
    return series, names


def _request_deadline(service, document, headers) -> Deadline:
    raw = headers.get(DEADLINE_HEADER)
    if raw is None:
        raw = document.get("deadline_ms")
    try:
        budget = parse_budget(raw, default=service.config.default_deadline,
                              maximum=service.config.max_deadline)
    except ValueError as exc:
        raise _BadRequest(str(exc)) from None
    return Deadline.after(budget)


def _submit_and_wait(service, job: Job, endpoint: str
                     ) -> tuple[int, object, dict]:
    try:
        shed = service.admission.submit(job)
    except InjectedCrash:
        raise
    except InjectedFault as exc:
        return 503, {"error": f"enqueue failed: {exc}"}, {"Retry-After": "1"}
    if shed is not None:
        return shed.status, {
            "error": f"request shed: {shed.reason}", "reason": shed.reason,
        }, {"Retry-After": f"{max(shed.retry_after, 1):.0f}"}
    finished = job.done.wait(timeout=job.deadline.remaining() + 0.25)
    if not finished:
        # The worker may still be grinding; it checks `cancelled` (and its
        # engine run is bounded by the same deadline) — the connection is
        # released now either way.
        job.cancelled.set()
        service.metrics.inc("repro_deadline_timeouts_total",
                            labels={"endpoint": endpoint})
        return 504, {
            "error": "deadline expired before the job completed",
            "deadline_seconds": job.deadline.budget,
        }, {"Retry-After": "1"}
    if job.status == CRASHED_STATUS:
        raise InjectedCrash("service crashed while the job was in flight")
    return job.status, job.body, job.headers


def _submit_compress(service, document, headers) -> tuple[int, object, dict]:
    deadline = _request_deadline(service, document, headers)
    series, names = _normalize_series(document)
    codec = str(document.get("codec") or service.config.codec)
    try:
        codec = codec_spec(codec).name
    except InvalidParameterError as exc:
        raise _BadRequest(str(exc)) from None
    codec_options = document.get("codec_options") or {}
    if not isinstance(codec_options, dict):
        raise _BadRequest("codec_options must be a JSON object")
    allowed, retry_after = service.breaker.allow(codec)
    if not allowed:
        service.metrics.inc("repro_breaker_rejected_total",
                            labels={"codec": codec})
        return 503, {
            "error": f"circuit breaker open for codec {codec!r}",
            "codec": codec, "breaker": service.breaker.state_of(codec),
        }, {"Retry-After": f"{max(retry_after, 1):.0f}"}
    job = Job(kind="compress",
              tenant=str(headers.get(TENANT_HEADER) or DEFAULT_TENANT),
              deadline=deadline,
              payload={"series": series, "names": names, "codec": codec,
                       "codec_options": codec_options,
                       "include_blocks":
                           bool(document.get("include_blocks", False))})
    return _submit_and_wait(service, job, "/compress")


# --------------------------------------------------------------------- #
# POST /ingest
# --------------------------------------------------------------------- #
def _submit_ingest(service, document, headers) -> tuple[int, object, dict]:
    deadline = _request_deadline(service, document, headers)
    stream = document.get("stream")
    if not isinstance(stream, str) or not stream:
        raise _BadRequest("stream must be a non-empty string")
    values = document.get("values")
    if not isinstance(values, list) or not values:
        raise _BadRequest("values must be a non-empty array of numbers")
    try:
        values = [float(value) for value in values]
    except (TypeError, ValueError):
        raise _BadRequest("values contains non-numeric entries") from None
    key = headers.get(IDEMPOTENCY_HEADER)
    if key is None:
        key = document.get("idempotency_key")
    if key is not None and (not isinstance(key, str) or not key):
        raise _BadRequest("idempotency key must be a non-empty string")
    if service.multi.spool is None and key is not None:
        return 503, {"error": "idempotent ingest requires a durable store "
                              "(start the service with --store)"}, {}
    job = Job(kind="ingest",
              tenant=str(headers.get(TENANT_HEADER) or DEFAULT_TENANT),
              deadline=deadline,
              payload={"stream": stream, "values": values, "key": key})
    return _submit_and_wait(service, job, "/ingest")
