"""The compression service: transport, worker pool, drain, and crash paths.

:class:`CompressionService` wires the pieces together:

* a :class:`http.server.ThreadingHTTPServer` transport (stdlib only) whose
  handler delegates every request to :func:`repro.service.routes.handle_request`;
* a pool of worker threads consuming the admission queue — ``/compress``
  jobs run a per-request :class:`~repro.engine.BatchEngine` bounded by the
  request deadline, ``/ingest`` jobs feed the shared
  :class:`~repro.streaming.MultiStreamCompressor` (WAL-spooled and
  idempotency-journaled when a durable store is configured);
* the graceful drain sequence (``initiate_drain``): readiness flips first,
  admission stops, queued jobs get ``drain_timeout`` to finish, the
  remainder is shed with well-formed 503s, the spool is flushed and the
  store checkpointed, then the listener shuts down;
* the crash path (``abort``): an injected ``mid_job_crash`` (or any other
  service-site crash) closes the spool *abruptly* — no journal persistence,
  no drain — so on-disk state is exactly what the WAL acknowledged, which
  is what the chaos tests reopen and fsck.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from .. import faultinject
from ..engine import BatchEngine
from ..faultinject import InjectedCrash, InjectedFault
from ..streaming import MultiStreamCompressor
from .admission import AdmissionController, Job
from .breaker import CircuitBreaker
from .config import ServiceConfig
from .lifecycle import Lifecycle
from .metrics import ServiceMetrics
from .routes import CRASHED_STATUS, handle_request

__all__ = ["CompressionService", "DrainReport"]


@dataclass(frozen=True)
class DrainReport:
    """What a finished drain (or abort) looked like."""

    reason: str
    #: True when every admitted job finished inside ``drain_timeout``.
    clean: bool
    #: Queued jobs answered with a shed 503 instead of being run.
    shed_jobs: int
    duration: float
    aborted: bool = False


class CompressionService:
    """A crash-tolerant HTTP compression service over the durable store.

    Construction opens the durable store (when configured) and replays its
    spool — a :class:`~repro.exceptions.StorageError` here means the store
    is locked or corrupt and maps to the CLI's exit code 4, the same as a
    failed bind in :meth:`start`.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.lifecycle = Lifecycle()
        self.admission = AdmissionController(self.config, self.metrics)
        self.breaker = CircuitBreaker(threshold=self.config.breaker_threshold,
                                      cooldown=self.config.breaker_cooldown)
        # One lock serializes every touch of the shared ingest compressor
        # (worker appends, inline drains, /streams snapshots, final close).
        self._spool_lock = threading.RLock()
        self.multi = MultiStreamCompressor(
            self.config.chunk_size, self.config.codec,
            codec_options=dict(self.config.codec_options),
            backend="serial",
            spool_to=self.config.store,
            spool_fsync=self.config.spool_fsync)
        self.replayed = 0
        if self.config.store is not None:
            # Crash recovery: re-ingest undrained spool values before the
            # service admits anything, then compress the recovered backlog.
            self.replayed = self.multi.replay_spool()
            if self.multi._pending:
                self.multi.drain()
        self._httpd: ThreadingHTTPServer | None = None
        self._workers: list[threading.Thread] = []
        self._workers_stop = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_thread: threading.Thread | None = None
        self._aborted = False
        self._serving = False
        self.drain_report: DrainReport | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Bind the listener and start the workers (OSError propagates)."""
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _make_handler(self))
        for position in range(self.config.workers):
            worker = threading.Thread(target=self._worker_loop, daemon=True,
                                      name=f"repro-worker-{position}")
            worker.start()
            self._workers.append(worker)
        self.lifecycle.mark_running()

    @property
    def port(self) -> int:
        if self._httpd is None:
            return int(self.config.port)
        return int(self._httpd.server_address[1])

    def serve_forever(self) -> DrainReport:
        """Block until a drain (or abort) shuts the listener down."""
        if self._httpd is None:
            self.start()
        self._serving = True
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._serving = False
            self.lifecycle.drained.wait(timeout=self.config.drain_timeout + 30)
        return self.drain_report or DrainReport(
            reason="unknown", clean=False, shed_jobs=0, duration=0.0)

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain and wait (test convenience); True once fully stopped."""
        self.initiate_drain(reason="stop")
        return self.lifecycle.drained.wait(timeout)

    # ------------------------------------------------------------------ #
    # drain
    # ------------------------------------------------------------------ #
    def initiate_drain(self, reason: str = "requested") -> threading.Thread:
        """Kick off the graceful drain exactly once (signal-handler safe)."""
        with self._drain_lock:
            if self._drain_thread is None:
                self._drain_thread = threading.Thread(
                    target=self._drain, args=(str(reason),),
                    daemon=True, name="repro-drain")
                self._drain_thread.start()
            return self._drain_thread

    def _drain(self, reason: str) -> None:
        started = time.monotonic()
        if not self.lifecycle.begin_drain():
            return  # already draining or aborted
        self.metrics.inc("repro_drains_total")
        # Readiness is already off; now nothing new gets queued.
        self.admission.stop("draining")
        try:
            faultinject.fire_service("drain", detail=reason)
        except InjectedCrash:
            self.abort()
            return
        except InjectedFault:
            # An injected drain failure must not leave the service wedged:
            # count it and keep draining.
            self.metrics.inc("repro_drain_faults_total")
        clean = self.admission.wait_idle(self.config.drain_timeout)
        shed = self.admission.shed_queued(status=503, reason="draining")
        self._workers_stop.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        with self._spool_lock:
            # Deliberately no flush of partial buffers: undrained acked
            # values stay in the spool and replay on the next boot, so a
            # drain can never lose an acked batch.  close() persists the
            # idempotency journal and checkpoints the store.
            self.multi.close()
        self.lifecycle.mark_stopped()
        self._shutdown_listener()
        self.drain_report = DrainReport(
            reason=reason, clean=clean, shed_jobs=len(shed),
            duration=time.monotonic() - started)
        self.lifecycle.drained.set()

    def abort(self) -> None:
        """Simulated process death: abrupt spool close, nothing graceful.

        On-disk state afterwards is exactly what the WAL acknowledged plus
        the last manifest swap — the idempotency journal is *not* persisted
        (its intents were already durable before each append), which is the
        state :meth:`~repro.storage.durable.DurableStore.open` recovery and
        journal reconciliation are built for.
        """
        with self._drain_lock:
            if self._aborted:
                return
            self._aborted = True
        self.metrics.inc("repro_aborts_total")
        self.lifecycle.begin_drain()
        self.admission.stop("aborted")
        self._workers_stop.set()
        spool = self.multi.spool
        if spool is not None:
            with self._spool_lock:
                try:
                    spool.close()  # NOT multi.close(): skip journal persist
                except Exception:
                    pass
        # Waiters must not hang on jobs that will never run.
        self.admission.shed_queued(status=503, reason="aborted")
        self.lifecycle.mark_stopped()
        self._shutdown_listener()
        self.drain_report = DrainReport(reason="aborted", clean=False,
                                        shed_jobs=0, duration=0.0,
                                        aborted=True)
        self.lifecycle.drained.set()

    def _shutdown_listener(self) -> None:
        httpd = self._httpd
        if httpd is None:
            return
        serving = self._serving

        def _close() -> None:
            if serving:
                # shutdown() blocks forever unless serve_forever is live,
                # and deadlocks if called from a handler thread — hence
                # this helper thread and the `serving` guard.
                httpd.shutdown()
            httpd.server_close()

        threading.Thread(target=_close, daemon=True).start()

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while not self._workers_stop.is_set():
            job = self.admission.next_job(timeout=0.1)
            if job is None:
                continue
            started = time.monotonic()
            try:
                self._execute(job)
            except InjectedCrash:
                job.finish(CRASHED_STATUS, {"error": "service crashed"})
                self.admission.finish(job, started_at=started)
                self.abort()
                return
            except InjectedFault as exc:
                job.finish(500, {"error": f"injected fault: {exc}"})
            except Exception as exc:  # the pool must survive anything
                self.metrics.inc("repro_worker_errors_total")
                job.finish(500, {"error": f"internal error: "
                                          f"{type(exc).__name__}: {exc}"})
            self.admission.finish(job, started_at=started)

    def _execute(self, job: Job) -> None:
        if job.cancelled.is_set() or job.deadline.expired():
            # The request thread already answered 504; just account it.
            self.metrics.inc("repro_jobs_discarded_total")
            job.finish(504, {"error": "deadline expired while queued"})
            return
        if job.kind == "compress":
            self._execute_compress(job)
        else:
            self._execute_ingest(job)

    def _execute_compress(self, job: Job) -> None:
        payload = job.payload
        faultinject.fire_service(
            "mid_job_crash", detail=f"/compress {' '.join(payload['names'])}")
        engine = BatchEngine(payload["codec"],
                             codec_options=payload["codec_options"],
                             backend=self.config.backend,
                             workers=self.config.engine_workers,
                             timeout=self.config.chunk_timeout,
                             retries=self.config.retries)
        remaining = job.deadline.remaining()
        if remaining <= 0:
            self.metrics.inc("repro_jobs_discarded_total")
            job.finish(504, {"error": "deadline expired while queued"})
            return
        result = engine.compress(payload["series"], names=payload["names"],
                                 deadline=remaining)
        report = result.report
        self.metrics.absorb_report(report)
        # Breaker signal: backend degradation only — quarantines, pool
        # rebuilds, degraded series.  Timeouts are excluded (a tight client
        # deadline must not trip the breaker) and so are per-series input
        # errors (isolation means bad input never implicates the backend).
        healthy = not (report.quarantined_chunks or report.pool_rebuilds
                       or report.degraded_series)
        self.breaker.record(payload["codec"], healthy)
        include_blocks = payload["include_blocks"]
        outcomes = []
        for outcome in result:
            entry = {"name": outcome.name, "length": outcome.length,
                     "ok": outcome.ok}
            if outcome.ok:
                entry["bits"] = outcome.block.bits
                if include_blocks:
                    from ..codecs.serialize import block_to_document
                    entry["block"] = block_to_document(outcome.block)
            else:
                entry["error"] = outcome.error
                entry["error_type"] = outcome.error_type
            if outcome.degraded_to:
                entry["degraded_to"] = outcome.degraded_to
            outcomes.append(entry)
        status = 200 if report.failed == 0 else 207
        job.finish(status, {
            "codec": report.codec,
            "series": report.series,
            "failed": report.failed,
            "total_points": report.total_points,
            "encoded_bits": report.encoded_bits,
            "timeouts": report.timeouts,
            "degraded_series": report.degraded_series,
            "outcomes": outcomes,
        })

    def _execute_ingest(self, job: Job) -> None:
        payload = job.payload
        stream, values, key = (payload["stream"], payload["values"],
                               payload["key"])
        with self._spool_lock:
            if key is not None:
                sealed, duplicate = self.multi.add_idempotent(
                    stream, values, key)
            else:
                sealed = self.multi.add(stream, values)
                duplicate = False
            # Fired *after* the spool append: the crash window where the
            # WAL acknowledged the values but the client never got its 200
            # — exactly what the idempotency journal must absorb on retry.
            faultinject.fire_service("mid_job_crash", detail=f"/ingest {stream}")
            drained = 0
            if len(self.multi._pending) >= self.config.drain_batch:
                drained = len(self.multi.drain())
        self.metrics.inc("repro_ingested_values_total",
                         0 if duplicate else len(values))
        if duplicate:
            self.metrics.inc("repro_idempotent_duplicates_total")
        job.finish(200, {
            "stream": stream,
            "ingested": 0 if duplicate else len(values),
            "duplicate": duplicate,
            "sealed_chunks": sealed,
            "drained_chunks": drained,
        })

    # ------------------------------------------------------------------ #
    # observability surfaces
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        gauges = {
            "repro_queue_depth": float(self.admission.depth),
            "repro_jobs_running": float(self.admission.running),
            "repro_shedding": 1.0 if self.admission.shedding else 0.0,
            "repro_ready": 1.0 if self.lifecycle.is_ready else 0.0,
            "repro_spool_replayed_values": float(self.replayed),
        }
        for position, (key, state) in enumerate(
                sorted(self.breaker.snapshot().items())):
            gauges[f"repro_breaker_open#{position}"] = {
                "value": 1.0 if state["state"] == "open" else 0.0,
                "labels": {"codec": key}}
            gauges[f"repro_breaker_rejections#{position}"] = {
                "value": float(state["rejected_total"]),
                "labels": {"codec": key}}
        return self.metrics.render(gauges)

    def stream_summary(self) -> dict:
        with self._spool_lock:
            streams = {}
            for name in self.multi.streams:
                report = self.multi.report(name)
                streams[name] = {
                    "chunks": report.chunks,
                    "ingested_points": report.ingested_points,
                    "sealed_points": report.sealed_points,
                    "buffered_points": report.buffered_points,
                    "encoded_bits": report.encoded_bits,
                }
            pending = len(self.multi._pending)
        return {"streams": streams, "pending_chunks": pending,
                "replayed_values": self.replayed,
                "store": self.config.store}


# --------------------------------------------------------------------- #
# transport
# --------------------------------------------------------------------- #
def _make_handler(service: CompressionService):
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.0: one request per connection, close after the response —
        # the simplest transport that can never leave a client hanging on
        # a keep-alive after a crash.
        server_version = "repro-service"

        def log_message(self, *_args) -> None:  # quiet by default
            pass

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def do_PUT(self) -> None:
            self._dispatch("PUT")

        def do_DELETE(self) -> None:
            self._dispatch("DELETE")

        def _read_body(self) -> bytes | None:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                return b""
            if length > service.config.max_body_bytes:
                return None  # routes answer 413
            return self.rfile.read(max(length, 0))

        def _dispatch(self, method: str) -> None:
            started = time.monotonic()
            path = urlsplit(self.path).path
            status = None
            try:
                body = self._read_body() if method == "POST" else b""
                status, payload, headers = handle_request(
                    service, method, path, self.headers, body)
                self._respond(status, payload, headers, path)
            except InjectedCrash:
                # Simulated process death: the client gets a dropped
                # connection, never a half-written response.
                service.abort()
                self.close_connection = True
            finally:
                if status is not None:
                    service.metrics.observe(
                        path, status, time.monotonic() - started)

        def _respond(self, status: int, payload, headers: dict,
                     path: str) -> None:
            headers = dict(headers)
            try:
                faultinject.fire_service("response_write", detail=path)
            except InjectedCrash:
                raise
            except InjectedFault as exc:
                # Nothing written yet — degrade to a well-formed 500.
                status, payload = 500, {"error": f"response write failed: "
                                                 f"{exc}"}
            if isinstance(payload, str):
                data = payload.encode("utf-8")
                content_type = headers.pop("Content-Type", "text/plain")
            else:
                data = json.dumps(payload, sort_keys=True).encode("utf-8")
                content_type = "application/json"
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

    return Handler
