"""Admission control: a bounded job queue that sheds before it grows.

The queue's invariants are the service's memory-safety story:

* depth never exceeds ``queue_depth`` — submissions beyond it (or while
  watermark shedding is latched) get a 429 + ``Retry-After`` estimate, so
  sustained overload costs the client a retry, never the server its heap;
* watermark *hysteresis*: shedding latches when depth reaches
  ``high_watermark`` and only unlatches once depth falls to
  ``low_watermark``, so the service does not flap at the boundary;
* per-tenant in-flight caps: one hot tenant saturating its cap gets 429s
  while other tenants' budgets stay unaffected;
* once admission stops (drain), every submission gets a 503 — nothing new
  is ever queued behind a drain.

Every job carries a :class:`~repro.service.deadlines.Deadline`; workers
discard jobs that expired while queued (the request thread has already
answered 504 for them).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field

from .. import faultinject
from .deadlines import Deadline

__all__ = ["AdmissionController", "Job", "Shed"]


@dataclass(frozen=True)
class Shed:
    """A rejected submission: HTTP status, reason, and retry hint."""

    status: int
    reason: str
    retry_after: float


_ids = itertools.count(1)


@dataclass
class Job:
    """One admitted unit of work plus its response slot."""

    kind: str                       # "compress" | "ingest"
    tenant: str
    deadline: Deadline
    payload: dict = field(default_factory=dict)
    id: int = field(default_factory=lambda: next(_ids))
    done: threading.Event = field(default_factory=threading.Event)
    cancelled: threading.Event = field(default_factory=threading.Event)
    status: int = 0
    body: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)

    def finish(self, status: int, body: dict,
               headers: dict | None = None) -> None:
        """Record the response exactly once and wake the waiter."""
        if self.done.is_set():
            return
        self.status = int(status)
        self.body = body
        self.headers = dict(headers or {})
        self.done.set()

    @property
    def path(self) -> str:
        return "/compress" if self.kind == "compress" else "/ingest"


class AdmissionController:
    """Bounded queue + tenant caps + watermark shedding + drain support."""

    def __init__(self, config, metrics, *, clock=time.monotonic):
        self.config = config
        self.metrics = metrics
        self.clock = clock
        self._cond = threading.Condition()
        self._queue: deque[Job] = deque()
        self._tenant_inflight: Counter = Counter()
        self._running = 0
        self._shedding = False
        self._stopped_reason: str | None = None
        # EWMA of job service time, seeding the Retry-After estimate.
        self._ewma_seconds = 0.25

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #
    def _retry_after(self, depth: int) -> float:
        """Seconds until the backlog plausibly clears (clamped [1, 30])."""
        backlog = (depth + self._running) * self._ewma_seconds
        return min(max(backlog / max(self.config.workers, 1), 1.0), 30.0)

    def submit(self, job: Job) -> Shed | None:
        """Admit ``job`` or explain why not.  ``None`` means queued."""
        with self._cond:
            shed = self._check_admission(job)
        if shed is not None:
            self.metrics.inc("repro_shed_total", labels={"reason": shed.reason})
            return shed
        # The accepted-but-unqueued window: a fault here must surface as a
        # well-formed error (raise) or be survivable as a crash.  Fired
        # outside the lock so an injected hang cannot wedge admission.
        faultinject.fire_service("enqueue", detail=job.path)
        with self._cond:
            shed = self._check_admission(job)
            if shed is not None:
                pass
            else:
                self._tenant_inflight[job.tenant] += 1
                self._queue.append(job)
                self._cond.notify()
                return None
        self.metrics.inc("repro_shed_total", labels={"reason": shed.reason})
        return shed

    def _check_admission(self, job: Job) -> Shed | None:
        """Admission decision under the lock (no side effects on jobs)."""
        if self._stopped_reason is not None:
            return Shed(status=503, reason=self._stopped_reason,
                        retry_after=self._retry_after(len(self._queue)))
        depth = len(self._queue)
        if self._shedding and depth <= self.config.low_watermark:
            self._shedding = False
        if depth >= self.config.high_watermark:
            self._shedding = True
        if self._shedding or depth >= self.config.queue_depth:
            return Shed(status=429, reason="overload",
                        retry_after=self._retry_after(depth))
        if (self._tenant_inflight[job.tenant]
                >= self.config.per_tenant_inflight):
            return Shed(status=429, reason="tenant-cap",
                        retry_after=self._retry_after(depth))
        return None

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def next_job(self, timeout: float = 0.1) -> Job | None:
        """Pop the next job (None on timeout or stopped-and-empty)."""
        with self._cond:
            if not self._queue:
                self._cond.wait(timeout)
            if not self._queue:
                return None
            job = self._queue.popleft()
            self._running += 1
            self._cond.notify_all()
            return job

    def finish(self, job: Job, *, started_at: float | None = None) -> None:
        """Account a popped job as done (success, failure, or discard)."""
        with self._cond:
            self._running -= 1
            self._tenant_inflight[job.tenant] -= 1
            if self._tenant_inflight[job.tenant] <= 0:
                del self._tenant_inflight[job.tenant]
            if started_at is not None:
                elapsed = max(self.clock() - started_at, 0.0)
                self._ewma_seconds += 0.2 * (elapsed - self._ewma_seconds)
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # drain support
    # ------------------------------------------------------------------ #
    def stop(self, reason: str = "draining") -> None:
        """Refuse every future submission with a 503 (idempotent)."""
        with self._cond:
            if self._stopped_reason is None:
                self._stopped_reason = reason
            self._cond.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until queue and running both hit zero (or timeout)."""
        deadline = self.clock() + max(timeout, 0.0)
        with self._cond:
            while self._queue or self._running:
                remaining = deadline - self.clock()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.1))
            return True

    def shed_queued(self, *, status: int = 503,
                    reason: str = "draining") -> list[Job]:
        """Pop every queued job and answer it with a shed response.

        Tenant accounting is released here because these jobs will never
        reach a worker's :meth:`finish`.
        """
        with self._cond:
            shed, self._queue = list(self._queue), deque()
            for job in shed:
                self._tenant_inflight[job.tenant] -= 1
                if self._tenant_inflight[job.tenant] <= 0:
                    del self._tenant_inflight[job.tenant]
            self._cond.notify_all()
        for job in shed:
            retry = self._retry_after(0)
            self.metrics.inc("repro_shed_total", labels={"reason": reason})
            job.finish(status, {"error": f"request shed: {reason}",
                                "reason": reason},
                       headers={"Retry-After": f"{retry:.0f}"})
        return shed

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def running(self) -> int:
        with self._cond:
            return self._running

    @property
    def shedding(self) -> bool:
        with self._cond:
            return self._shedding
