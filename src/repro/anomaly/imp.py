"""Matrix-profile-style discord search over *irregular* (compressed) series.

The paper's second anomaly hypothesis: if downstream analytics can work
directly on the irregular series produced by line simplification, the
end-to-end runtime shrinks because every segment is represented by far fewer
points (``m' << m``).  ``iMP`` computes all-pairs segment distances using
only the retained points inside each segment — interpolation is applied
*conceptually* (both segments are compared on the union of their retained
offsets) but never materialised for the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..data.timeseries import IrregularSeries
from ..exceptions import InvalidParameterError

__all__ = ["IrregularProfileResult", "irregular_matrix_profile", "regular_matrix_profile_naive"]


@dataclass
class IrregularProfileResult:
    """Discord profile over segment start positions."""

    starts: np.ndarray
    profile: np.ndarray
    points_per_segment: float
    window: int

    def discord_index(self) -> int:
        """Original-series start index of the most anomalous segment."""
        return int(self.starts[int(np.argmax(self.profile))])


def _segment_offsets(series: IrregularSeries, start: int, window: int) -> np.ndarray:
    """Offsets (within the segment) of retained points falling inside it."""
    left = np.searchsorted(series.indices, start, side="left")
    right = np.searchsorted(series.indices, start + window, side="left")
    return series.indices[left:right] - start


def irregular_matrix_profile(series: IrregularSeries, window: int, *,
                             stride: int | None = None,
                             exclusion: int | None = None) -> IrregularProfileResult:
    """All-pairs discord profile evaluated only at retained points (iMP).

    Segments start every ``stride`` positions (default: ``window // 2``).
    For a pair of segments the distance is the z-normalised Euclidean
    distance evaluated at the union of retained offsets of the two segments,
    using linear interpolation (through the compressed representation) for
    the counterpart values — the irregular analogue of MP's z-normalised
    distance.  Complexity is ``O(S^2 * m')`` for ``S`` segments and ``m'``
    average retained points per segment.
    """
    window = check_positive_int(window, "window")
    n = series.original_length
    if window > n // 2:
        raise InvalidParameterError("window must not exceed half the series length")
    if stride is None:
        stride = max(window // 2, 1)
    if exclusion is None:
        exclusion = window
    starts = np.arange(0, n - window + 1, stride, dtype=np.int64)
    num_segments = starts.size
    reconstructed_index = series.indices.astype(np.float64)
    values = series.values

    # Pre-compute, per segment, the retained offsets and their values plus
    # the z-normalisation statistics on those offsets.
    segment_offsets: list[np.ndarray] = []
    segment_values: list[np.ndarray] = []
    for start in starts:
        offsets = _segment_offsets(series, int(start), window)
        if offsets.size < 2:
            offsets = np.asarray([0, window - 1], dtype=np.int64)
        segment_values.append(np.interp(offsets + start, reconstructed_index, values))
        segment_offsets.append(offsets)

    profile = np.full(num_segments, -np.inf)
    for i in range(num_segments):
        best = np.inf
        offsets_i = segment_offsets[i]
        values_i = segment_values[i]
        for j in range(num_segments):
            if abs(int(starts[i]) - int(starts[j])) < exclusion:
                continue
            # Evaluate both segments on segment i's retained offsets.
            other = np.interp(offsets_i + starts[j], reconstructed_index, values)
            a = (values_i - values_i.mean()) / (values_i.std() or 1.0)
            b = (other - other.mean()) / (other.std() or 1.0)
            distance = float(np.sqrt(np.mean((a - b) ** 2)))
            if distance < best:
                best = distance
        profile[i] = best if np.isfinite(best) else 0.0
    points = float(np.mean([offsets.size for offsets in segment_offsets]))
    return IrregularProfileResult(starts=starts, profile=profile,
                                  points_per_segment=points, window=window)


def regular_matrix_profile_naive(values: np.ndarray, window: int, *,
                                 stride: int | None = None,
                                 exclusion: int | None = None) -> IrregularProfileResult:
    """Reference ``rMP``: the same segment-stride discord search on all points.

    Used by the Figure 13 (right) runtime comparison — identical structure to
    :func:`irregular_matrix_profile` but every segment uses all ``window``
    points, so the speed difference isolates the effect of the compressed
    representation.
    """
    values = np.asarray(values, dtype=np.float64)
    window = check_positive_int(window, "window")
    n = values.size
    if stride is None:
        stride = max(window // 2, 1)
    if exclusion is None:
        exclusion = window
    starts = np.arange(0, n - window + 1, stride, dtype=np.int64)
    num_segments = starts.size
    segments = np.stack([values[s:s + window] for s in starts])
    means = segments.mean(axis=1, keepdims=True)
    stds = segments.std(axis=1, keepdims=True)
    stds = np.where(stds < 1e-12, 1.0, stds)
    normalised = (segments - means) / stds

    profile = np.full(num_segments, -np.inf)
    for i in range(num_segments):
        distances = np.sqrt(np.mean((normalised - normalised[i]) ** 2, axis=1))
        mask = np.abs(starts - starts[i]) < exclusion
        distances[mask] = np.inf
        profile[i] = float(np.min(distances))
    return IrregularProfileResult(starts=starts, profile=profile,
                                  points_per_segment=float(window), window=window)
