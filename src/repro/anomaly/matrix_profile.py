"""Matrix Profile computation and discord-based anomaly detection.

The paper's anomaly experiment (Figure 13) runs the Matrix Profile (MP)
algorithm on decompressed series and reports the UCR-score.  The MP of a
series is, for every subsequence of length ``m``, the z-normalised Euclidean
distance to its nearest non-trivial neighbour; anomalies ("discords") are the
subsequences with the *largest* profile values.

The implementation uses the MASS/STOMP idea of computing all sliding dot
products with the FFT, so one profile costs ``O(n^2)`` distance updates but
only ``O(n log n)`` work per query row — fast enough for the corpus sizes the
benchmarks use while remaining a faithful, exact MP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import InvalidParameterError

__all__ = ["MatrixProfileResult", "matrix_profile", "top_discord", "sliding_window_stats"]


@dataclass
class MatrixProfileResult:
    """Matrix profile values and nearest-neighbour indices."""

    profile: np.ndarray
    indices: np.ndarray
    window: int

    def discord_index(self) -> int:
        """Start index of the subsequence with the largest profile value."""
        return int(np.argmax(self.profile))


def sliding_window_stats(values: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean and standard deviation of every length-``window`` subsequence."""
    cumulative = np.concatenate(([0.0], np.cumsum(values)))
    cumulative_sq = np.concatenate(([0.0], np.cumsum(values * values)))
    count = float(window)
    sums = cumulative[window:] - cumulative[:-window]
    sums_sq = cumulative_sq[window:] - cumulative_sq[:-window]
    means = sums / count
    variances = np.maximum(sums_sq / count - means * means, 0.0)
    return means, np.sqrt(variances)


def _sliding_dot_products(query: np.ndarray, values: np.ndarray,
                          values_fft: np.ndarray | None = None,
                          padded_size: int | None = None) -> np.ndarray:
    """All dot products of ``query`` with every window of ``values`` (MASS).

    ``values_fft`` / ``padded_size`` allow the caller to reuse the FFT of the
    full series across queries (the self-join computes one per query row
    otherwise, doubling the cost).
    """
    n = values.size
    m = query.size
    if padded_size is None:
        padded_size = int(2 ** np.ceil(np.log2(n + m)))
    if values_fft is None:
        values_fft = np.fft.rfft(values, padded_size)
    query_fft = np.fft.rfft(query[::-1], padded_size)
    product = np.fft.irfft(values_fft * query_fft, padded_size)
    return product[m - 1:n]


def matrix_profile(values, window: int, *, exclusion: int | None = None
                   ) -> MatrixProfileResult:
    """Exact self-join matrix profile with z-normalised Euclidean distance.

    Parameters
    ----------
    values:
        Input series.
    window:
        Subsequence length ``m``.
    exclusion:
        Trivial-match exclusion zone around each query (default ``m // 2``).
    """
    values = as_float_array(values)
    window = check_positive_int(window, "window")
    n = values.size
    if window < 3 or window > n // 2:
        raise InvalidParameterError(
            f"window must be in [3, n/2] = [3, {n // 2}], got {window}")
    if exclusion is None:
        exclusion = max(window // 2, 1)
    num_subsequences = n - window + 1
    means, stds = sliding_window_stats(values, window)
    stds = np.where(stds < 1e-12, 1e-12, stds)

    profile = np.full(num_subsequences, np.inf)
    indices = np.zeros(num_subsequences, dtype=np.int64)

    padded_size = int(2 ** np.ceil(np.log2(n + window)))
    values_fft = np.fft.rfft(values, padded_size)

    for query_index in range(num_subsequences):
        query = values[query_index:query_index + window]
        dot_products = _sliding_dot_products(query, values, values_fft, padded_size)
        # z-normalised distance from the dot products.
        numerator = dot_products - window * means[query_index] * means
        denominator = window * stds[query_index] * stds
        correlation = np.clip(numerator / denominator, -1.0, 1.0)
        distances = np.sqrt(np.maximum(2.0 * window * (1.0 - correlation), 0.0))
        # Exclude trivial matches around the query itself.
        low = max(0, query_index - exclusion)
        high = min(num_subsequences, query_index + exclusion + 1)
        distances[low:high] = np.inf
        nearest = int(np.argmin(distances))
        if distances[nearest] < profile[query_index]:
            profile[query_index] = float(distances[nearest])
            indices[query_index] = nearest
    return MatrixProfileResult(profile=profile, indices=indices, window=window)


def top_discord(values, window_range: tuple[int, int] | int, *,
                exclusion: int | None = None) -> tuple[int, float, int]:
    """Best discord over a window (or range of windows), paper protocol.

    The paper detects discords with segment sizes ranging from 75 to 125 and
    keeps the one with the maximum nearest-neighbour distance.  Returns
    ``(start_index, distance, window)``.
    """
    if isinstance(window_range, int):
        windows = [window_range]
    else:
        low, high = window_range
        step = max((high - low) // 4, 1)
        windows = list(range(low, high + 1, step))
    best = (-1, -np.inf, 0)
    for window in windows:
        try:
            result = matrix_profile(values, window, exclusion=exclusion)
        except InvalidParameterError:
            continue
        index = result.discord_index()
        distance = float(result.profile[index] / np.sqrt(window))
        if distance > best[1]:
            best = (index, distance, window)
    if best[0] < 0:
        raise InvalidParameterError("no valid window produced a matrix profile")
    return best
