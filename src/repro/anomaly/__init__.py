"""Anomaly-detection substrate: Matrix Profile, irregular MP, UCR scoring."""

from .imp import (
    IrregularProfileResult,
    irregular_matrix_profile,
    regular_matrix_profile_naive,
)
from .matrix_profile import (
    MatrixProfileResult,
    matrix_profile,
    sliding_window_stats,
    top_discord,
)
from .ucr import DetectionOutcome, detect_discord, ucr_score

__all__ = [
    "MatrixProfileResult",
    "matrix_profile",
    "top_discord",
    "sliding_window_stats",
    "IrregularProfileResult",
    "irregular_matrix_profile",
    "regular_matrix_profile_naive",
    "DetectionOutcome",
    "detect_discord",
    "ucr_score",
]
