"""UCR-style anomaly-detection scoring.

The UCR anomaly archive scores a detector by whether its reported location
falls within a tolerance (±100 points) of the labelled anomaly region; the
archive-level score is the fraction of series solved.  The helpers here apply
that protocol to the synthetic corpus from
:mod:`repro.data.anomaly_corpus` so the Figure 13 (left) experiment can be
reproduced end to end: compress → decompress → detect discord → score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..data.anomaly_corpus import AnomalyCase
from .matrix_profile import top_discord

__all__ = ["DetectionOutcome", "detect_discord", "ucr_score"]


@dataclass
class DetectionOutcome:
    """Per-case detection result."""

    case_name: str
    detected_index: int
    hit: bool
    details: dict = field(default_factory=dict)


def detect_discord(values: np.ndarray, *, window_range: tuple[int, int] = (75, 125)
                   ) -> int:
    """Paper protocol: best discord over segment sizes 75..125.

    Returns the start index of the detected anomaly (centre of the discord
    window).
    """
    index, _distance, window = top_discord(values, window_range)
    return int(index + window // 2)


def ucr_score(cases: Sequence[AnomalyCase],
              series_provider: Callable[[AnomalyCase], np.ndarray] | None = None, *,
              tolerance: int = 100,
              window_range: tuple[int, int] = (75, 125)) -> tuple[float, list[DetectionOutcome]]:
    """Fraction of corpus cases whose anomaly is located within ``tolerance``.

    Parameters
    ----------
    cases:
        The labelled corpus.
    series_provider:
        Optional callable mapping a case to the series the detector should
        run on (e.g. the decompressed reconstruction).  Defaults to the raw
        values.
    tolerance:
        UCR hit tolerance in points.
    window_range:
        Discord window range passed to the detector.

    Returns
    -------
    (score, outcomes):
        ``score`` is the fraction of hits; ``outcomes`` carries per-case
        detail for reporting.
    """
    outcomes: list[DetectionOutcome] = []
    hits = 0
    for case in cases:
        values = case.values if series_provider is None else series_provider(case)
        detected = detect_discord(np.asarray(values, dtype=np.float64),
                                  window_range=window_range)
        hit = case.is_hit(detected, tolerance=tolerance)
        hits += int(hit)
        outcomes.append(DetectionOutcome(
            case_name=case.name, detected_index=detected, hit=hit,
            details={"kind": case.kind, "anomaly_start": case.anomaly_start,
                     "anomaly_end": case.anomaly_end}))
    score = hits / len(cases) if cases else 0.0
    return float(score), outcomes
