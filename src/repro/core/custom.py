"""Generic statistic tracking for user-provided statistical descriptors.

:class:`repro.core.tracker.StatisticTracker` maintains the ACF/PACF through
the paper's incremental aggregates (Equations 7-11), which is why CAMEO can
re-evaluate the constraint in O(L) per removal.  Arbitrary user statistics do
not come with such update rules, so :class:`GenericStatisticTracker` instead
keeps the current reconstruction explicitly and re-evaluates the statistic on
a hypothetically modified copy for every preview.

This trades the O(L) incremental update for an O(cost(S)) recomputation per
candidate — acceptable for moderate series lengths and the price of full
generality.  The tracker exposes the exact same interface the compressor
uses for the built-in statistics, so :class:`repro.core.compressor.
CameoCompressor` accepts either a statistic name (fast path) or a
:class:`repro.stats.descriptors.Statistic` instance (this tracker).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..stats.descriptors import Statistic, TumblingAggregateStatistic
from .impact import initial_interpolation_deltas, metric_rowwise

__all__ = ["GenericStatisticTracker"]


class GenericStatisticTracker:
    """Tracks an arbitrary :class:`Statistic` of the current reconstruction.

    Parameters
    ----------
    values:
        The original series (``float64`` array).
    statistic:
        Any :class:`repro.stats.descriptors.Statistic`.
    agg_window / agg:
        When ``agg_window > 1`` the statistic is evaluated on tumbling-window
        aggregates of the reconstruction (Definition 2 generalised), by
        wrapping ``statistic`` in a
        :class:`repro.stats.descriptors.TumblingAggregateStatistic`.
    """

    def __init__(self, values: np.ndarray, statistic: Statistic, *,
                 agg_window: int = 1, agg: str = "mean"):
        if not isinstance(statistic, Statistic):
            raise InvalidParameterError(
                "statistic must be a repro.stats.descriptors.Statistic instance")
        if agg_window < 1:
            raise InvalidParameterError("agg_window must be >= 1")
        if agg_window > 1:
            statistic = TumblingAggregateStatistic(statistic, agg_window, agg)
        self._statistic = statistic
        self._agg_window = int(agg_window)
        self._current = np.array(values, dtype=np.float64, copy=True)
        self._reference = statistic.compute(self._current)
        self._cached = self._reference.copy()

    # ------------------------------------------------------------------ #
    # properties (mirror StatisticTracker)
    # ------------------------------------------------------------------ #
    @property
    def statistic(self) -> str:
        """Name of the tracked statistic."""
        return self._statistic.name

    @property
    def statistic_object(self) -> Statistic:
        """The tracked :class:`Statistic` instance."""
        return self._statistic

    @property
    def agg_window(self) -> int:
        """Tumbling-window size (1 = statistic on the raw reconstruction)."""
        return self._agg_window

    @property
    def reference(self) -> np.ndarray:
        """Statistic of the original, uncompressed series."""
        return self._reference

    @property
    def max_lag(self) -> int:
        """Length of the tracked feature vector (for reporting only)."""
        return int(self._reference.size)

    @property
    def current_values(self) -> np.ndarray:
        """Current reconstructed raw series (do not mutate)."""
        return self._current

    # ------------------------------------------------------------------ #
    # statistic evaluation
    # ------------------------------------------------------------------ #
    def current_statistic(self) -> np.ndarray:
        """Statistic of the current reconstructed series."""
        return self._cached

    def preview(self, start: int, deltas) -> np.ndarray:
        """Statistic after hypothetically changing ``[start, start+len)`` by ``deltas``."""
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return self._cached
        stop = int(start) + deltas.size
        original_slice = self._current[start:stop].copy()
        try:
            self._current[start:stop] += deltas
            return self._statistic.compute(self._current)
        finally:
            self._current[start:stop] = original_slice

    def apply(self, start: int, deltas) -> None:
        """Commit a contiguous change to the tracked reconstruction."""
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return
        stop = int(start) + deltas.size
        self._current[start:stop] += deltas
        self._cached = self._statistic.compute(self._current)

    def deviation(self, metric, statistic_vector: np.ndarray) -> float:
        """Deviation ``D(reference, statistic_vector)``."""
        return float(metric_rowwise(metric, self._reference, statistic_vector)[0])

    # ------------------------------------------------------------------ #
    # batched impacts
    # ------------------------------------------------------------------ #
    def batch_impacts(self, changes: list[tuple[int, np.ndarray]], metric) -> np.ndarray:
        """Impact of several independent hypothetical contiguous changes."""
        impacts = np.empty(len(changes), dtype=np.float64)
        current_deviation: float | None = None
        for index, (start, deltas) in enumerate(changes):
            deltas = np.asarray(deltas, dtype=np.float64)
            if deltas.size == 0:
                if current_deviation is None:
                    current_deviation = self.deviation(metric, self._cached)
                impacts[index] = current_deviation
                continue
            impacts[index] = self.deviation(metric, self.preview(int(start), deltas))
        return impacts

    def batch_impacts_segments(self, starts, lengths, positions, deltas, metric
                               ) -> np.ndarray:
        """Concatenated-segment variant of :meth:`batch_impacts`.

        Generic statistics have no incremental form, so each segment is
        previewed individually; the signature matches
        :meth:`repro.core.tracker.StatisticTracker.batch_impacts_segments`.
        """
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float64)
        impacts = np.empty(lengths.size, dtype=np.float64)
        current_deviation: float | None = None
        offset = 0
        for index in range(lengths.size):
            length = int(lengths[index])
            if length == 0:
                if current_deviation is None:
                    current_deviation = self.deviation(metric, self._cached)
                impacts[index] = current_deviation
                continue
            segment = deltas[offset:offset + length]
            offset += length
            impacts[index] = self.deviation(
                metric, self.preview(int(starts[index]), segment))
        return impacts

    def initial_impacts(self, metric) -> tuple[np.ndarray, np.ndarray]:
        """Impact of removing each interior point in isolation (Algorithm 2)."""
        positions, deltas = initial_interpolation_deltas(self._current)
        if positions.size == 0:
            return positions, np.empty(0, dtype=np.float64)
        impacts = np.empty(positions.size, dtype=np.float64)
        for index, (position, delta) in enumerate(zip(positions, deltas)):
            impacts[index] = self.deviation(
                metric, self.preview(int(position), np.asarray([delta])))
        return positions, impacts
