"""Blocking-neighbourhood sizing (paper Section 4.3 and Figure 9).

After removing a point, only the impacts of the ``h`` nearest surviving
neighbours are refreshed.  The paper explores ``h`` between ``log n`` and
``n/2`` and settles on small multiples of ``log n`` as the sweet spot.  This
module turns a user-friendly specification (string, integer, or callable)
into a concrete hop count for a given series length.
"""

from __future__ import annotations

import math
import re
from typing import Callable

from ..exceptions import InvalidParameterError

__all__ = ["resolve_blocking_hops", "BLOCKING_PRESETS"]

#: Named presets accepted by :func:`resolve_blocking_hops`.
BLOCKING_PRESETS = ("logn", "sqrt", "half", "all", "none")

_MULTIPLE_PATTERN = re.compile(r"^(\d+(?:\.\d+)?)\s*\*?\s*log\s*n?$")


def resolve_blocking_hops(spec, n: int) -> int:
    """Resolve a blocking specification into a hop count for length ``n``.

    Accepted specifications
    -----------------------
    ``int``            a fixed hop count (must be >= 1)
    ``callable``       ``spec(n) -> int``
    ``"logn"``         ``ceil(log2 n)``
    ``"5logn"``        any ``<k>logn`` multiple, e.g. ``"3logn"``, ``"10logn"``
    ``"sqrt"``         ``ceil(sqrt n)``
    ``"half"``         ``n // 2`` (brute force reference from Figure 9)
    ``"all"`` / ``"none"`` / ``None``  update every point (no blocking)
    """
    if n < 2:
        raise InvalidParameterError("series length must be at least 2")
    if spec is None:
        return n
    if callable(spec):
        hops = int(spec(n))
        if hops < 1:
            raise InvalidParameterError("blocking callable must return >= 1")
        return hops
    if isinstance(spec, bool):
        raise InvalidParameterError("blocking must not be a boolean")
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        hops = int(spec)
        if hops < 1:
            raise InvalidParameterError("blocking hop count must be >= 1")
        return hops
    if isinstance(spec, str):
        text = spec.strip().lower().replace(" ", "")
        if text in ("all", "none"):
            return n
        if text == "half":
            return max(1, n // 2)
        if text == "sqrt":
            return max(1, math.ceil(math.sqrt(n)))
        if text in ("logn", "log"):
            return max(1, math.ceil(math.log2(max(n, 2))))
        match = _MULTIPLE_PATTERN.match(text)
        if match:
            factor = float(match.group(1))
            return max(1, math.ceil(factor * math.log2(max(n, 2))))
    raise InvalidParameterError(
        f"invalid blocking specification {spec!r}; use an int, a callable, or one of "
        f"{BLOCKING_PRESETS} / '<k>logn'"
    )
