"""The CAMEO compressor (paper Section 4, Algorithm 1).

CAMEO greedily removes the point whose removal (followed by linear
re-interpolation) perturbs the tracked statistic — the ACF or PACF of the
series or of its tumbling-window aggregates — the least, until either the
user-provided deviation bound ``epsilon`` would be violated (Definition 1/2)
or a target compression ratio is reached (Definition 3).

The implementation follows the paper's structure:

* ``ExtractAggregates`` / ``GetACF``  →  :class:`repro.core.tracker.StatisticTracker`
* ``GetAllImpact`` (Algorithm 2)      →  ``StatisticTracker.initial_impacts``
* the min-heap of impacts             →  :class:`repro.core.heap.IndexedMinHeap`
* ``ReHeap`` over the blocking
  neighbourhood (Section 4.3)         →  :meth:`CameoCompressor._reheap_neighbours`

Speculative multi-pop previews (``batch_size`` > 1, the default)
----------------------------------------------------------------
The paper's loop evaluates exactly one candidate preview per iteration.
This implementation previews the upcoming pops *speculatively* inside the
ReHeap's batched statistic pass, so the scalar per-pop preview disappears
from the steady state:

* every ReHeap key is the candidate's exact deviation against the state it
  was computed on; a per-item version stamp marks it *fresh* until the next
  removal mutates the tracked state, and a popped candidate with a fresh
  key reuses it as its preview deviation outright;
* alongside the blocking neighbourhood, the ``batch_size - 1`` cheapest
  in-heap candidates (one non-destructive ``peek_many``) ride the same
  batched kernel call; their deviations are cached and used when they are
  popped before the next acceptance invalidates them;
* a speculative value is discarded the moment an acceptance bumps the
  state version — the decision then falls back to the scalar preview, so
  the kept-point set matches the sequential loop (``batch_size=1``, the
  exact pre-speculation code path) on every tested configuration.

With ``on_violation="skip"`` the loop additionally drains rejections in
``pop_many`` batches, re-pushing the unconsumed remainder on acceptance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import as_float_array, check_lag
from ..data.timeseries import IrregularSeries, TimeSeries
from ..exceptions import InvalidParameterError
from ..stats.descriptors import Statistic
from .blocking import resolve_blocking_hops
from .custom import GenericStatisticTracker
from .heap import IndexedMinHeap, make_heap
from .impact import (
    resolve_rowwise_metric,
    segment_interpolation_deltas,
    segment_interpolation_deltas_batched,
)
from .neighbors import NeighborList
from .tracker import StatisticTracker

__all__ = ["CameoCompressor", "CompressionStats", "cameo_compress"]

#: Heap key assigned to the (non-removable) boundary points.
_INFINITE_IMPACT = float("inf")

#: Speculative batch size used for ``batch_size="auto"``: the accepted
#: candidate plus 7 peeked pops per batched statistic pass.
DEFAULT_SPECULATIVE_BATCH = 8


@dataclass
class CompressionStats:
    """Run statistics attached to every compression result."""

    iterations: int = 0
    removed_points: int = 0
    kept_points: int = 0
    achieved_deviation: float = 0.0
    stopped_by: str = "heap-exhausted"
    elapsed_seconds: float = 0.0
    reheap_updates: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view (stored in the result's metadata)."""
        return {
            "iterations": self.iterations,
            "removed_points": self.removed_points,
            "kept_points": self.kept_points,
            "achieved_deviation": self.achieved_deviation,
            "stopped_by": self.stopped_by,
            "elapsed_seconds": self.elapsed_seconds,
            "reheap_updates": self.reheap_updates,
            **self.extra,
        }


class CameoCompressor:
    """Autocorrelation-preserving lossy compressor.

    Parameters
    ----------
    max_lag:
        Number of lags ``L`` of the preserved ACF/PACF.
    epsilon:
        Maximum allowed deviation ``D(S(X), S(X'))``.  May be ``None`` when a
        ``target_ratio`` is given (compression-centric mode, Definition 3).
    metric:
        Deviation measure ``D`` — a registered metric name (``"mae"``,
        ``"cheb"``, ``"rmse"``, ...) or a callable ``(reference, candidate)
        -> float``.  The paper's default is MAE.
    statistic:
        ``"acf"`` (default), ``"pacf"``, or any
        :class:`repro.stats.descriptors.Statistic` instance.  Statistic names
        use the paper's incremental aggregate maintenance; Statistic objects
        are tracked through the (slower but fully general)
        :class:`repro.core.custom.GenericStatisticTracker`.
    agg_window:
        Tumbling-window size ``kappa``; values > 1 preserve the statistic of
        the window aggregates (Definition 2).
    agg:
        Aggregation function for ``agg_window > 1``: ``"mean"`` (default),
        ``"sum"``, ``"max"``, ``"min"``.
    blocking:
        Blocking-neighbourhood specification (see
        :func:`repro.core.blocking.resolve_blocking_hops`); default
        ``"5logn"``.  For aggregated statistics the hop count is additionally
        multiplied by ``blocking_window_scale`` so the neighbourhood covers
        several aggregation windows, following the paper's Section 5.4.
    blocking_window_scale:
        Multiplier applied to the hop count when ``agg_window > 1``.
        ``None`` (default) uses ``min(agg_window, 2)`` — the paper multiplies
        by the full window size, which its Cython kernels make affordable;
        the capped default keeps the pure-Python inner loop tractable while
        still spanning multiple windows (the error bound itself is always
        enforced exactly regardless of this setting).
    target_ratio:
        Stop once ``n / n'`` reaches this ratio (Definition 3).  When both
        ``epsilon`` and ``target_ratio`` are given, whichever is hit first
        stops the compression.
    on_violation:
        ``"stop"`` (paper behaviour: terminate at the first candidate whose
        removal would violate ``epsilon``) or ``"skip"`` (leave that point in
        place, keep trying others until the heap runs dry).
    min_keep:
        Never remove points below this count (defaults to 2: the endpoints).
    batch_size:
        Speculative multi-pop preview width.  ``"auto"`` (default) uses
        :data:`DEFAULT_SPECULATIVE_BATCH`; an explicit integer sets how many
        upcoming pops are previewed per batched statistic pass (the popped
        candidate plus ``batch_size - 1`` peeked ones).  ``1`` disables
        speculation entirely and runs the exact pre-speculation sequential
        loop — the escape hatch the regression tests compare against.
    """

    def __init__(self, max_lag: int, epsilon: float | None = 0.01, *,
                 metric="mae", statistic: str = "acf", agg_window: int = 1,
                 agg: str = "mean", blocking="5logn", blocking_window_scale: int | None = None,
                 target_ratio: float | None = None,
                 on_violation: str = "stop", min_keep: int = 2,
                 batch_size: int | str = "auto"):
        if epsilon is None and target_ratio is None:
            raise InvalidParameterError(
                "provide an epsilon (error-bounded mode) and/or a target_ratio "
                "(compression-centric mode)")
        if epsilon is not None and epsilon < 0:
            raise InvalidParameterError("epsilon must be >= 0")
        if target_ratio is not None and target_ratio < 1.0:
            raise InvalidParameterError("target_ratio must be >= 1")
        if on_violation not in ("stop", "skip"):
            raise InvalidParameterError("on_violation must be 'stop' or 'skip'")
        if min_keep < 2:
            raise InvalidParameterError("min_keep must be at least 2")
        self.max_lag = int(max_lag)
        self.epsilon = epsilon
        self.metric = metric
        self.statistic = statistic
        self.agg_window = int(agg_window)
        self.agg = agg
        self.blocking = blocking
        if blocking_window_scale is not None and blocking_window_scale < 1:
            raise InvalidParameterError("blocking_window_scale must be >= 1")
        self.blocking_window_scale = blocking_window_scale
        self.target_ratio = target_ratio
        self.on_violation = on_violation
        self.min_keep = int(min_keep)
        if batch_size != "auto":
            batch_size = int(batch_size)
            if batch_size < 1:
                raise InvalidParameterError("batch_size must be >= 1 or 'auto'")
        self.batch_size = batch_size
        # Speculation state; populated per run by _run().
        self._spec_enabled = False
        self._spec_peek = 0
        self._state_version = 0
        self._key_version: np.ndarray | None = None
        self._spec_version: np.ndarray | None = None
        self._spec_deviation: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compress(self, series) -> IrregularSeries:
        """Compress a series and return the retained points.

        ``series`` may be a plain array-like or a
        :class:`repro.data.timeseries.TimeSeries`.
        """
        name = "series"
        if isinstance(series, TimeSeries):
            name = series.name
            values = series.values
        else:
            values = series
        values = as_float_array(values, name="series")
        n = values.size
        start_time = time.perf_counter()

        if n < 4 or n <= self.min_keep:
            # Nothing can be removed; return the identity representation.
            stats = CompressionStats(kept_points=n, stopped_by="too-short",
                                     elapsed_seconds=time.perf_counter() - start_time)
            return self._build_result(values, np.ones(n, dtype=bool), name, stats, None)

        if isinstance(self.statistic, Statistic):
            tracker: StatisticTracker | GenericStatisticTracker = GenericStatisticTracker(
                values, self.statistic, agg_window=self.agg_window, agg=self.agg)
        else:
            effective_lag = self._effective_max_lag(n)
            tracker = StatisticTracker(values, effective_lag, statistic=self.statistic,
                                       agg_window=self.agg_window, agg=self.agg)
        hops = resolve_blocking_hops(self.blocking, n)
        if self.agg_window > 1:
            scale = (self.blocking_window_scale if self.blocking_window_scale is not None
                     else min(self.agg_window, 2))
            hops *= int(scale)
        stats = self._run(values, tracker, hops)
        stats.elapsed_seconds = time.perf_counter() - start_time
        return self._build_result(values, self._alive_mask, name, stats, tracker)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def _resolve_batch_size(self) -> int:
        if self.batch_size == "auto":
            return DEFAULT_SPECULATIVE_BATCH
        return int(self.batch_size)

    def _run(self, values: np.ndarray, tracker: StatisticTracker, hops: int
             ) -> CompressionStats:
        n = values.size
        neighbours = NeighborList(n)
        # make_heap resolves the kernel tier: the native heap when the
        # compiled tier is active, the hybrid list heap otherwise.  Both
        # evolve identical slot layouts, so pop order cannot change.
        heap = make_heap(n)
        # Resolve the deviation metric once per run; every inner-loop call
        # takes the pre-resolved object instead of re-dispatching on the name.
        metric = resolve_rowwise_metric(self.metric)
        positions, impacts = tracker.initial_impacts(metric)
        heap.heapify(positions, impacts)

        batch_size = self._resolve_batch_size()
        speculate = self._spec_enabled = batch_size > 1
        if speculate:
            # Initial impacts are exact deviations against the initial state:
            # every heapified key starts out fresh at version 0.
            self._state_version = 0
            self._key_version = np.zeros(n, dtype=np.int64)
            self._spec_version = np.full(n, -1, dtype=np.int64)
            self._spec_deviation = np.empty(n, dtype=np.float64)
            self._member_scratch = np.zeros(n, dtype=bool)
            # Peeked speculative previews ride the vectorized ReHeap kernel;
            # the generic tracker previews segments one by one, so peeking
            # would cost more scalar previews than it saves.
            self._spec_peek = (batch_size - 1
                               if isinstance(tracker, StatisticTracker) else 0)
        else:
            self._spec_peek = 0

        stats = CompressionStats(kept_points=n)
        kept = n
        max_removable = n - max(self.min_keep, 2)
        target_kept = None
        if self.target_ratio is not None:
            target_kept = max(int(np.ceil(n / self.target_ratio)), self.min_keep, 2)
        fresh_hits = spec_hits = preview_evals = 0
        # With on_violation="skip" and an error bound, long rejection runs
        # drain the heap; pop_many consumes them in batches and the
        # unconsumed remainder is re-pushed on the first acceptance.
        drain = (speculate and self.on_violation == "skip"
                 and self.epsilon is not None)

        # Per-pop bookkeeping runs ~10^4 times per series; hoisting the
        # attribute lookups and method binds out of the loop shaves the
        # interpreter's LOAD_ATTR/LOAD_GLOBAL traffic without touching any
        # arithmetic (results are bit-identical to the unhoisted loop).
        epsilon = self.epsilon
        stop_on_violation = self.on_violation == "stop"
        heap_pop = heap.pop
        # Bound lazily: only the drain path uses the bulk heap ops, and the
        # perf harness swaps in a reference heap that does not provide them.
        heap_pop_many = heap.pop_many if drain else None
        heap_push_many = heap.push_many if drain else None
        left_of = neighbours.left_of
        right_of = neighbours.right_of
        neighbours_remove = neighbours.remove
        tracker_preview = tracker.preview
        tracker_apply = tracker.apply
        tracker_deviation = tracker.deviation
        current_values = tracker.current_values  # stable, mutated in place
        reheap_neighbours = self._reheap_neighbours
        deltas_of_gap = segment_interpolation_deltas
        key_version = self._key_version
        spec_version = self._spec_version
        spec_deviation = self._spec_deviation
        iterations = removed_points = reheap_updates = 0
        achieved_deviation = 0.0

        done = False
        while heap and not done:
            if drain:
                batch_items, batch_keys = heap_pop_many(batch_size)
                queue = list(zip(batch_items.tolist(), batch_keys.tolist()))
            else:
                queue = (heap_pop(),)
            for consumed, (candidate, key) in enumerate(queue):
                iterations += 1
                change_start, change_deltas = deltas_of_gap(
                    current_values, left_of(candidate), right_of(candidate))
                if change_deltas.size == 0:
                    # Removing the point does not change the reconstruction at
                    # all (e.g. it already lies on the interpolation line).
                    deviation = achieved_deviation
                elif speculate and key_version[candidate] == self._state_version:
                    # The heap key was computed against the current state and
                    # neighbourhood — it *is* the preview deviation.
                    deviation = key
                    fresh_hits += 1
                elif speculate and spec_version[candidate] == self._state_version:
                    deviation = float(spec_deviation[candidate])
                    spec_hits += 1
                else:
                    new_statistic = tracker_preview(change_start, change_deltas)
                    deviation = tracker_deviation(metric, new_statistic)
                    preview_evals += 1

                if epsilon is not None and deviation >= epsilon:
                    if stop_on_violation:
                        stats.stopped_by = "error-bound"
                        done = True
                        break
                    # ``skip``: permanently leave this point in place.  The
                    # state is untouched, so the remaining speculative batch
                    # stays valid.
                    continue

                # Commit the removal.
                if change_deltas.size:
                    tracker_apply(change_start, change_deltas)
                neighbours_remove(candidate)
                kept -= 1
                removed_points += 1
                achieved_deviation = deviation
                if speculate:
                    # Any removal invalidates every outstanding speculative
                    # preview (the tracked state and/or a neighbourhood
                    # changed); bumping the version discards them all.
                    self._state_version += 1

                if removed_points >= max_removable:
                    stats.stopped_by = "min-keep"
                    done = True
                    break
                if target_kept is not None and kept <= target_kept:
                    stats.stopped_by = "target-ratio"
                    done = True
                    break

                remainder = queue[consumed + 1:]
                if remainder:
                    heap_push_many(
                        np.fromiter((item for item, _key in remainder),
                                    dtype=np.int64, count=len(remainder)),
                        np.fromiter((key for _item, key in remainder),
                                    dtype=np.float64, count=len(remainder)))
                reheap_updates += reheap_neighbours(
                    tracker, neighbours, heap, candidate, hops, metric)
                break

        stats.iterations = iterations
        stats.removed_points = removed_points
        stats.achieved_deviation = achieved_deviation
        stats.reheap_updates = reheap_updates
        stats.kept_points = kept
        if speculate:
            stats.extra["preview_reuse"] = {
                "fresh_key_hits": fresh_hits,
                "speculative_hits": spec_hits,
                "scalar_previews": preview_evals,
            }
        stats.extra["batch_size"] = batch_size
        self._alive_mask = neighbours.alive_mask()
        return stats

    def _reheap_neighbours(self, tracker: StatisticTracker, neighbours: NeighborList,
                           heap: IndexedMinHeap, removed: int, hops: int,
                           metric=None) -> int:
        """Refresh the impacts of surviving points near ``removed``.

        Fused pipeline: the surviving neighbourhood is collected once (one
        windowed gather over the alive mask), the in-heap filter is a
        vectorized mask query, all neighbour segment deltas are computed in
        a single batched pass, their impacts in one vectorized kernel call,
        and the heap keys in one ``update_many``.

        When speculation is on, the ``batch_size - 1`` cheapest in-heap
        candidates (peeked non-destructively) join the same kernel call:
        their deviations are cached — *not* written to the heap, which would
        perturb the pop order — and reused if they are popped before the
        next acceptance.
        """
        if metric is None:
            metric = resolve_rowwise_metric(self.metric)
        candidates = neighbours.hops_array(removed, hops)
        if candidates.size:
            candidates = candidates[heap.contains_mask(candidates)]
        spec_items = None
        if self._spec_peek and len(heap):
            peeked, _peek_keys = heap.peek_many(self._spec_peek)
            if candidates.size:
                # Membership test via a reusable boolean scratch (np.isin
                # costs ~25x as much at these sizes).
                member = self._member_scratch
                member[candidates] = True
                peeked = peeked[~member[peeked]]
                member[candidates] = False
            if peeked.size:
                spec_items = peeked
        if candidates.size == 0 and spec_items is None:
            return 0
        if spec_items is None:
            combined = candidates
        elif candidates.size == 0:
            combined = spec_items
        else:
            combined = np.concatenate((candidates, spec_items))
        lefts, rights = neighbours.gaps_of(combined)
        starts, lengths, positions, deltas = segment_interpolation_deltas_batched(
            tracker.current_values, lefts, rights)
        impacts = tracker.batch_impacts_segments(starts, lengths, positions,
                                                 deltas, metric)
        refreshed = int(candidates.size)
        if refreshed:
            heap.update_many(candidates, impacts[:refreshed])
            if self._spec_enabled:
                self._key_version[candidates] = self._state_version
        if spec_items is not None:
            self._spec_deviation[spec_items] = impacts[refreshed:]
            self._spec_version[spec_items] = self._state_version
        return refreshed

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _effective_max_lag(self, n: int) -> int:
        """Clamp ``max_lag`` so it is valid for the tracked series length."""
        tracked_length = n if self.agg_window == 1 else n // self.agg_window
        if tracked_length < 3:
            raise InvalidParameterError(
                f"series too short ({n} points) for agg_window={self.agg_window}")
        lag = min(self.max_lag, tracked_length - 1)
        return check_lag(lag, tracked_length)

    def _build_result(self, values: np.ndarray, alive: np.ndarray, name: str,
                      stats: CompressionStats, tracker: StatisticTracker | None
                      ) -> IrregularSeries:
        indices = np.flatnonzero(alive)
        metadata = {
            "compressor": "CAMEO",
            "statistic": (self.statistic if isinstance(self.statistic, str)
                          else self.statistic.name),
            "metric": self.metric if isinstance(self.metric, str) else getattr(
                self.metric, "__name__", "custom"),
            "epsilon": self.epsilon,
            "target_ratio": self.target_ratio,
            "max_lag": self.max_lag,
            "agg_window": self.agg_window,
            "agg": self.agg,
            "blocking": self.blocking,
            **stats.as_dict(),
        }
        if tracker is not None:
            metadata["reference_statistic"] = tracker.reference.tolist()
        return IrregularSeries(indices=indices, values=values[indices],
                               original_length=values.size,
                               name=f"cameo({name})", metadata=metadata)


def cameo_compress(series, max_lag: int, epsilon: float | None = 0.01, **kwargs
                   ) -> IrregularSeries:
    """Compress a series with CAMEO (functional convenience wrapper).

    Greedily removes the points whose linear re-interpolation perturbs the
    tracked statistic (ACF by default, PACF with ``statistic="pacf"``) the
    least, until removing any further point would violate ``epsilon``.

    Parameters
    ----------
    series:
        1-D array-like or :class:`repro.data.timeseries.TimeSeries`.
    max_lag:
        Number of lags ``L`` of the preserved statistic.
    epsilon:
        Maximum allowed statistic deviation (``None`` with a
        ``target_ratio`` for compression-centric mode).
    **kwargs:
        Every :class:`CameoCompressor` option: ``metric``, ``statistic``,
        ``agg_window``, ``agg``, ``blocking``, ``target_ratio``,
        ``on_violation``, ``min_keep``, ``batch_size``.

    Returns
    -------
    repro.data.timeseries.IrregularSeries
        The retained points.  ``metadata`` carries the run statistics
        (``achieved_deviation``, ``stopped_by``, ``kept_points``, ...) and
        the reference statistic; ``decompress()`` rebuilds the full-length
        reconstruction; ``compression_ratio()`` reports ``n / n'``.

    See Also
    --------
    CameoCompressor : the configurable class behind this wrapper.
    repro.codecs.get_codec : the same method behind the unified codec layer.

    Examples
    --------
    >>> from repro import cameo_compress
    >>> import numpy as np
    >>> x = np.sin(np.arange(200) * 2 * np.pi / 20)
    >>> result = cameo_compress(x, max_lag=20, epsilon=0.05)
    >>> result.compression_ratio() > 1.0
    True
    """
    return CameoCompressor(max_lag, epsilon, **kwargs).compress(series)


def compress_multivariate(columns: Sequence, max_lag: int, epsilon: float | None = 0.01,
                          **kwargs) -> list[IrregularSeries]:
    """Compress several univariate series with a shared configuration.

    The paper notes CAMEO extends to multivariate series by preserving the
    ACF of each component; this helper applies the same compressor
    column-by-column and returns the per-column results.
    """
    compressor = CameoCompressor(max_lag, epsilon, **kwargs)
    return [compressor.compress(column) for column in columns]
