"""Indexed binary min-heap with decrease/increase-key support.

CAMEO keeps every removable point in a priority queue ordered by its impact
on the ACF and needs to *update* a point's priority whenever a neighbour is
removed (the ``ReHeap`` operation of Algorithm 1).  A plain ``heapq`` cannot
update entries in place, so this module provides an array-based indexed heap
where items are integers ``0..capacity-1`` and every operation that moves an
entry keeps an item→slot map in sync.

All operations are ``O(log n)`` except :meth:`IndexedMinHeap.heapify`, which
uses Floyd's bottom-up construction in ``O(n)`` — the same construction the
paper credits for the initial heap build.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexedMinHeap"]

_ABSENT = -1


class IndexedMinHeap:
    """Min-heap over integer items with updatable priorities.

    Parameters
    ----------
    capacity:
        Items are integers in ``[0, capacity)``.  Each item can be present at
        most once.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        self._keys = np.empty(capacity, dtype=np.float64)
        self._items = np.empty(capacity, dtype=np.int64)
        self._slot_of = np.full(capacity, _ABSENT, dtype=np.int64)
        self._size = 0

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._capacity and self._slot_of[item] != _ABSENT

    def contains_mask(self, items) -> np.ndarray:
        """Vectorized membership: boolean mask of which ``items`` are present.

        ``items`` must be in ``[0, capacity)``; one NumPy gather replaces a
        Python-level ``item in heap`` per element.
        """
        return self._slot_of[np.asarray(items, dtype=np.int64)] != _ABSENT

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def capacity(self) -> int:
        """Maximum number of distinct items."""
        return self._capacity

    def key_of(self, item: int) -> float:
        """Current priority of ``item`` (raises ``KeyError`` if absent)."""
        slot = self._slot_of[item]
        if slot == _ABSENT:
            raise KeyError(f"item {item} is not in the heap")
        return float(self._keys[slot])

    def peek(self) -> tuple[int, float]:
        """Return ``(item, key)`` of the minimum without removing it."""
        if self._size == 0:
            raise IndexError("peek on an empty heap")
        return int(self._items[0]), float(self._keys[0])

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def heapify(self, items, keys) -> None:
        """Bulk-load ``items`` with ``keys`` using Floyd's method (O(n)).

        Discards any previous content.
        """
        items = np.asarray(items, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.float64)
        if items.shape != keys.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size > self._capacity:
            raise ValueError("more items than heap capacity")
        if items.size and (items.min() < 0 or items.max() >= self._capacity):
            raise ValueError("items out of range")
        if np.unique(items).size != items.size:
            raise ValueError("items must be unique")
        self._slot_of.fill(_ABSENT)
        size = items.size
        self._size = size
        self._items[:size] = items
        self._keys[:size] = keys
        self._slot_of[items] = np.arange(size, dtype=np.int64)
        for slot in range(size // 2 - 1, -1, -1):
            self._sift_down(slot)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def push(self, item: int, key: float) -> None:
        """Insert ``item`` with priority ``key`` (item must be absent)."""
        item = int(item)
        if not 0 <= item < self._capacity:
            raise ValueError(f"item {item} out of range [0, {self._capacity})")
        if self._slot_of[item] != _ABSENT:
            raise ValueError(f"item {item} is already in the heap; use update()")
        slot = self._size
        self._size += 1
        self._items[slot] = item
        self._keys[slot] = key
        self._slot_of[item] = slot
        self._sift_up(slot)

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if self._size == 0:
            raise IndexError("pop from an empty heap")
        item = int(self._items[0])
        key = float(self._keys[0])
        self._remove_slot(0)
        return item, key

    def remove(self, item: int) -> None:
        """Remove ``item`` from the heap (no-op if absent)."""
        slot = self._slot_of[item]
        if slot == _ABSENT:
            return
        self._remove_slot(int(slot))

    def update(self, item: int, key: float) -> None:
        """Change the priority of ``item`` (inserting it if absent)."""
        slot = self._slot_of[item]
        if slot == _ABSENT:
            self.push(item, key)
            return
        slot = int(slot)
        old = self._keys[slot]
        self._keys[slot] = key
        if key < old:
            self._sift_up(slot)
        elif key > old:
            self._sift_down(slot)

    def update_many(self, items, keys) -> None:
        """Change the priorities of many items in one call (push if absent).

        Equivalent to ``update(item, key)`` per pair, in order, but with the
        per-call dispatch hoisted out: the NumPy-backed key/item/slot arrays
        are bound once and the sift loops run inline.
        """
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        heap_keys = self._keys
        heap_items = self._items
        slot_of = self._slot_of
        for item, key in zip(items.tolist(), key_values.tolist()):
            slot = slot_of[item]
            if slot == _ABSENT:
                self.push(item, key)
                continue
            slot = int(slot)
            old = heap_keys[slot]
            heap_keys[slot] = key
            if key < old:
                while slot > 0:
                    parent = (slot - 1) // 2
                    if heap_keys[slot] < heap_keys[parent]:
                        heap_keys[slot], heap_keys[parent] = (heap_keys[parent],
                                                              heap_keys[slot])
                        heap_items[slot], heap_items[parent] = (heap_items[parent],
                                                                heap_items[slot])
                        slot_of[heap_items[slot]] = slot
                        slot_of[heap_items[parent]] = parent
                        slot = parent
                    else:
                        break
            elif key > old:
                size = self._size
                while True:
                    left = 2 * slot + 1
                    right = left + 1
                    smallest = slot
                    if left < size and heap_keys[left] < heap_keys[smallest]:
                        smallest = left
                    if right < size and heap_keys[right] < heap_keys[smallest]:
                        smallest = right
                    if smallest == slot:
                        break
                    heap_keys[slot], heap_keys[smallest] = (heap_keys[smallest],
                                                            heap_keys[slot])
                    heap_items[slot], heap_items[smallest] = (heap_items[smallest],
                                                              heap_items[slot])
                    slot_of[heap_items[slot]] = slot
                    slot_of[heap_items[smallest]] = smallest
                    slot = smallest

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remove_slot(self, slot: int) -> None:
        last = self._size - 1
        removed_item = int(self._items[slot])
        self._slot_of[removed_item] = _ABSENT
        if slot != last:
            self._items[slot] = self._items[last]
            self._keys[slot] = self._keys[last]
            self._slot_of[self._items[slot]] = slot
        self._size = last
        if slot < self._size:
            # The moved entry may need to travel either direction.
            self._sift_down(slot)
            self._sift_up(slot)

    def _swap(self, a: int, b: int) -> None:
        self._items[a], self._items[b] = self._items[b], self._items[a]
        self._keys[a], self._keys[b] = self._keys[b], self._keys[a]
        self._slot_of[self._items[a]] = a
        self._slot_of[self._items[b]] = b

    def _sift_up(self, slot: int) -> None:
        while slot > 0:
            parent = (slot - 1) // 2
            if self._keys[slot] < self._keys[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        size = self._size
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < size and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest

    # ------------------------------------------------------------------ #
    # debugging / testing aids
    # ------------------------------------------------------------------ #
    def items(self) -> np.ndarray:
        """Items currently in the heap (arbitrary order, copy)."""
        return self._items[: self._size].copy()

    def check_invariants(self) -> bool:
        """Verify the heap property and the item→slot map (tests only)."""
        for slot in range(1, self._size):
            parent = (slot - 1) // 2
            if self._keys[parent] > self._keys[slot]:
                return False
        for slot in range(self._size):
            if self._slot_of[self._items[slot]] != slot:
                return False
        return True
