"""Indexed binary min-heap with bulk-update and multi-pop support.

CAMEO keeps every removable point in a priority queue ordered by its impact
on the tracked statistic and needs to *update* a point's priority whenever a
neighbour is removed (the ``ReHeap`` operation of Algorithm 1).  A plain
``heapq`` cannot update entries in place, so this module provides an indexed
heap where items are integers ``0..capacity-1`` and every operation that
moves an entry keeps an item→slot map in sync.

Storage is deliberately hybrid:

* keys and items live in Python lists — the sift loops execute a handful of
  scalar reads/compares per level, and on ndarrays every one of those
  boxes a NumPy scalar (measured at 2-3x the whole list-based sift cost);
* the item→slot map is **also** maintained as an ``int64`` ndarray, which
  makes the bulk queries one gather each: :meth:`IndexedMinHeap.
  contains_mask` (the ReHeap's in-heap filter) and the present/absent
  split inside :meth:`~IndexedMinHeap.update_many`.

``update_many`` batches its housekeeping (validation, the present/absent
partition) vectorized, then picks the cheapest sound repair: when the batch
covers a large fraction of the heap it commits every key and rebuilds by
argsort — a key-sorted slot array is a valid heap, since every parent index
precedes its children — instead of sifting per item; small batches run the
per-item sequential updates whose correctness is unconditional.  (A
concurrent "grouped sift rounds" repair of arbitrary slot sets was
prototyped for this PR and brute-forced to destruction: simultaneous
sift-downs consult stale co-dirty keys and mis-route, so only provably
disjoint or sequential repairs survive here.)

``pop_many``/``peek_many`` serve the compressor's speculative multi-pop:
``peek_many`` walks the top of the heap non-destructively (one small
``heapq`` frontier over slots) to find the ``k`` cheapest entries in pop
order without touching the layout, and ``pop_many`` extracts them.

The pre-bulk list-based heap is preserved verbatim as
:class:`repro._kernels.reference.ReferenceIndexedMinHeap`; property tests
cross-check every operation against it, and the perf harness measures the
bulk speedups against it in the same process.

Error contract shared by scalar and bulk mutations: duplicate items in one
``update_many``/``push_many`` call raise ``ValueError`` (a duplicate would
make the outcome order-dependent); ``update``/``update_many`` on an absent
item pushes it (push-or-update); ``push``/``push_many`` on a present item
raises ``ValueError``.
"""

from __future__ import annotations

import heapq

import numpy as np

from .._kernels import get_native as _get_native

__all__ = ["IndexedMinHeap", "NativeIndexedMinHeap", "make_heap"]

_ABSENT = -1

#: ``update_many`` switches from per-item sifts to the argsort rebuild when
#: the present batch covers at least ``1/_REBUILD_FRACTION`` of the heap.
_REBUILD_FRACTION = 8


class IndexedMinHeap:
    """Min-heap over integer items with updatable priorities.

    Parameters
    ----------
    capacity:
        Items are integers in ``[0, capacity)``.  Each item can be present at
        most once.

    Notes
    -----
    The bulk rebuild inside :meth:`update_many` guarantees the same final
    *contents* — the same (item, key) multiset and a valid heap — as the
    per-item sequence, but may lay the slots out differently.  Pop order is
    identical whenever keys are distinct; exact ties may then resolve in a
    different (still valid) order.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        self._keys: list[float] = []
        self._items: list[int] = []
        self._slot_of = np.full(self._capacity, _ABSENT, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._capacity and self._slot_of[item] != _ABSENT

    def contains_mask(self, items) -> np.ndarray:
        """Vectorized membership: boolean mask of which ``items`` are present.

        ``items`` must be in ``[0, capacity)``; the query is one gather on
        the item→slot array.
        """
        items = np.asarray(items, dtype=np.int64)
        return self._slot_of[items] != _ABSENT

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def capacity(self) -> int:
        """Maximum number of distinct items."""
        return self._capacity

    def key_of(self, item: int) -> float:
        """Current priority of ``item`` (raises ``KeyError`` if absent)."""
        slot = int(self._slot_of[item])
        if slot == _ABSENT:
            raise KeyError(f"item {item} is not in the heap")
        return self._keys[slot]

    def peek(self) -> tuple[int, float]:
        """Return ``(item, key)`` of the minimum without removing it."""
        if not self._items:
            raise IndexError("peek on an empty heap")
        return self._items[0], self._keys[0]

    def peek_many(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` cheapest ``(items, keys)`` in pop order, without removal.

        A non-destructive frontier walk: starting from the root, each step
        yields the cheapest frontier slot and adds its children.  With
        distinct keys the returned order is exactly what ``k`` successive
        :meth:`pop` calls would produce; ties resolve by heap traversal
        order.  Feeds the compressor's speculative multi-pop previews.
        """
        k = min(int(k), len(self._items))
        out_items = np.empty(k, dtype=np.int64)
        out_keys = np.empty(k, dtype=np.float64)
        if k == 0:
            return out_items, out_keys
        keys = self._keys
        items = self._items
        size = len(items)
        frontier: list[tuple[float, int]] = [(keys[0], 0)]
        for index in range(k):
            key, slot = heapq.heappop(frontier)
            out_items[index] = items[slot]
            out_keys[index] = key
            left = 2 * slot + 1
            if left < size:
                heapq.heappush(frontier, (keys[left], left))
                right = left + 1
                if right < size:
                    heapq.heappush(frontier, (keys[right], right))
        return out_items, out_keys

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def heapify(self, items, keys) -> None:
        """Bulk-load ``items`` with ``keys`` using Floyd's method (O(n)).

        Discards any previous content.
        """
        items = np.asarray(items, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.float64)
        if items.shape != keys.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size > self._capacity:
            raise ValueError("more items than heap capacity")
        if items.size and (items.min() < 0 or items.max() >= self._capacity):
            raise ValueError("items out of range")
        ordered = np.sort(items)
        if items.size > 1 and bool((ordered[1:] == ordered[:-1]).any()):
            raise ValueError("items must be unique")
        self._items = items.tolist()
        self._keys = keys.tolist()
        self._slot_of.fill(_ABSENT)
        self._slot_of[items] = np.arange(items.size, dtype=np.int64)
        for slot in range(len(self._items) // 2 - 1, -1, -1):
            self._sift_down(slot)

    # ------------------------------------------------------------------ #
    # scalar mutation
    # ------------------------------------------------------------------ #
    def push(self, item: int, key: float) -> None:
        """Insert ``item`` with priority ``key`` (item must be absent)."""
        item = int(item)
        if not 0 <= item < self._capacity:
            raise ValueError(f"item {item} out of range [0, {self._capacity})")
        if self._slot_of[item] != _ABSENT:
            raise ValueError(f"item {item} is already in the heap; use update()")
        slot = len(self._items)
        self._items.append(item)
        self._keys.append(float(key))
        self._slot_of[item] = slot
        self._sift_up(slot)

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        item = self._items[0]
        key = self._keys[0]
        self._remove_slot(0)
        return item, key

    def pop_many(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return the ``k`` cheapest ``(items, keys)`` in pop order.

        Exactly equivalent to ``k`` successive :meth:`pop` calls — ties
        included.  Feeds the compressor's skip-mode batch drain; for a
        non-destructive look at the upcoming pops use :meth:`peek_many`.
        """
        k = min(int(k), len(self._items))
        out_items = np.empty(k, dtype=np.int64)
        out_keys = np.empty(k, dtype=np.float64)
        items = self._items
        keys = self._keys
        for index in range(k):
            out_items[index] = items[0]
            out_keys[index] = keys[0]
            self._remove_slot(0)
        return out_items, out_keys

    def remove(self, item: int) -> None:
        """Remove ``item`` from the heap (no-op if absent)."""
        slot = int(self._slot_of[item])
        if slot == _ABSENT:
            return
        self._remove_slot(slot)

    def update(self, item: int, key: float) -> None:
        """Change the priority of ``item`` (inserting it if absent)."""
        slot = int(self._slot_of[item])
        if slot == _ABSENT:
            self.push(item, key)
            return
        key = float(key)
        old = self._keys[slot]
        self._keys[slot] = key
        if key < old:
            self._sift_up(slot)
        elif key > old:
            self._sift_down(slot)

    # ------------------------------------------------------------------ #
    # bulk mutation
    # ------------------------------------------------------------------ #
    def update_many(self, items, keys) -> None:
        """Change the priorities of many items in one call (push if absent).

        Produces the same heap contents as ``update(item, key)`` per pair:
        present items take the new key, absent items are pushed.  Duplicate
        items in one call raise ``ValueError``.  Validation and the
        present/absent split are vectorized; the repair is the argsort
        rebuild for heap-scale batches and per-item sequential sifts (with
        the per-call dispatch hoisted out) otherwise.
        """
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size == 0:
            return
        if items.min() < 0 or items.max() >= self._capacity:
            raise ValueError("items out of range")
        ordered = np.sort(items)
        if items.size > 1 and bool((ordered[1:] == ordered[:-1]).any()):
            raise ValueError("duplicate items in update_many")
        slots = self._slot_of[items]
        present = slots != _ABSENT
        present_count = int(present.sum())
        size = len(self._items)
        if present_count and present_count * _REBUILD_FRACTION >= size:
            # Heap-scale batch: write every key and rebuild by sorting — a
            # key-sorted slot array is a valid heap (parent indices precede
            # child indices), and one argsort beats per-item sifts here.
            all_keys = np.asarray(self._keys, dtype=np.float64)
            all_keys[slots[present]] = key_values[present]
            order = np.argsort(all_keys, kind="stable")
            sorted_items = np.asarray(self._items, dtype=np.int64)[order]
            self._keys = all_keys[order].tolist()
            self._items = sorted_items.tolist()
            self._slot_of[sorted_items] = np.arange(size, dtype=np.int64)
        elif present_count:
            heap_keys = self._keys
            slot_of = self._slot_of
            # Re-resolve each slot inside the loop: an earlier sift in this
            # same batch may have moved a later item.
            for item, key in zip(items[present].tolist(),
                                 key_values[present].tolist()):
                slot = int(slot_of[item])
                old = heap_keys[slot]
                heap_keys[slot] = key
                if key < old:
                    self._sift_up(slot)
                elif key > old:
                    self._sift_down(slot)
        if present_count < items.size:
            absent = ~present
            for item, key in zip(items[absent].tolist(),
                                 key_values[absent].tolist()):
                self.push(item, key)

    def push_many(self, items, keys) -> None:
        """Insert many absent items in one call.

        Same contract as :meth:`push` per pair; every item must be absent
        and unique within the call.  Used by the compressor to re-queue the
        unconsumed remainder of a speculative batch in one go.
        """
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size == 0:
            return
        if items.min() < 0 or items.max() >= self._capacity:
            raise ValueError("items out of range")
        ordered = np.sort(items)
        if items.size > 1 and bool((ordered[1:] == ordered[:-1]).any()):
            raise ValueError("duplicate items in push_many")
        if bool((self._slot_of[items] != _ABSENT).any()):
            raise ValueError("push_many items must be absent; use update_many()")
        for item, key in zip(items.tolist(), key_values.tolist()):
            slot = len(self._items)
            self._items.append(item)
            self._keys.append(key)
            self._slot_of[item] = slot
            self._sift_up(slot)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remove_slot(self, slot: int) -> None:
        items = self._items
        keys = self._keys
        last = len(items) - 1
        self._slot_of[items[slot]] = _ABSENT
        if slot != last:
            items[slot] = items[last]
            keys[slot] = keys[last]
            self._slot_of[items[slot]] = slot
        items.pop()
        keys.pop()
        if slot < len(items):
            # The moved entry may need to travel either direction.
            self._sift_down(slot)
            self._sift_up(slot)

    def _swap(self, a: int, b: int) -> None:
        items = self._items
        keys = self._keys
        items[a], items[b] = items[b], items[a]
        keys[a], keys[b] = keys[b], keys[a]
        self._slot_of[items[a]] = a
        self._slot_of[items[b]] = b

    def _sift_up(self, slot: int) -> None:
        keys = self._keys
        while slot > 0:
            parent = (slot - 1) // 2
            if keys[slot] < keys[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        keys = self._keys
        size = len(keys)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and keys[left] < keys[smallest]:
                smallest = left
            if right < size and keys[right] < keys[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest

    # ------------------------------------------------------------------ #
    # debugging / testing aids
    # ------------------------------------------------------------------ #
    def items(self) -> np.ndarray:
        """Items currently in the heap (arbitrary order, copy)."""
        return np.asarray(self._items, dtype=np.int64)

    def keys(self) -> np.ndarray:
        """Keys aligned with :meth:`items` (arbitrary order, copy)."""
        return np.asarray(self._keys, dtype=np.float64)

    def check_invariants(self) -> bool:
        """Verify the heap property and the item→slot map (tests only)."""
        size = len(self._items)
        for slot in range(1, size):
            parent = (slot - 1) // 2
            if self._keys[parent] > self._keys[slot]:
                return False
        for slot in range(size):
            if self._slot_of[self._items[slot]] != slot:
                return False
        return int((self._slot_of != _ABSENT).sum()) == size


class NativeIndexedMinHeap:
    """:class:`IndexedMinHeap` on flat arrays with the sifts compiled.

    Same API, same error contract, and — by construction — the same slot
    layout after every operation: the C sift/remove/heapify loops are
    direct transcriptions of the list-based algorithms above, so pop order
    (ties included) is identical.  Storage is three preallocated arrays
    (``keys`` float64, ``items`` int64, ``slot_of`` int64) handed to the
    compiled primitives together with the logical size; the one repair that
    stays in NumPy is ``update_many``'s argsort rebuild, which was already
    vectorized and operates directly on the array views here.

    Instantiate via :func:`make_heap`, which falls back to
    :class:`IndexedMinHeap` when the native tier is unavailable/disabled.
    """

    def __init__(self, capacity: int, _native=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._native = _native if _native is not None else _get_native()
        if self._native is None:
            raise RuntimeError("native kernel tier is not active")
        self._capacity = int(capacity)
        self._hkeys = np.empty(self._capacity, dtype=np.float64)
        self._hitems = np.empty(self._capacity, dtype=np.int64)
        self._slot_of = np.full(self._capacity, _ABSENT, dtype=np.int64)
        self._size = 0

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._capacity and self._slot_of[item] != _ABSENT

    def contains_mask(self, items) -> np.ndarray:
        """Vectorized membership: boolean mask of which ``items`` are present."""
        items = np.asarray(items, dtype=np.int64)
        return self._slot_of[items] != _ABSENT

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def capacity(self) -> int:
        """Maximum number of distinct items."""
        return self._capacity

    def key_of(self, item: int) -> float:
        """Current priority of ``item`` (raises ``KeyError`` if absent)."""
        slot = int(self._slot_of[item])
        if slot == _ABSENT:
            raise KeyError(f"item {item} is not in the heap")
        return float(self._hkeys[slot])

    def peek(self) -> tuple[int, float]:
        """Return ``(item, key)`` of the minimum without removing it."""
        if self._size == 0:
            raise IndexError("peek on an empty heap")
        return int(self._hitems[0]), float(self._hkeys[0])

    def peek_many(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` cheapest ``(items, keys)`` in pop order, without removal."""
        k = min(int(k), self._size)
        out_items = np.empty(k, dtype=np.int64)
        out_keys = np.empty(k, dtype=np.float64)
        if k:
            self._native.heap_peek_many(self._hkeys, self._hitems,
                                        self._size, k, out_items, out_keys)
        return out_items, out_keys

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def heapify(self, items, keys) -> None:
        """Bulk-load ``items`` with ``keys`` using Floyd's method (O(n))."""
        items = np.asarray(items, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.float64)
        if items.shape != keys.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size > self._capacity:
            raise ValueError("more items than heap capacity")
        if items.size and (items.min() < 0 or items.max() >= self._capacity):
            raise ValueError("items out of range")
        ordered = np.sort(items)
        if items.size > 1 and bool((ordered[1:] == ordered[:-1]).any()):
            raise ValueError("items must be unique")
        self._hitems[:items.size] = items
        self._hkeys[:keys.size] = keys
        self._slot_of.fill(_ABSENT)
        self._slot_of[items] = np.arange(items.size, dtype=np.int64)
        self._size = items.size
        self._native.heap_heapify(self._hkeys, self._hitems, self._slot_of,
                                  self._size)

    # ------------------------------------------------------------------ #
    # scalar mutation
    # ------------------------------------------------------------------ #
    def push(self, item: int, key: float) -> None:
        """Insert ``item`` with priority ``key`` (item must be absent)."""
        self._size = self._native.heap_push(
            self._hkeys, self._hitems, self._slot_of, self._size,
            int(item), float(key))

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        item, key, self._size = self._native.heap_pop(
            self._hkeys, self._hitems, self._slot_of, self._size)
        return item, key

    def pop_many(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return the ``k`` cheapest ``(items, keys)`` in pop order."""
        k = min(int(k), self._size)
        out_items = np.empty(k, dtype=np.int64)
        out_keys = np.empty(k, dtype=np.float64)
        if k:
            self._size = self._native.heap_pop_many(
                self._hkeys, self._hitems, self._slot_of, self._size, k,
                out_items, out_keys)
        return out_items, out_keys

    def remove(self, item: int) -> None:
        """Remove ``item`` from the heap (no-op if absent)."""
        self._size = self._native.heap_remove(
            self._hkeys, self._hitems, self._slot_of, self._size, int(item))

    def update(self, item: int, key: float) -> None:
        """Change the priority of ``item`` (inserting it if absent)."""
        self._size = self._native.heap_update(
            self._hkeys, self._hitems, self._slot_of, self._size,
            int(item), float(key))

    # ------------------------------------------------------------------ #
    # bulk mutation
    # ------------------------------------------------------------------ #
    def update_many(self, items, keys) -> None:
        """Change the priorities of many items in one call (push if absent)."""
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size == 0:
            return
        if items.min() < 0 or items.max() >= self._capacity:
            raise ValueError("items out of range")
        ordered = np.sort(items)
        if items.size > 1 and bool((ordered[1:] == ordered[:-1]).any()):
            raise ValueError("duplicate items in update_many")
        slots = self._slot_of[items]
        present = slots != _ABSENT
        present_count = int(present.sum())
        size = self._size
        if present_count and present_count * _REBUILD_FRACTION >= size:
            # Same argsort rebuild as the hybrid heap, minus the
            # list<->array conversions: write the new keys in place and
            # re-lay the live prefix in stable key order.
            all_keys = self._hkeys[:size]
            all_keys[slots[present]] = key_values[present]
            order = np.argsort(all_keys, kind="stable")
            sorted_items = self._hitems[:size][order]
            self._hkeys[:size] = all_keys[order]
            self._hitems[:size] = sorted_items
            self._slot_of[sorted_items] = np.arange(size, dtype=np.int64)
        elif present_count:
            self._native.heap_update_present(
                self._hkeys, self._hitems, self._slot_of, size,
                np.ascontiguousarray(items[present]),
                np.ascontiguousarray(key_values[present]))
        if present_count < items.size:
            absent = ~present
            self._size = self._native.heap_push_many(
                self._hkeys, self._hitems, self._slot_of, self._size,
                np.ascontiguousarray(items[absent]),
                np.ascontiguousarray(key_values[absent]))

    def push_many(self, items, keys) -> None:
        """Insert many absent items in one call (same contract as push)."""
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size == 0:
            return
        if items.min() < 0 or items.max() >= self._capacity:
            raise ValueError("items out of range")
        ordered = np.sort(items)
        if items.size > 1 and bool((ordered[1:] == ordered[:-1]).any()):
            raise ValueError("duplicate items in push_many")
        if bool((self._slot_of[items] != _ABSENT).any()):
            raise ValueError("push_many items must be absent; use update_many()")
        self._size = self._native.heap_push_many(
            self._hkeys, self._hitems, self._slot_of, self._size,
            np.ascontiguousarray(items), np.ascontiguousarray(key_values))

    # ------------------------------------------------------------------ #
    # debugging / testing aids
    # ------------------------------------------------------------------ #
    def items(self) -> np.ndarray:
        """Items currently in the heap (arbitrary order, copy)."""
        return self._hitems[:self._size].copy()

    def keys(self) -> np.ndarray:
        """Keys aligned with :meth:`items` (arbitrary order, copy)."""
        return self._hkeys[:self._size].copy()

    def check_invariants(self) -> bool:
        """Verify the heap property and the item→slot map (tests only)."""
        size = self._size
        for slot in range(1, size):
            parent = (slot - 1) // 2
            if self._hkeys[parent] > self._hkeys[slot]:
                return False
        for slot in range(size):
            if self._slot_of[self._hitems[slot]] != slot:
                return False
        return int((self._slot_of != _ABSENT).sum()) == size


def make_heap(capacity: int) -> "IndexedMinHeap | NativeIndexedMinHeap":
    """The fastest available heap: native tier when active, hybrid otherwise.

    Both classes produce identical slot layouts and pop orders (ties
    included), so callers may switch tiers between runs without changing
    results.
    """
    native = _get_native()
    if native is not None:
        return NativeIndexedMinHeap(capacity, native)
    return IndexedMinHeap(capacity)
