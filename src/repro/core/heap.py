"""Indexed binary min-heap with decrease/increase-key support.

CAMEO keeps every removable point in a priority queue ordered by its impact
on the ACF and needs to *update* a point's priority whenever a neighbour is
removed (the ``ReHeap`` operation of Algorithm 1).  A plain ``heapq`` cannot
update entries in place, so this module provides an array-based indexed heap
where items are integers ``0..capacity-1`` and every operation that moves an
entry keeps an item→slot map in sync.

All operations are ``O(log n)`` except :meth:`IndexedMinHeap.heapify`, which
uses Floyd's bottom-up construction in ``O(n)`` — the same construction the
paper credits for the initial heap build.

Implementation note: keys, items, and the item→slot map are plain Python
lists.  The sift loops execute a handful of scalar reads/writes per level;
on NumPy arrays every one of those materialises a NumPy scalar, which made
the sifts a measurable share of CAMEO's end-to-end runtime (~1.5 s of a
16.5 s n=10k run).  Python lists make those scalar accesses native.  NumPy
stays at the API boundary: bulk loads accept arrays, and
:meth:`contains_mask` returns a boolean array for the vectorized ReHeap.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexedMinHeap"]

_ABSENT = -1


class IndexedMinHeap:
    """Min-heap over integer items with updatable priorities.

    Parameters
    ----------
    capacity:
        Items are integers in ``[0, capacity)``.  Each item can be present at
        most once.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        self._keys: list[float] = []
        self._items: list[int] = []
        self._slot_of: list[int] = [_ABSENT] * self._capacity

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._capacity and self._slot_of[item] != _ABSENT

    def contains_mask(self, items) -> np.ndarray:
        """Vectorized membership: boolean mask of which ``items`` are present.

        ``items`` must be in ``[0, capacity)``.
        """
        items = np.asarray(items, dtype=np.int64)
        slot_of = self._slot_of
        return np.fromiter((slot_of[item] != _ABSENT for item in items.tolist()),
                           dtype=bool, count=items.size)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def capacity(self) -> int:
        """Maximum number of distinct items."""
        return self._capacity

    def key_of(self, item: int) -> float:
        """Current priority of ``item`` (raises ``KeyError`` if absent)."""
        slot = self._slot_of[item]
        if slot == _ABSENT:
            raise KeyError(f"item {item} is not in the heap")
        return self._keys[slot]

    def peek(self) -> tuple[int, float]:
        """Return ``(item, key)`` of the minimum without removing it."""
        if not self._items:
            raise IndexError("peek on an empty heap")
        return self._items[0], self._keys[0]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def heapify(self, items, keys) -> None:
        """Bulk-load ``items`` with ``keys`` using Floyd's method (O(n)).

        Discards any previous content.
        """
        items = np.asarray(items, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.float64)
        if items.shape != keys.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        if items.size > self._capacity:
            raise ValueError("more items than heap capacity")
        if items.size and (items.min() < 0 or items.max() >= self._capacity):
            raise ValueError("items out of range")
        if np.unique(items).size != items.size:
            raise ValueError("items must be unique")
        self._items = items.tolist()
        self._keys = keys.tolist()
        slot_of = self._slot_of = [_ABSENT] * self._capacity
        for slot, item in enumerate(self._items):
            slot_of[item] = slot
        for slot in range(len(self._items) // 2 - 1, -1, -1):
            self._sift_down(slot)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def push(self, item: int, key: float) -> None:
        """Insert ``item`` with priority ``key`` (item must be absent)."""
        item = int(item)
        if not 0 <= item < self._capacity:
            raise ValueError(f"item {item} out of range [0, {self._capacity})")
        if self._slot_of[item] != _ABSENT:
            raise ValueError(f"item {item} is already in the heap; use update()")
        slot = len(self._items)
        self._items.append(item)
        self._keys.append(float(key))
        self._slot_of[item] = slot
        self._sift_up(slot)

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        item = self._items[0]
        key = self._keys[0]
        self._remove_slot(0)
        return item, key

    def remove(self, item: int) -> None:
        """Remove ``item`` from the heap (no-op if absent)."""
        slot = self._slot_of[item]
        if slot == _ABSENT:
            return
        self._remove_slot(slot)

    def update(self, item: int, key: float) -> None:
        """Change the priority of ``item`` (inserting it if absent)."""
        slot = self._slot_of[item]
        if slot == _ABSENT:
            self.push(item, key)
            return
        key = float(key)
        old = self._keys[slot]
        self._keys[slot] = key
        if key < old:
            self._sift_up(slot)
        elif key > old:
            self._sift_down(slot)

    def update_many(self, items, keys) -> None:
        """Change the priorities of many items in one call (push if absent).

        Equivalent to ``update(item, key)`` per pair, in order, but with the
        per-call dispatch hoisted out: the key/item/slot lists are bound once
        and the sift loops run inline on native scalars.
        """
        items = np.asarray(items, dtype=np.int64)
        key_values = np.asarray(keys, dtype=np.float64)
        if items.shape != key_values.shape or items.ndim != 1:
            raise ValueError("items and keys must be 1-D arrays of equal length")
        heap_keys = self._keys
        heap_items = self._items
        slot_of = self._slot_of
        for item, key in zip(items.tolist(), key_values.tolist()):
            slot = slot_of[item]
            if slot == _ABSENT:
                self.push(item, key)
                continue
            old = heap_keys[slot]
            heap_keys[slot] = key
            if key < old:
                while slot > 0:
                    parent = (slot - 1) // 2
                    if heap_keys[slot] < heap_keys[parent]:
                        heap_keys[slot], heap_keys[parent] = (heap_keys[parent],
                                                              heap_keys[slot])
                        heap_items[slot], heap_items[parent] = (heap_items[parent],
                                                                heap_items[slot])
                        slot_of[heap_items[slot]] = slot
                        slot_of[heap_items[parent]] = parent
                        slot = parent
                    else:
                        break
            elif key > old:
                size = len(heap_items)
                while True:
                    left = 2 * slot + 1
                    right = left + 1
                    smallest = slot
                    if left < size and heap_keys[left] < heap_keys[smallest]:
                        smallest = left
                    if right < size and heap_keys[right] < heap_keys[smallest]:
                        smallest = right
                    if smallest == slot:
                        break
                    heap_keys[slot], heap_keys[smallest] = (heap_keys[smallest],
                                                            heap_keys[slot])
                    heap_items[slot], heap_items[smallest] = (heap_items[smallest],
                                                              heap_items[slot])
                    slot_of[heap_items[slot]] = slot
                    slot_of[heap_items[smallest]] = smallest
                    slot = smallest

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remove_slot(self, slot: int) -> None:
        items = self._items
        keys = self._keys
        last = len(items) - 1
        self._slot_of[items[slot]] = _ABSENT
        if slot != last:
            items[slot] = items[last]
            keys[slot] = keys[last]
            self._slot_of[items[slot]] = slot
        items.pop()
        keys.pop()
        if slot < len(items):
            # The moved entry may need to travel either direction.
            self._sift_down(slot)
            self._sift_up(slot)

    def _swap(self, a: int, b: int) -> None:
        items = self._items
        keys = self._keys
        items[a], items[b] = items[b], items[a]
        keys[a], keys[b] = keys[b], keys[a]
        self._slot_of[items[a]] = a
        self._slot_of[items[b]] = b

    def _sift_up(self, slot: int) -> None:
        keys = self._keys
        while slot > 0:
            parent = (slot - 1) // 2
            if keys[slot] < keys[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        keys = self._keys
        size = len(keys)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and keys[left] < keys[smallest]:
                smallest = left
            if right < size and keys[right] < keys[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest

    # ------------------------------------------------------------------ #
    # debugging / testing aids
    # ------------------------------------------------------------------ #
    def items(self) -> np.ndarray:
        """Items currently in the heap (arbitrary order, copy)."""
        return np.asarray(self._items, dtype=np.int64)

    def check_invariants(self) -> bool:
        """Verify the heap property and the item→slot map (tests only)."""
        for slot in range(1, len(self._items)):
            parent = (slot - 1) // 2
            if self._keys[parent] > self._keys[slot]:
                return False
        for slot in range(len(self._items)):
            if self._slot_of[self._items[slot]] != slot:
                return False
        return True
