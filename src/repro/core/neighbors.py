"""Doubly-linked neighbour structure over the surviving points.

CAMEO repeatedly needs, for a surviving point ``i``, its nearest surviving
neighbours to the left and right (to interpolate across the gap) and the set
of surviving points within ``h`` hops (the blocking neighbourhood whose
impacts are refreshed after a removal).  Storing ``left``/``right`` pointer
arrays gives O(1) removal and O(h) neighbourhood collection, exactly as
described in Section 4.3 of the paper.

The pointer chase itself left the hot path in the speculative-batch PR:
:meth:`NeighborList.hops_array` resolves the ``h`` nearest survivors per
side with one ``flatnonzero`` gather over a window of the alive mask
(grown geometrically until it covers ``h`` survivors) instead of ``2h``
sequential Python pointer dereferences, and :meth:`NeighborList.hops_batch`
amortizes one survivor scan across a whole batch of indices.  The scalar
:meth:`NeighborList.hops` walk is retained as the reference the property
tests cross-check both against.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NeighborList"]


class NeighborList:
    """Pointer-array doubly linked list over indices ``0..n-1``."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("a neighbour list needs at least two points")
        self._n = int(n)
        self._left = np.arange(-1, n - 1, dtype=np.int64)
        self._right = np.arange(1, n + 1, dtype=np.int64)
        self._right[-1] = n  # sentinel one past the end
        self._alive = np.ones(n, dtype=bool)
        self._alive_count = n

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Total number of original positions."""
        return self._n

    def alive_count(self) -> int:
        """Number of surviving points."""
        return self._alive_count

    def is_alive(self, index: int) -> bool:
        """Whether position ``index`` still survives."""
        return bool(self._alive[index])

    def left_of(self, index: int) -> int:
        """Nearest surviving position to the left (-1 when none)."""
        return int(self._left[index])

    def right_of(self, index: int) -> int:
        """Nearest surviving position to the right (``n`` when none)."""
        return int(self._right[index])

    def alive_indices(self) -> np.ndarray:
        """Sorted array of surviving positions."""
        return np.flatnonzero(self._alive)

    def alive_mask(self) -> np.ndarray:
        """Boolean survival mask (copy)."""
        return self._alive.copy()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def remove(self, index: int) -> tuple[int, int]:
        """Remove ``index`` and return its former ``(left, right)`` neighbours.

        The first and last positions cannot be removed (they anchor the
        interpolation), mirroring the compressor's contract.
        """
        index = int(index)
        if index <= 0 or index >= self._n - 1:
            raise ValueError("the first and last points cannot be removed")
        if not self._alive[index]:
            raise ValueError(f"position {index} was already removed")
        left = int(self._left[index])
        right = int(self._right[index])
        self._right[left] = right
        if right < self._n:
            self._left[right] = left
        self._alive[index] = False
        self._alive_count -= 1
        return left, right

    # ------------------------------------------------------------------ #
    # neighbourhood collection (blocking)
    # ------------------------------------------------------------------ #
    def hops(self, index: int, h: int, *, include_endpoints: bool = False) -> list[int]:
        """Surviving points within ``h`` hops left and right of ``index``.

        ``index`` itself is *not* included (it is typically the point that
        was just removed).  The first and last positions are excluded unless
        ``include_endpoints`` is set, because their impact is pinned to
        infinity anyway.
        """
        result: list[int] = []
        # Start from the surviving anchors bracketing ``index`` (robust even
        # when the point's own stale pointers reference other removed points).
        left_anchor, right_anchor = self.gap(index)
        cursor = left_anchor
        steps = 0
        while cursor >= 0 and steps < h:
            if include_endpoints or 0 < cursor < self._n - 1:
                result.append(cursor)
            cursor = self.left_of(cursor)
            steps += 1
        cursor = right_anchor
        steps = 0
        while cursor < self._n and steps < h:
            if include_endpoints or 0 < cursor < self._n - 1:
                result.append(cursor)
            cursor = self.right_of(cursor)
            steps += 1
        return result

    def _window_hint(self, h: int) -> int:
        """Initial alive-mask window expected to cover ``h`` survivors."""
        density_window = (h * self._n) // max(self._alive_count, 1)
        return max(2 * h, density_window + (density_window >> 2)) + 2

    def _survivors_left(self, anchor: int, h: int) -> np.ndarray:
        """Up to ``h`` alive positions ``<= anchor``, nearest (largest) first."""
        if anchor < 0 or h <= 0:
            return np.empty(0, dtype=np.int64)
        alive = self._alive
        window = self._window_hint(h)
        while True:
            lo = max(0, anchor + 1 - window)
            found = np.flatnonzero(alive[lo:anchor + 1])
            if found.size >= h or lo == 0:
                break
            window *= 2
        if lo:
            found += lo
        return found[:-h - 1:-1] if found.size > h else found[::-1]

    def _survivors_right(self, anchor: int, h: int) -> np.ndarray:
        """Up to ``h`` alive positions ``>= anchor``, nearest (smallest) first."""
        n = self._n
        if anchor >= n or h <= 0:
            return np.empty(0, dtype=np.int64)
        alive = self._alive
        window = self._window_hint(h)
        while True:
            hi = min(n, anchor + window)
            found = np.flatnonzero(alive[anchor:hi])
            if found.size >= h or hi == n:
                break
            window *= 2
        if anchor:
            found += anchor
        return found[:h]

    def hops_array(self, index: int, h: int, *, include_endpoints: bool = False
                   ) -> np.ndarray:
        """Like :meth:`hops` but resolved with array gathers.

        Instead of chasing ``2h`` pointers one Python dereference at a time,
        each side's survivors are read off the alive mask with a single
        ``flatnonzero`` over a window sized from the current survivor
        density (grown geometrically on a miss).  Output order and content
        match :meth:`hops` exactly: the ``h`` nearest survivors left of the
        gap (nearest first), then the ``h`` nearest to the right.
        """
        left_anchor, right_anchor = self.gap(index)
        lefts = self._survivors_left(left_anchor, h)
        rights = self._survivors_right(right_anchor, h)
        result = np.concatenate((lefts, rights))
        if not include_endpoints:
            last = self._n - 1
            result = result[(result > 0) & (result < last)]
        return result

    def hops_batch(self, indices, h: int, *, include_endpoints: bool = False
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Blocking neighbourhoods of a whole batch in one gather pass.

        Returns ``(offsets, flat)`` where ``flat[offsets[i]:offsets[i+1]]``
        is :meth:`hops_array` of ``indices[i]``.  One ``flatnonzero`` scan
        of the alive mask is shared by the entire batch — each index's
        neighbourhood is then two ``searchsorted`` slices of the survivor
        array — so the per-index Python cost is O(1) array slicing instead
        of a pointer chase.
        """
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.zeros(indices.size + 1, dtype=np.int64)
        if indices.size == 0:
            return offsets, np.empty(0, dtype=np.int64)
        survivors = np.flatnonzero(self._alive)
        last = self._n - 1
        pieces: list[np.ndarray] = []
        for position, index in enumerate(indices.tolist()):
            left_anchor, right_anchor = self.gap(index)
            # Survivors <= left_anchor, nearest first.
            stop = int(np.searchsorted(survivors, left_anchor, side="right"))
            lefts = survivors[max(0, stop - h):stop][::-1]
            # Survivors >= right_anchor, nearest first.
            start = int(np.searchsorted(survivors, right_anchor, side="left"))
            rights = survivors[start:start + h]
            piece = np.concatenate((lefts, rights))
            if not include_endpoints:
                piece = piece[(piece > 0) & (piece < last)]
            pieces.append(piece)
            offsets[position + 1] = offsets[position] + piece.size
        flat = (np.concatenate(pieces) if pieces
                else np.empty(0, dtype=np.int64))
        return offsets, flat

    def gaps_of(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized neighbour lookup for *surviving* positions.

        Returns ``(lefts, rights)`` pointer arrays; valid only for alive
        indices (removed positions have stale pointers — use :meth:`gap`).
        """
        indices = np.asarray(indices, dtype=np.int64)
        return self._left[indices], self._right[indices]

    def gap(self, index: int) -> tuple[int, int]:
        """Surviving segment ``(left, right)`` that brackets position ``index``.

        For a surviving point these are its direct neighbours; for a removed
        point the surviving anchors of the segment it currently lies in.
        """
        if self._alive[index]:
            return self.left_of(index), self.right_of(index)
        left = index
        while left >= 0 and not self._alive[left]:
            left = int(self._left[left])
        right = index
        while right < self._n and not self._alive[right]:
            right = int(self._right[right])
        return int(left), int(right)
