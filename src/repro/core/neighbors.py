"""Doubly-linked neighbour structure over the surviving points.

CAMEO repeatedly needs, for a surviving point ``i``, its nearest surviving
neighbours to the left and right (to interpolate across the gap) and the set
of surviving points within ``h`` hops (the blocking neighbourhood whose
impacts are refreshed after a removal).  Storing ``left``/``right`` pointer
arrays gives O(1) removal and O(h) neighbourhood collection, exactly as
described in Section 4.3 of the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NeighborList"]


class NeighborList:
    """Pointer-array doubly linked list over indices ``0..n-1``."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("a neighbour list needs at least two points")
        self._n = int(n)
        self._left = np.arange(-1, n - 1, dtype=np.int64)
        self._right = np.arange(1, n + 1, dtype=np.int64)
        self._right[-1] = n  # sentinel one past the end
        self._alive = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Total number of original positions."""
        return self._n

    def alive_count(self) -> int:
        """Number of surviving points."""
        return int(self._alive.sum())

    def is_alive(self, index: int) -> bool:
        """Whether position ``index`` still survives."""
        return bool(self._alive[index])

    def left_of(self, index: int) -> int:
        """Nearest surviving position to the left (-1 when none)."""
        return int(self._left[index])

    def right_of(self, index: int) -> int:
        """Nearest surviving position to the right (``n`` when none)."""
        return int(self._right[index])

    def alive_indices(self) -> np.ndarray:
        """Sorted array of surviving positions."""
        return np.flatnonzero(self._alive)

    def alive_mask(self) -> np.ndarray:
        """Boolean survival mask (copy)."""
        return self._alive.copy()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def remove(self, index: int) -> tuple[int, int]:
        """Remove ``index`` and return its former ``(left, right)`` neighbours.

        The first and last positions cannot be removed (they anchor the
        interpolation), mirroring the compressor's contract.
        """
        index = int(index)
        if index <= 0 or index >= self._n - 1:
            raise ValueError("the first and last points cannot be removed")
        if not self._alive[index]:
            raise ValueError(f"position {index} was already removed")
        left = int(self._left[index])
        right = int(self._right[index])
        self._right[left] = right
        if right < self._n:
            self._left[right] = left
        self._alive[index] = False
        return left, right

    # ------------------------------------------------------------------ #
    # neighbourhood collection (blocking)
    # ------------------------------------------------------------------ #
    def hops(self, index: int, h: int, *, include_endpoints: bool = False) -> list[int]:
        """Surviving points within ``h`` hops left and right of ``index``.

        ``index`` itself is *not* included (it is typically the point that
        was just removed).  The first and last positions are excluded unless
        ``include_endpoints`` is set, because their impact is pinned to
        infinity anyway.
        """
        result: list[int] = []
        # Start from the surviving anchors bracketing ``index`` (robust even
        # when the point's own stale pointers reference other removed points).
        left_anchor, right_anchor = self.gap(index)
        cursor = left_anchor
        steps = 0
        while cursor >= 0 and steps < h:
            if include_endpoints or 0 < cursor < self._n - 1:
                result.append(cursor)
            cursor = self.left_of(cursor)
            steps += 1
        cursor = right_anchor
        steps = 0
        while cursor < self._n and steps < h:
            if include_endpoints or 0 < cursor < self._n - 1:
                result.append(cursor)
            cursor = self.right_of(cursor)
            steps += 1
        return result

    def hops_array(self, index: int, h: int, *, include_endpoints: bool = False
                   ) -> np.ndarray:
        """Like :meth:`hops` but returned as an ``int64`` array.

        The walk itself is inherently sequential (a pointer chase over the
        linked list), but the array form lets callers apply vectorized
        alive/in-heap mask queries instead of per-element membership tests.
        """
        left_pointers = self._left
        right_pointers = self._right
        n = self._n
        last = n - 1
        result: list[int] = []
        append = result.append
        left_anchor, right_anchor = self.gap(index)
        cursor = left_anchor
        steps = 0
        while cursor >= 0 and steps < h:
            if include_endpoints or 0 < cursor < last:
                append(cursor)
            cursor = int(left_pointers[cursor])
            steps += 1
        cursor = right_anchor
        steps = 0
        while cursor < n and steps < h:
            if include_endpoints or 0 < cursor < last:
                append(cursor)
            cursor = int(right_pointers[cursor])
            steps += 1
        return np.asarray(result, dtype=np.int64)

    def gaps_of(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized neighbour lookup for *surviving* positions.

        Returns ``(lefts, rights)`` pointer arrays; valid only for alive
        indices (removed positions have stale pointers — use :meth:`gap`).
        """
        indices = np.asarray(indices, dtype=np.int64)
        return self._left[indices], self._right[indices]

    def gap(self, index: int) -> tuple[int, int]:
        """Surviving segment ``(left, right)`` that brackets position ``index``.

        For a surviving point these are its direct neighbours; for a removed
        point the surviving anchors of the segment it currently lies in.
        """
        if self._alive[index]:
            return self.left_of(index), self.right_of(index)
        left = index
        while left >= 0 and not self._alive[left]:
            left = int(self._left[left])
        right = index
        while right < self._n and not self._alive[right]:
            right = int(self._right[right])
        return int(left), int(right)
