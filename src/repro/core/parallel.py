"""Parallelization strategies for CAMEO (paper Section 4.4).

The paper implements both strategies with OpenMP threads in Cython.  In pure
Python the numerics are identical but true shared-memory parallel speed-ups
are limited by the GIL, so this module provides faithful *functional*
reproductions that still expose the knobs the paper evaluates (number of
workers, per-partition error budget, hop chunking) and report per-worker
accounting so the scaling experiments (Figures 10 and 11) can be
regenerated:

* **Fine-grained** (:class:`FineGrainedCameo`) — the blocking
  neighbourhood's impact refresh is split into ``T`` chunks that are
  evaluated by a thread pool.  NumPy releases the GIL for the heavy array
  ops, so moderate real speed-ups are possible for large lag counts.
* **Coarse-grained** (:class:`CoarseGrainedCameo`) — the series is split
  into ``T`` consecutive partitions, each compressed independently with a
  local error budget ``p * epsilon / T``; the global ACF deviation is then
  validated on the merged result (overlap regions between partitions are
  accounted for by evaluating the ACF of the full reconstruction, which
  includes every cross-partition lag product).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import as_float_array
from ..data.timeseries import IrregularSeries, TimeSeries
from ..exceptions import InvalidParameterError
from ..stats.windowed import tumbling_window_aggregate
from .compressor import CameoCompressor
from .impact import (
    metric_rowwise,
    resolve_rowwise_metric,
    segment_interpolation_deltas_batched,
)
from .tracker import StatisticTracker

__all__ = ["ParallelReport", "FineGrainedCameo", "CoarseGrainedCameo"]


@dataclass
class ParallelReport:
    """Accounting information returned next to a parallel compression result."""

    workers: int
    partition_sizes: list[int] = field(default_factory=list)
    partition_deviation: list[float] = field(default_factory=list)
    partition_kept: list[int] = field(default_factory=list)
    global_deviation: float = 0.0
    compression_ratio: float = 1.0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "partition_sizes": list(self.partition_sizes),
            "partition_deviation": list(self.partition_deviation),
            "partition_kept": list(self.partition_kept),
            "global_deviation": self.global_deviation,
            "compression_ratio": self.compression_ratio,
            "elapsed_seconds": self.elapsed_seconds,
        }


class FineGrainedCameo(CameoCompressor):
    """CAMEO with the ReHeap look-ahead split across a thread pool.

    Behaviourally identical to :class:`CameoCompressor`; only the impact
    refresh of the blocking neighbourhood is chunked over ``threads``
    workers.  With ``threads=1`` it degenerates to the sequential algorithm.
    """

    def __init__(self, max_lag: int, epsilon: float | None = 0.01, *,
                 threads: int = 2, **kwargs):
        super().__init__(max_lag, epsilon, **kwargs)
        if threads < 1:
            raise InvalidParameterError("threads must be >= 1")
        self.threads = int(threads)
        self._pool: ThreadPoolExecutor | None = None

    def compress(self, series) -> IrregularSeries:
        if self.threads == 1:
            return super().compress(series)
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            self._pool = pool
            try:
                result = super().compress(series)
            finally:
                self._pool = None
        result.metadata["fine_grained_threads"] = self.threads
        return result

    def _reheap_neighbours(self, tracker, neighbours, heap, removed: int, hops: int,
                           metric=None) -> int:
        if metric is None:
            metric = resolve_rowwise_metric(self.metric)
        if self._pool is None:
            return super()._reheap_neighbours(tracker, neighbours, heap, removed,
                                              hops, metric)
        candidates = neighbours.hops_array(removed, hops)
        if candidates.size:
            candidates = candidates[heap.contains_mask(candidates)]
        if candidates.size == 0:
            return 0
        # Chunk the *batched* preview across the pool: each worker resolves
        # its chunk's gaps and runs the same fused segment kernel the
        # sequential ReHeap uses (per-segment results are independent, so
        # the chunked impacts are identical to one unchunked call).  The
        # kernel's scratch pool is thread-local by design.
        chunks = [chunk for chunk in np.array_split(candidates, self.threads)
                  if chunk.size]

        def evaluate(chunk: np.ndarray) -> np.ndarray:
            lefts, rights = neighbours.gaps_of(chunk)
            starts, lengths, positions, deltas = segment_interpolation_deltas_batched(
                tracker.current_values, lefts, rights)
            return tracker.batch_impacts_segments(starts, lengths, positions,
                                                  deltas, metric)

        impacts = np.concatenate(list(self._pool.map(evaluate, chunks)))
        heap.update_many(candidates, impacts)
        if self._spec_enabled:
            self._key_version[candidates] = self._state_version
        return int(candidates.size)


class CoarseGrainedCameo:
    """Partition-parallel CAMEO (coarse-grained strategy).

    Parameters
    ----------
    max_lag, epsilon, metric, statistic, agg_window, agg, blocking:
        Same meaning as for :class:`CameoCompressor`.
    workers:
        Number of partitions ``T``.
    local_budget_fraction:
        The paper's ``p``: every partition compresses under the local bound
        ``p * epsilon / T`` before the global constraint is validated.
        Values close to ``T`` spend nearly the whole budget locally.
    use_threads:
        Run partitions on a thread pool (NumPy releases the GIL for the
        heavy kernels) instead of sequentially simulated workers.
    """

    def __init__(self, max_lag: int, epsilon: float = 0.01, *, workers: int = 2,
                 metric="mae", statistic: str = "acf", agg_window: int = 1,
                 agg: str = "mean", blocking="5logn",
                 local_budget_fraction: float | None = None, use_threads: bool = True):
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        if epsilon is None or epsilon <= 0:
            raise InvalidParameterError("coarse-grained CAMEO requires a positive epsilon")
        self.max_lag = int(max_lag)
        self.epsilon = float(epsilon)
        self.workers = int(workers)
        self.metric = metric
        self.statistic = statistic
        self.agg_window = int(agg_window)
        self.agg = agg
        self.blocking = blocking
        self.local_budget_fraction = (float(local_budget_fraction)
                                      if local_budget_fraction is not None
                                      else float(workers))
        self.use_threads = use_threads

    # ------------------------------------------------------------------ #
    def _partition_bounds(self, n: int) -> list[tuple[int, int]]:
        """Split ``[0, n)`` into ``workers`` contiguous partitions.

        Partition boundaries are aligned to the aggregation window so window
        aggregates never straddle two partitions.
        """
        workers = min(self.workers, max(1, n // max(4, 2 * self.agg_window)))
        base = n // workers
        if self.agg_window > 1:
            base = max(self.agg_window, (base // self.agg_window) * self.agg_window)
        bounds = []
        start = 0
        for worker in range(workers):
            stop = n if worker == workers - 1 else min(n, start + base)
            if stop - start >= 4:
                bounds.append((start, stop))
            start = stop
            if start >= n:
                break
        if not bounds:
            bounds = [(0, n)]
        return bounds

    def _compress_partition(self, values: np.ndarray, local_epsilon: float
                            ) -> IrregularSeries:
        compressor = CameoCompressor(
            self.max_lag, local_epsilon, metric=self.metric, statistic=self.statistic,
            agg_window=self.agg_window, agg=self.agg, blocking=self.blocking)
        return compressor.compress(values)

    def compress(self, series) -> tuple[IrregularSeries, ParallelReport]:
        """Compress ``series`` and return ``(result, report)``.

        The report carries per-partition accounting used by the Figure 10/11
        benchmarks.  The returned representation always satisfies the global
        bound: if merging the locally compressed partitions overshoots the
        global deviation, partitions are re-compressed with a geometrically
        shrinking local budget (at most three refinement rounds) and, as a
        last resort, the identity representation of the offending partition
        is used.
        """
        import time

        name = series.name if isinstance(series, TimeSeries) else "series"
        values = as_float_array(series.values if isinstance(series, TimeSeries) else series)
        n = values.size
        start_time = time.perf_counter()
        bounds = self._partition_bounds(n)
        workers = len(bounds)
        local_epsilon = self.local_budget_fraction * self.epsilon / max(self.workers, 1)

        report = ParallelReport(workers=workers,
                                partition_sizes=[stop - start for start, stop in bounds])

        reference = self._reference_statistic(values)

        def run_round(epsilon_value: float) -> list[IrregularSeries]:
            if self.use_threads and workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(
                        lambda bound: self._compress_partition(
                            values[bound[0]:bound[1]], epsilon_value), bounds))
            return [self._compress_partition(values[start:stop], epsilon_value)
                    for start, stop in bounds]

        epsilon_round = local_epsilon
        for _round in range(3):
            partials = run_round(epsilon_round)
            merged = self._merge(partials, bounds, n, name)
            global_dev = self._global_deviation(values, merged, reference)
            if global_dev <= self.epsilon:
                break
            epsilon_round /= 2.0
        else:
            # Final safety net: keep everything (deviation 0).
            merged = IrregularSeries(indices=np.arange(n), values=values.copy(),
                                     original_length=n, name=f"cameo-coarse({name})")
            partials = []
            global_dev = 0.0

        report.partition_deviation = [
            float(p.metadata.get("achieved_deviation", 0.0)) for p in partials]
        report.partition_kept = [len(p) for p in partials]
        report.global_deviation = float(global_dev)
        report.compression_ratio = merged.compression_ratio()
        report.elapsed_seconds = time.perf_counter() - start_time
        merged.metadata.update({
            "compressor": "CAMEO-coarse",
            "epsilon": self.epsilon,
            "workers": workers,
            "local_epsilon": local_epsilon,
            **{f"report_{k}": v for k, v in report.as_dict().items()},
        })
        return merged, report

    # ------------------------------------------------------------------ #
    def _reference_statistic(self, values: np.ndarray) -> np.ndarray:
        tracked_length = values.size if self.agg_window == 1 else values.size // self.agg_window
        lag = min(self.max_lag, max(tracked_length - 1, 1))
        tracker = StatisticTracker(values, lag, statistic=self.statistic,
                                   agg_window=self.agg_window, agg=self.agg)
        return tracker.reference

    def _global_deviation(self, values: np.ndarray, merged: IrregularSeries,
                          reference: np.ndarray) -> float:
        reconstruction = merged.decompress()
        if self.agg_window > 1:
            original = tumbling_window_aggregate(values, self.agg_window, self.agg)
            candidate = tumbling_window_aggregate(reconstruction, self.agg_window, self.agg)
        else:
            original = values
            candidate = reconstruction
        lag = reference.size
        tracker = StatisticTracker(candidate, lag, statistic=self.statistic)
        candidate_stat = tracker.reference
        del original  # reference was computed on the original already
        return float(metric_rowwise(self.metric, reference, candidate_stat)[0])

    @staticmethod
    def _merge(partials: Sequence[IrregularSeries], bounds: Sequence[tuple[int, int]],
               n: int, name: str) -> IrregularSeries:
        indices = []
        values = []
        for partial, (start, _stop) in zip(partials, bounds):
            indices.append(partial.indices + start)
            values.append(partial.values)
        merged_indices = np.concatenate(indices)
        merged_values = np.concatenate(values)
        order = np.argsort(merged_indices)
        merged_indices = merged_indices[order]
        merged_values = merged_values[order]
        unique_mask = np.concatenate(([True], np.diff(merged_indices) > 0))
        return IrregularSeries(indices=merged_indices[unique_mask],
                               values=merged_values[unique_mask],
                               original_length=n, name=f"cameo-coarse({name})")
