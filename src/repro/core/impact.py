"""ACF-impact evaluation (Algorithm 2 and the ReHeap look-ahead).

Entry points:

* :func:`batched_single_change_impacts` — the vectorised ``GetAllImpact`` of
  Algorithm 2: for many candidate points at once, compute the deviation the
  ACF would suffer if that point alone changed by its interpolation delta.
  Works directly on the per-lag aggregate vectors, so each candidate costs
  O(L) and the whole batch is a handful of NumPy operations per chunk.
* :func:`batched_contiguous_acf` — the fused ReHeap kernel: the ACF each of
  many *contiguous-range* changes would produce, evaluated for all segments
  in one vectorized pass (single-point segments reproduce
  :func:`batched_single_change_impacts` bit for bit).
* :func:`segment_interpolation_deltas` / ``..._batched`` — the exact
  multi-point deltas used in the inner loop: when point ``i`` is removed,
  every already-removed point in the surviving gap ``(left, right)`` is
  re-interpolated on the new segment.  The batched variant computes the
  deltas of many gaps in one pass over a concatenated position array.

The deviation measure ``D`` is vectorised for the common metrics (MAE,
Chebyshev, RMSE/MSE); any other callable falls back to a row-wise loop.
:func:`resolve_rowwise_metric` hoists the name-string dispatch out of the
hot loop: the compressor resolves the metric once per run and every
downstream call takes the pre-resolved object.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from .._kernels import get_native as _get_native
from ..metrics import get_metric
from ..stats.aggregates import ACFAggregateState

__all__ = [
    "ResolvedMetric",
    "resolve_rowwise_metric",
    "metric_rowwise",
    "batched_single_change_impacts",
    "batched_contiguous_acf",
    "multi_state_contiguous_acf",
    "segment_interpolation_deltas",
    "segment_interpolation_deltas_batched",
    "initial_interpolation_deltas",
]

_VECTORISED_METRICS = {"mae", "cheb", "chebyshev", "max", "rmse", "mse"}

#: Upper bound on ``total_positions * max_lag`` per vectorized block in
#: :func:`batched_contiguous_acf`.  Bounds both the per-call working set and
#: the thread-local scratch pool retained across ReHeap calls (a few dozen
#: MB; blocks forced larger by a single long segment use a one-off scratch
#: that is not retained).
_MAX_BLOCK_CELLS = 1 << 21


class ResolvedMetric:
    """A deviation measure with its dispatch decided once, not per call.

    ``kind`` is one of ``"mae"``, ``"cheb"``, ``"mse"``, ``"rmse"`` (closed
    NumPy forms) or ``"callable"`` (row-wise application of ``fn``).
    """

    __slots__ = ("kind", "fn", "name")

    def __init__(self, kind: str, fn: Callable[..., float] | None, name: str):
        self.kind = kind
        self.fn = fn
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResolvedMetric({self.name!r})"

    # ------------------------------------------------------------------ #
    def rowwise(self, reference: np.ndarray, candidates: np.ndarray, *,
                overwrite: bool = False) -> np.ndarray:
        """``D(reference, row)`` for every row of a 2-D ``candidates``.

        ``overwrite=True`` lets the closed-form metrics reuse ``candidates``
        as workspace (identical results; pass it only for arrays that are
        dead after the call, like a freshly computed statistic matrix).
        """
        kind = self.kind
        if kind == "callable":
            fn = self.fn
            return np.array([fn(reference, row) for row in candidates],
                            dtype=np.float64)
        if overwrite and candidates.dtype == np.float64:
            diff = np.subtract(candidates, reference[np.newaxis, :],
                               out=candidates)
        else:
            diff = candidates - reference[np.newaxis, :]
        if kind == "mae":
            return np.mean(np.abs(diff, out=diff), axis=1)
        if kind == "cheb":
            return np.max(np.abs(diff, out=diff), axis=1)
        if kind == "mse":
            return np.mean(np.multiply(diff, diff, out=diff), axis=1)
        return np.sqrt(np.mean(np.multiply(diff, diff, out=diff), axis=1))

    def single(self, reference: np.ndarray, candidate: np.ndarray) -> float:
        """Scalar ``D(reference, candidate)`` without 2-D reshaping."""
        kind = self.kind
        if kind == "callable":
            return float(self.fn(reference, candidate))
        diff = candidate - reference
        if kind == "mae":
            return float(np.mean(np.abs(diff)))
        if kind == "cheb":
            return float(np.max(np.abs(diff)))
        if kind == "mse":
            return float(np.mean(diff * diff))
        return float(np.sqrt(np.mean(diff * diff)))


def resolve_rowwise_metric(metric) -> ResolvedMetric:
    """Resolve a metric name/callable into a :class:`ResolvedMetric`.

    Resolving once per compression run removes the per-call string
    normalisation and registry lookup from the inner loop.
    """
    if isinstance(metric, ResolvedMetric):
        return metric
    if isinstance(metric, str):
        name = metric.strip().lower()
        if name in _VECTORISED_METRICS:
            if name in ("cheb", "chebyshev", "max"):
                kind = "cheb"
            else:
                kind = name
            return ResolvedMetric(kind, None, name)
        return ResolvedMetric("callable", get_metric(metric), name)
    fn = get_metric(metric)
    return ResolvedMetric("callable", fn, getattr(fn, "__name__", "custom"))


def metric_rowwise(metric, reference: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Evaluate ``D(reference, row)`` for every row of ``candidates``.

    ``metric`` may be a registered metric name, a callable ``(x, y) ->
    float``, or a pre-resolved :class:`ResolvedMetric`.  Common names use
    closed-form NumPy expressions; callables are applied row by row.
    """
    resolved = resolve_rowwise_metric(metric)
    return resolved.rowwise(reference, np.atleast_2d(candidates))


def batched_single_change_impacts(state: ACFAggregateState, positions, deltas,
                                  reference: np.ndarray, metric="mae", *,
                                  chunk_size: int = 16384) -> np.ndarray:
    """Deviation of the ACF if each candidate position changed independently.

    Parameters
    ----------
    state:
        The aggregate state whose sums describe the *current* series.
    positions, deltas:
        Candidate positions (into the state's series) and the value change
        each candidate would apply.  Each candidate is evaluated in
        isolation.
    reference:
        The reference ACF vector the deviation is measured against (the ACF
        of the *original* series, ``P_L`` in Algorithm 1).
    metric:
        Deviation measure ``D`` (name, callable, or resolved metric).
    chunk_size:
        Number of candidates evaluated per NumPy batch; bounds memory at
        ``chunk_size * L`` floats.
    """
    positions = np.asarray(positions, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.float64)
    if positions.shape != deltas.shape:
        raise ValueError("positions and deltas must have the same shape")
    if positions.size == 0:
        return np.empty(0, dtype=np.float64)
    metric = resolve_rowwise_metric(metric)

    sums = state.sums
    lags = state.lags
    counts = sums.counts
    current = state.current
    n = state.n
    out = np.empty(positions.size, dtype=np.float64)

    for start in range(0, positions.size, chunk_size):
        stop = min(start + chunk_size, positions.size)
        pos = positions[start:stop, np.newaxis]      # (m, 1)
        delta = deltas[start:stop, np.newaxis]       # (m, 1)
        head = pos + lags[np.newaxis, :] <= n - 1    # (m, L) position is in the lag head
        tail = pos - lags[np.newaxis, :] >= 0        # (m, L) position is in the lag tail

        own = current[pos]                           # (m, 1)
        square_term = delta * (2.0 * own + delta)

        new_sx = sums.sx + np.where(head, delta, 0.0)
        new_sxl = sums.sxl + np.where(tail, delta, 0.0)
        new_sx2 = sums.sx2 + np.where(head, square_term, 0.0)
        new_sx2l = sums.sx2l + np.where(tail, square_term, 0.0)

        right_idx = np.minimum(pos + lags[np.newaxis, :], n - 1)
        left_idx = np.maximum(pos - lags[np.newaxis, :], 0)
        new_sxxl = (sums.sxxl
                    + np.where(head, delta * current[right_idx], 0.0)
                    + np.where(tail, delta * current[left_idx], 0.0))

        numerator = counts * new_sxxl - new_sx * new_sxl
        var_head = counts * new_sx2 - new_sx * new_sx
        var_tail = counts * new_sx2l - new_sxl * new_sxl
        acf_new = np.zeros_like(numerator)
        valid = (var_head > 0.0) & (var_tail > 0.0)
        denom = np.sqrt(np.where(valid, var_head * var_tail, 1.0))
        np.divide(numerator, denom, out=acf_new, where=valid)

        out[start:stop] = metric.rowwise(reference, acf_new, overwrite=True)
    return out


def batched_contiguous_acf(state: ACFAggregateState, lengths, positions, deltas
                           ) -> np.ndarray:
    """ACF each of many contiguous-range changes would produce, vectorized.

    The ``k`` hypothetical changes are given in concatenated form:
    ``lengths[s]`` positions belong to segment ``s`` and the segments'
    positions/deltas are stored back to back in ``positions``/``deltas``
    (each segment's positions must be consecutive integers).  Returns a
    ``(k, L)`` matrix whose row ``s`` is the ACF after applying segment
    ``s`` alone; zero-length segments get the current ACF.

    Single-position segments reproduce the arithmetic of
    :func:`batched_single_change_impacts` exactly.  The cross terms
    ``delta_p * delta_{p+l}`` inside each segment are accumulated per lag
    with a bincount over same-segment pairs.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.float64)
    k = lengths.size
    num_lags = state.lags.size
    out = np.empty((k, num_lags), dtype=np.float64)
    if k == 0:
        return out

    nonzero = lengths > 0
    if not bool(nonzero.all()):
        out[~nonzero] = state.acf()
    lens = lengths[nonzero]
    if lens.size == 0:
        return out
    row_index = np.flatnonzero(nonzero)

    cum = np.concatenate(([0], np.cumsum(lens)))
    # Split into blocks so temp arrays stay ~_MAX_BLOCK_CELLS elements.
    budget = max(_MAX_BLOCK_CELLS // max(num_lags, 1), int(lens.max()))
    start_seg = 0
    while start_seg < lens.size:
        stop_seg = int(np.searchsorted(cum, cum[start_seg] + budget, side="right")) - 1
        stop_seg = max(stop_seg, start_seg + 1)
        block_rows = row_index[start_seg:stop_seg]
        lo, hi = int(cum[start_seg]), int(cum[stop_seg])
        out[block_rows] = _contiguous_acf_block(
            state, lens[start_seg:stop_seg], positions[lo:hi], deltas[lo:hi])
        start_seg = stop_seg
    return out


class _BlockScratch:
    """Reusable ``(T, L)`` scratch buffers for :func:`_contiguous_acf_block`.

    One ReHeap call allocated ~8 ``(T, L)`` temporaries; the pool keeps a
    float64, two int64, and two bool buffers per ``(thread, L)`` — plus one
    ``(T, 2L)`` float/int pair for the interior path's fused head+tail
    gather — and grows their row capacity geometrically, so steady-state
    ReHeap calls allocate no ``(T, L)`` arrays at all.
    """

    __slots__ = ("rows", "f1", "f2", "i1", "i2", "b1", "b2", "fw", "iw")

    def __init__(self, rows: int, num_lags: int):
        self.rows = rows
        self.f1 = np.empty((rows, num_lags), dtype=np.float64)
        self.f2 = np.empty((rows, num_lags), dtype=np.float64)
        self.i1 = np.empty((rows, num_lags), dtype=np.int64)
        self.i2 = np.empty((rows, num_lags), dtype=np.int64)
        self.b1 = np.empty((rows, num_lags), dtype=bool)
        self.b2 = np.empty((rows, num_lags), dtype=bool)
        self.fw = np.empty((rows, 2 * num_lags), dtype=np.float64)
        self.iw = np.empty((rows, 2 * num_lags), dtype=np.int64)


_block_scratch_tls = threading.local()


def _block_scratch(rows: int, num_lags: int) -> _BlockScratch:
    """Fetch (or grow) this thread's scratch pool for ``num_lags`` lags.

    The retained pool is bounded by roughly ``2 * _MAX_BLOCK_CELLS`` cells
    per ``(thread, num_lags)`` pair: blocks forced larger than that by a
    single long segment get a one-off scratch that is not kept, so a
    long-lived process cannot accumulate unbounded buffers.
    """
    pools = getattr(_block_scratch_tls, "pools", None)
    if pools is None:
        pools = {}
        _block_scratch_tls.pools = pools
    scratch = pools.get(num_lags)
    if scratch is None or scratch.rows < rows:
        capacity = max(rows, 2 * scratch.rows) if scratch is not None else rows
        scratch = _BlockScratch(capacity, num_lags)
        if capacity * num_lags <= 2 * _MAX_BLOCK_CELLS:
            pools[num_lags] = scratch
    return scratch


def _masked_segment_sums(values, mask: np.ndarray, scratch_rows: np.ndarray,
                         offsets: np.ndarray) -> np.ndarray:
    """``np.add.reduceat(np.where(mask, values, 0.0), offsets, axis=0)``
    without allocating the masked ``(T, L)`` temporary.

    Multiplying by the boolean mask zeroes the masked slots in one pass;
    the products differ from ``np.where`` only in the sign of masked zeros,
    which cannot change the segment sums' final values.
    """
    np.multiply(values, mask, out=scratch_rows)
    return np.add.reduceat(scratch_rows, offsets, axis=0)


def _contiguous_acf_block(state: ACFAggregateState, lens: np.ndarray,
                          positions: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """One vectorized block of :func:`batched_contiguous_acf`.

    Segments whose positions sit at least ``max_lag`` away from both series
    ends (the overwhelming majority) take the *interior* fast path: their
    head/tail lag masks are all-true, so the four masked ``(T, L)`` segment
    sums collapse to two 1-D ``reduceat`` calls over the concatenated
    deltas/energies — multiplying by an all-true mask is exact (``x * 1.0 ==
    x``) and the accumulation order is unchanged, so the fast path is
    bit-identical to the masked formulation.  Segments touching a boundary
    keep the full masked path (:func:`_edge_acf_block`).
    """
    lags = state.lags
    num_segments = lens.size
    offsets = np.concatenate(([0], np.cumsum(lens[:-1])))
    seg_start = positions[offsets]
    seg_end = positions[offsets + lens - 1]
    max_lag = lags.size  # lags are 1..L
    interior = (seg_start >= max_lag) & (seg_end + max_lag <= state.n - 1)
    # The cross-term path choice (bincount vs partner matrix) depends on the
    # longest segment; decide it once for the whole block so partitioning a
    # block into interior/edge subsets cannot flip a subset onto the other
    # path (the two accumulate in different orders).
    max_len = int(lens.max())
    if bool(interior.all()):
        return _interior_acf_block(state, lens, offsets, positions, deltas,
                                   max_len)
    if not bool(interior.any()):
        return _edge_acf_block(state, lens, positions, deltas, max_len)
    member = np.repeat(interior, lens)
    out = np.empty((num_segments, lags.size), dtype=np.float64)
    interior_lens = lens[interior]
    interior_offsets = np.concatenate(([0], np.cumsum(interior_lens[:-1])))
    out[interior] = _interior_acf_block(state, interior_lens, interior_offsets,
                                        positions[member], deltas[member],
                                        max_len)
    out[~interior] = _edge_acf_block(state, lens[~interior],
                                     positions[~member], deltas[~member],
                                     max_len)
    return out


def _segment_cross_terms(deltas: np.ndarray, lens: np.ndarray, lags: np.ndarray,
                         total: int, max_len: int) -> np.ndarray | None:
    """Per-lag ``delta_p * delta_{p+l}`` sums of same-segment pairs.

    Positions within a segment are consecutive, so lag-l pairs are exactly
    the concatenated entries at distance l that share a segment; one (T, L)
    partner gather + segment-reduce covers every lag at once.  Returns
    ``None`` when no segment is long enough to have cross terms.

    ``max_len`` is the longest segment of the *whole* block (not just this
    subset): it selects between the bincount and partner-matrix paths, which
    accumulate in different orders, so the choice must not depend on how the
    block was partitioned.
    """
    if max_len <= 1:
        return None
    num_segments = lens.size
    offsets = np.concatenate(([0], np.cumsum(lens[:-1])))
    segment_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lens)
    num_cross_lags = min(max_len - 1, lags.size)
    if num_cross_lags <= 8:
        # Few lags carry cross terms: a short per-lag bincount beats
        # materialising the full (T, L) pair matrix.
        cross = np.zeros((num_segments, lags.size), dtype=np.float64)
        for lag_index in range(num_cross_lags):
            shift = lag_index + 1
            same = segment_ids[shift:] == segment_ids[:-shift]
            products = deltas[shift:] * deltas[:-shift]
            cross[:, lag_index] = np.bincount(
                segment_ids[shift:][same], weights=products[same],
                minlength=num_segments)
        return cross
    # Lags beyond the longest segment cannot pair, so the partner matrix
    # only needs the first ``num_cross_lags`` columns; the remaining lag
    # columns of the returned cross matrix stay exactly zero.  The narrow
    # temporaries are freshly allocated *contiguous* arrays — column-sliced
    # scratch views make ``take``/``reduceat`` fall off their fast paths
    # (measured ~14x slower) and the arrays are small.
    width = num_cross_lags
    partner = np.add(np.arange(total, dtype=np.int64)[:, np.newaxis],
                     lags[np.newaxis, :width])
    in_range = partner < total
    np.minimum(partner, total - 1, out=partner)
    pair_ids = np.take(segment_ids, partner, mode="clip")
    pair = pair_ids == segment_ids[:, np.newaxis]
    np.logical_and(pair, in_range, out=pair)
    products = np.take(deltas, partner, mode="clip")
    np.multiply(deltas[:, np.newaxis], products, out=products)
    np.multiply(products, pair, out=products)
    cross = np.zeros((num_segments, lags.size), dtype=np.float64)
    cross[:, :width] = np.add.reduceat(products, offsets, axis=0)
    return cross


def _interior_acf_block(state: ACFAggregateState, lens: np.ndarray,
                        offsets: np.ndarray, positions: np.ndarray,
                        deltas: np.ndarray, max_len: int) -> np.ndarray:
    """Fast path for segments whose lag windows never leave the series.

    Dispatches to the compiled tier when it is active (one fused C loop
    per segment, no ``(T, 2L)`` temporaries, bit-identical by the
    import-time contract of :mod:`repro._kernels._native`); otherwise runs
    the NumPy formulation below.
    """
    native = _get_native()
    if (native is not None and lens.size
            and state.current.flags.c_contiguous):
        sums = state.sums
        out = np.empty((lens.size, state.lags.size), dtype=np.float64)
        native.interior_acf_block(state.current, sums.counts, sums.sx,
                                  sums.sxl, sums.sx2, sums.sx2l, sums.sxxl,
                                  lens, offsets, positions, deltas,
                                  max_len, out)
        return out
    return _interior_acf_block_numpy(state, lens, offsets, positions,
                                     deltas, max_len)


def _interior_acf_block_numpy(state: ACFAggregateState, lens: np.ndarray,
                              offsets: np.ndarray, positions: np.ndarray,
                              deltas: np.ndarray, max_len: int) -> np.ndarray:
    """The NumPy formulation (and bit-identity reference) of the fast path."""
    sums = state.sums
    lags = state.lags
    counts = sums.counts
    current = state.current
    total = positions.size
    num_lags = lags.size
    scratch = _block_scratch(total, num_lags)

    # All-true head/tail masks: the four masked head/tail sums equal the
    # plain per-segment sums of the deltas / energy terms.
    old = current[positions]
    energy = deltas * (2.0 * old + deltas)
    d_seg = np.add.reduceat(deltas, offsets)[:, np.newaxis]       # (S, 1)
    e_seg = np.add.reduceat(energy, offsets)[:, np.newaxis]       # (S, 1)

    # Fused head+tail gather: one (T, 2L) take / multiply / reduceat pass
    # covers d_head (columns :L) and d_tail (columns L:) — per column the
    # arithmetic is identical to two separate (T, L) passes.
    pos = positions[:, np.newaxis]
    fw = scratch.fw[:total]
    iw = scratch.iw[:total]
    np.add(pos, lags[np.newaxis, :], out=iw[:, :num_lags])        # pos + lag
    np.subtract(pos, lags[np.newaxis, :], out=iw[:, num_lags:])   # pos - lag
    np.take(current, iw, out=fw, mode="clip")
    np.multiply(deltas[:, np.newaxis], fw, out=fw)
    d_both = np.add.reduceat(fw, offsets, axis=0)
    d_head = d_both[:, :num_lags]
    d_tail = d_both[:, num_lags:]

    new_sx = sums.sx + d_seg
    new_sxl = sums.sxl + d_seg
    new_sx2 = sums.sx2 + e_seg
    new_sx2l = sums.sx2l + e_seg
    # Summed in the same association order as the single-change kernel so
    # single-position segments stay bit-identical to it.
    new_sxxl = (sums.sxxl + d_head) + d_tail
    cross = _segment_cross_terms(deltas, lens, lags, total, max_len)
    if cross is not None:
        new_sxxl = new_sxxl + cross

    numerator = counts * new_sxxl - new_sx * new_sxl
    var_head = counts * new_sx2 - new_sx * new_sx
    var_tail = counts * new_sx2l - new_sxl * new_sxl
    acf_new = np.zeros_like(numerator)
    valid = (var_head > 0.0) & (var_tail > 0.0)
    denom = np.sqrt(np.where(valid, var_head * var_tail, 1.0))
    np.divide(numerator, denom, out=acf_new, where=valid)
    return acf_new


def _edge_acf_block(state: ACFAggregateState, lens: np.ndarray,
                    positions: np.ndarray, deltas: np.ndarray,
                    max_len: int) -> np.ndarray:
    """Masked path for segments whose lag windows are clipped by a boundary.

    All ``(T, L)`` intermediates live in the thread-local scratch pool
    (:func:`_block_scratch`); the arithmetic — and therefore the result, bit
    for bit — matches the original allocation-per-call formulation.
    """
    sums = state.sums
    lags = state.lags
    counts = sums.counts
    current = state.current
    n = state.n
    offsets = np.concatenate(([0], np.cumsum(lens[:-1])))

    total = positions.size
    scratch = _block_scratch(total, lags.size)
    f1 = scratch.f1[:total]
    f2 = scratch.f2[:total]
    i1 = scratch.i1[:total]
    i2 = scratch.i2[:total]
    b1 = scratch.b1[:total]
    b2 = scratch.b2[:total]

    pos = positions[:, np.newaxis]                   # (T, 1)
    delta = deltas[:, np.newaxis]                    # (T, 1)
    np.add(pos, lags[np.newaxis, :], out=i1)         # pos + lag
    np.subtract(pos, lags[np.newaxis, :], out=i2)    # pos - lag
    head = np.less_equal(i1, n - 1, out=b1)          # (T, L)
    tail = np.greater_equal(i2, 0, out=b2)

    own = current[pos]
    square_term = delta * (2.0 * own + delta)

    d_sx = _masked_segment_sums(delta, head, f1, offsets)
    d_sxl = _masked_segment_sums(delta, tail, f1, offsets)
    d_sx2 = _masked_segment_sums(square_term, head, f1, offsets)
    d_sx2l = _masked_segment_sums(square_term, tail, f1, offsets)

    # Indices are pre-clipped into range, so mode="clip" is semantically a
    # no-op; it lets np.take skip the slow bounds-checked buffered path.
    right_idx = np.minimum(i1, n - 1, out=i1)
    left_idx = np.maximum(i2, 0, out=i2)
    np.take(current, right_idx, out=f2, mode="clip")
    np.multiply(delta, f2, out=f2)                   # delta * current[right]
    d_head = _masked_segment_sums(f2, head, f1, offsets)
    np.take(current, left_idx, out=f2, mode="clip")
    np.multiply(delta, f2, out=f2)                   # delta * current[left]
    d_tail = _masked_segment_sums(f2, tail, f1, offsets)

    new_sx = sums.sx + d_sx
    new_sxl = sums.sxl + d_sxl
    new_sx2 = sums.sx2 + d_sx2
    new_sx2l = sums.sx2l + d_sx2l
    # Summed in the same association order as the single-change kernel so
    # single-position segments stay bit-identical to it.
    new_sxxl = (sums.sxxl + d_head) + d_tail

    cross = _segment_cross_terms(deltas, lens, lags, total, max_len)
    if cross is not None:
        new_sxxl = new_sxxl + cross

    numerator = counts * new_sxxl - new_sx * new_sxl
    var_head = counts * new_sx2 - new_sx * new_sx
    var_tail = counts * new_sx2l - new_sxl * new_sxl
    acf_new = np.zeros_like(numerator)
    valid = (var_head > 0.0) & (var_tail > 0.0)
    denom = np.sqrt(np.where(valid, var_head * var_tail, 1.0))
    np.divide(numerator, denom, out=acf_new, where=valid)
    return acf_new


class StackedStateLayout:
    """Shared-buffer layout over several :class:`ACFAggregateState` objects.

    :func:`multi_state_contiguous_acf` must gather every segment's aggregate
    vectors and current values from the owning state.  Concatenating those
    per call costs O(total group data) — far more than the requests
    themselves for a lock-step group that runs thousands of rounds.  This
    layout pays the concatenation **once**: every state's ``current`` array
    and per-lag sum vectors are re-homed as views into shared buffers, so
    each kernel call reduces to cheap row gathers.

    Re-homing changes array *identity* only: all state updates are in-place
    (``+=`` / slice assignment), so the views stay coherent and every state
    operation computes bit-identical values on the shared storage.
    """

    __slots__ = ("states", "num_lags", "n_of_state", "value_base",
                 "current_all", "counts", "sx", "sxl", "sx2", "sx2l", "sxxl")

    def __init__(self, states):
        self.states = list(states)
        lags = self.states[0].lags
        num_lags = self.num_lags = lags.size
        group = len(self.states)
        self.n_of_state = np.fromiter((state.n for state in self.states),
                                      dtype=np.int64, count=group)
        self.value_base = np.concatenate(
            ([0], np.cumsum(self.n_of_state)[:-1])).astype(np.int64)
        self.current_all = np.empty(int(self.n_of_state.sum()), dtype=np.float64)
        self.counts = np.empty((group, num_lags), dtype=np.float64)
        self.sx = np.empty((group, num_lags), dtype=np.float64)
        self.sxl = np.empty((group, num_lags), dtype=np.float64)
        self.sx2 = np.empty((group, num_lags), dtype=np.float64)
        self.sx2l = np.empty((group, num_lags), dtype=np.float64)
        self.sxxl = np.empty((group, num_lags), dtype=np.float64)
        for slot, state in enumerate(self.states):
            if state.lags.size != num_lags:
                raise ValueError("all stacked states must track the same max_lag")
            base = int(self.value_base[slot])
            view = self.current_all[base:base + state.n]
            view[:] = state.current
            state._current = view
            sums = state.sums
            self.counts[slot] = sums.counts
            for matrix, name in ((self.sx, "sx"), (self.sxl, "sxl"),
                                 (self.sx2, "sx2"), (self.sx2l, "sx2l"),
                                 (self.sxxl, "sxxl")):
                matrix[slot] = getattr(sums, name)
                setattr(sums, name, matrix[slot])
            sums.counts = self.counts[slot]


def multi_state_contiguous_acf(states, lengths_list, positions_list, deltas_list,
                               *, layout: StackedStateLayout | None = None,
                               slots=None) -> np.ndarray:
    """:func:`batched_contiguous_acf` for several states in one stacked pass.

    The batch engine's lock-step CAMEO driver runs many short series
    simultaneously; each round, every series contributes one ReHeap's worth
    of contiguous-range changes against *its own*
    :class:`~repro.stats.aggregates.ACFAggregateState`.  Evaluating the
    requests state-by-state pays the full NumPy dispatch chain per series —
    which dominates at small ``T·L`` — so this kernel stacks them: one
    ``(ΣT, L)`` masked pass over the concatenated positions, with the
    per-segment aggregate vectors gathered from the owning state.

    Bit-exactness contract: every per-row quantity is elementwise in the row
    (or a per-segment ``reduceat`` over that segment's own positions, in the
    same element order), the per-state cross terms run through the *same*
    :func:`_segment_cross_terms` call — same arguments, including that
    state's own ``max_len`` path selector — the per-state call would make,
    and the masked formulation is the one the per-state kernel's fast path
    is proven bit-identical to.  Row ``s`` therefore equals the matching row
    of ``batched_contiguous_acf(states[i], ...)`` to the last bit, which is
    what keeps lock-step kept-point sets identical to per-series runs.

    Parameters
    ----------
    states:
        One ``ACFAggregateState`` per series; all must track the same number
        of lags (their series lengths may differ).
    lengths_list, positions_list, deltas_list:
        Per-state concatenated segment descriptions, exactly as
        :func:`batched_contiguous_acf` takes them.
    layout, slots:
        Optional :class:`StackedStateLayout` over a superset of ``states``
        plus the layout slot of each entry of ``states``; when given, the
        per-call concatenation of current values and aggregate vectors is
        replaced by row gathers from the shared buffers.

    Returns
    -------
    numpy.ndarray
        ``(sum(len(lengths_i)), L)`` matrix: the per-state result rows
        stacked in input order.
    """
    lags = states[0].lags
    num_lags = lags.size
    for state in states:
        if state.lags.size != num_lags:
            raise ValueError("all stacked states must track the same max_lag")

    lengths_per_state = [np.asarray(lengths, dtype=np.int64)
                         for lengths in lengths_list]
    seg_counts = np.fromiter((lengths.size for lengths in lengths_per_state),
                             dtype=np.int64, count=len(states))
    total_segments = int(seg_counts.sum())
    out = np.empty((total_segments, num_lags), dtype=np.float64)
    if total_segments == 0:
        return out

    seg_base = np.concatenate(([0], np.cumsum(seg_counts)))
    # Zero-length segments take the state's current ACF, as in the
    # per-state kernel.
    for index, lengths in enumerate(lengths_per_state):
        if lengths.size and not bool((lengths > 0).all()):
            rows = np.flatnonzero(lengths == 0) + seg_base[index]
            out[rows] = states[index].acf()

    lens = np.concatenate(lengths_per_state)
    nonzero = lens > 0
    row_index = np.flatnonzero(nonzero)
    if row_index.size == 0:
        return out
    lens_nz = lens[nonzero]
    state_of_seg = np.repeat(np.arange(len(states), dtype=np.int64),
                             seg_counts)[nonzero]
    positions = np.concatenate([np.asarray(p, dtype=np.int64)
                                for p in positions_list])
    deltas = np.concatenate([np.asarray(d, dtype=np.float64)
                             for d in deltas_list])
    offsets = np.concatenate(([0], np.cumsum(lens_nz[:-1])))
    state_of_pos = np.repeat(state_of_seg, lens_nz)

    if layout is not None:
        slots = np.asarray(slots, dtype=np.int64)
        current_all = layout.current_all
        value_base = layout.value_base[slots]
        n_of_state = layout.n_of_state[slots]
    else:
        current_all = np.concatenate([state.current for state in states])
        value_base = np.concatenate(
            ([0], np.cumsum([state.n for state in states])[:-1])).astype(np.int64)
        n_of_state = np.fromiter((state.n for state in states), dtype=np.int64,
                                 count=len(states))
    n_pos = n_of_state[state_of_pos]
    base_pos = value_base[state_of_pos]

    if layout is not None:
        slot_of_seg = slots[state_of_seg]
        counts_rows = layout.counts[slot_of_seg]
        sx_rows = layout.sx[slot_of_seg]
        sxl_rows = layout.sxl[slot_of_seg]
        sx2_rows = layout.sx2[slot_of_seg]
        sx2l_rows = layout.sx2l[slot_of_seg]
        sxxl_rows = layout.sxxl[slot_of_seg]
    else:
        counts_rows = np.stack([state.sums.counts for state in states])[state_of_seg]
        sx_rows = np.stack([state.sums.sx for state in states])[state_of_seg]
        sxl_rows = np.stack([state.sums.sxl for state in states])[state_of_seg]
        sx2_rows = np.stack([state.sums.sx2 for state in states])[state_of_seg]
        sx2l_rows = np.stack([state.sums.sx2l for state in states])[state_of_seg]
        sxxl_rows = np.stack([state.sums.sxxl for state in states])[state_of_seg]

    # Interior/edge partition per segment (against the owning series' own
    # boundaries), mirroring the per-state kernel: interior segments take the
    # cheap unmasked path, edge segments the masked one — bit-identical
    # either way, so the split is purely a cost decision.
    num_segments = lens_nz.size
    seg_n = n_of_state[state_of_seg]
    seg_start_pos = positions[offsets]
    seg_end_pos = positions[offsets + lens_nz - 1]
    interior = (seg_start_pos >= num_lags) & (seg_end_pos + num_lags <= seg_n - 1)

    new_sx = np.empty((num_segments, num_lags), dtype=np.float64)
    new_sxl = np.empty_like(new_sx)
    new_sx2 = np.empty_like(new_sx)
    new_sx2l = np.empty_like(new_sx)
    new_sxxl = np.empty_like(new_sx)

    if bool(interior.any()):
        member = np.repeat(interior, lens_nz)
        sub_lens = lens_nz[interior]
        sub_offsets = np.concatenate(([0], np.cumsum(sub_lens[:-1])))
        sub_deltas = deltas[member]
        gpos = base_pos[member] + positions[member]
        old = current_all[gpos]
        energy = sub_deltas * (2.0 * old + sub_deltas)
        d_seg = np.add.reduceat(sub_deltas, sub_offsets)[:, np.newaxis]
        e_seg = np.add.reduceat(energy, sub_offsets)[:, np.newaxis]
        # Fused head+tail gather, as in the per-state interior path.
        iw = np.empty((gpos.size, 2 * num_lags), dtype=np.int64)
        np.add(gpos[:, np.newaxis], lags[np.newaxis, :], out=iw[:, :num_lags])
        np.subtract(gpos[:, np.newaxis], lags[np.newaxis, :], out=iw[:, num_lags:])
        # Indices are in range by construction; mode="clip" keeps np.take on
        # its fast unchecked path (same trick as the per-state kernel).
        fw = np.take(current_all, iw, mode="clip")
        np.multiply(sub_deltas[:, np.newaxis], fw, out=fw)
        d_both = np.add.reduceat(fw, sub_offsets, axis=0)
        new_sx[interior] = sx_rows[interior] + d_seg
        new_sxl[interior] = sxl_rows[interior] + d_seg
        new_sx2[interior] = sx2_rows[interior] + e_seg
        new_sx2l[interior] = sx2l_rows[interior] + e_seg
        # Same association order as the per-state kernel.
        new_sxxl[interior] = ((sxxl_rows[interior] + d_both[:, :num_lags])
                              + d_both[:, num_lags:])

    if not bool(interior.all()):
        edge = ~interior
        member = np.repeat(edge, lens_nz)
        sub_lens = lens_nz[edge]
        sub_offsets = np.concatenate(([0], np.cumsum(sub_lens[:-1])))
        sub_pos = positions[member]
        sub_base = base_pos[member]
        sub_n = n_pos[member]
        delta_col = deltas[member][:, np.newaxis]
        pos_col = sub_pos[:, np.newaxis]
        i1 = pos_col + lags[np.newaxis, :]                  # pos + lag
        i2 = pos_col - lags[np.newaxis, :]                  # pos - lag
        head = i1 <= (sub_n - 1)[:, np.newaxis]
        tail = i2 >= 0

        own = current_all[sub_base + sub_pos][:, np.newaxis]
        square_term = delta_col * (2.0 * own + delta_col)

        scratch = np.empty((sub_pos.size, num_lags), dtype=np.float64)
        new_sx[edge] = sx_rows[edge] + _masked_segment_sums(
            delta_col, head, scratch, sub_offsets)
        new_sxl[edge] = sxl_rows[edge] + _masked_segment_sums(
            delta_col, tail, scratch, sub_offsets)
        new_sx2[edge] = sx2_rows[edge] + _masked_segment_sums(
            square_term, head, scratch, sub_offsets)
        new_sx2l[edge] = sx2l_rows[edge] + _masked_segment_sums(
            square_term, tail, scratch, sub_offsets)

        # Clip into the owning series' range, then shift into the
        # concatenated value array; values match the per-state clipped
        # ``np.take`` exactly.
        right_idx = np.minimum(i1, (sub_n - 1)[:, np.newaxis])
        np.add(right_idx, sub_base[:, np.newaxis], out=right_idx)
        left_idx = np.maximum(i2, 0)
        np.add(left_idx, sub_base[:, np.newaxis], out=left_idx)
        gathered = np.take(current_all, right_idx, mode="clip")
        np.multiply(delta_col, gathered, out=gathered)
        d_head = _masked_segment_sums(gathered, head, scratch, sub_offsets)
        gathered = np.take(current_all, left_idx, mode="clip")
        np.multiply(delta_col, gathered, out=gathered)
        d_tail = _masked_segment_sums(gathered, tail, scratch, sub_offsets)
        # Same association order as the per-state kernel.
        new_sxxl[edge] = (sxxl_rows[edge] + d_head) + d_tail

    # Cross terms go through the exact per-state call (same ``max_len`` path
    # selector the state's own single-block invocation would use).
    seg_lo = np.concatenate(([0], np.cumsum(np.bincount(
        state_of_seg, minlength=len(states)))))
    pos_lo = np.concatenate(([0], np.cumsum(np.bincount(
        state_of_pos, minlength=len(states)))))
    for index in range(len(states)):
        lo, hi = int(seg_lo[index]), int(seg_lo[index + 1])
        if hi == lo:
            continue
        state_lens = lens_nz[lo:hi]
        max_len = int(state_lens.max())
        if max_len <= 1:
            continue
        plo, phi = int(pos_lo[index]), int(pos_lo[index + 1])
        cross = _segment_cross_terms(deltas[plo:phi], state_lens, lags,
                                     phi - plo, max_len)
        if cross is not None:
            new_sxxl[lo:hi] = new_sxxl[lo:hi] + cross

    numerator = counts_rows * new_sxxl - new_sx * new_sxl
    var_head = counts_rows * new_sx2 - new_sx * new_sx
    var_tail = counts_rows * new_sx2l - new_sxl * new_sxl
    acf_new = np.zeros_like(numerator)
    valid = (var_head > 0.0) & (var_tail > 0.0)
    denom = np.sqrt(np.where(valid, var_head * var_tail, 1.0))
    np.divide(numerator, denom, out=acf_new, where=valid)
    out[row_index] = acf_new
    return out


def initial_interpolation_deltas(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-point delta if each interior point were replaced by the average of
    its immediate neighbours (the linear interpolation at removal time).

    Returns ``(positions, deltas)`` for positions ``1..n-2``; this is the
    ``ΔX`` vector of Algorithm 2.
    """
    positions = np.arange(1, values.size - 1, dtype=np.int64)
    deltas = 0.5 * (values[2:] + values[:-2]) - values[1:-1]
    return positions, deltas


def segment_interpolation_deltas(current: np.ndarray, left: int, right: int
                                 ) -> tuple[int, np.ndarray]:
    """Deltas to re-interpolate every point strictly inside ``(left, right)``.

    ``current`` is the reconstructed series; ``left`` and ``right`` are the
    surviving anchors of the segment after the candidate removal.  Every
    position in between (the candidate plus previously removed points) gets
    the value of the straight line from ``current[left]`` to
    ``current[right]``; the returned deltas are *new minus current* for the
    contiguous range starting at ``left + 1`` (the first returned value).
    """
    if right - left < 2:
        return left + 1, np.empty(0, dtype=np.float64)
    native = _get_native()
    if native is not None and current.flags.c_contiguous:
        return left + 1, native.gap_deltas(current, left, right)
    positions = np.arange(left + 1, right, dtype=np.int64)
    span = float(right - left)
    weights = (positions - left) / span
    new_values = current[left] * (1.0 - weights) + current[right] * weights
    deltas = new_values - current[positions]
    return left + 1, deltas


def segment_interpolation_deltas_batched(current: np.ndarray, lefts, rights
                                         ) -> tuple[np.ndarray, np.ndarray,
                                                    np.ndarray, np.ndarray]:
    """Vectorized :func:`segment_interpolation_deltas` for many gaps at once.

    Returns ``(starts, lengths, positions, deltas)`` in concatenated form:
    segment ``s`` re-interpolates the ``lengths[s]`` consecutive positions
    beginning at ``starts[s]``; ``positions``/``deltas`` hold all segments
    back to back.  Element-for-element the deltas match the per-gap
    function exactly.
    """
    lefts = np.asarray(lefts, dtype=np.int64)
    rights = np.asarray(rights, dtype=np.int64)
    starts = lefts + 1
    lengths = np.maximum(rights - lefts - 1, 0)
    total = int(lengths.sum())
    if total == 0:
        return (starts, lengths, np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))
    repeats = np.repeat(np.arange(lefts.size, dtype=np.int64), lengths)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    intra = np.arange(total, dtype=np.int64) - offsets[repeats]
    positions = starts[repeats] + intra
    span = (rights - lefts).astype(np.float64)[repeats]
    weights = (intra + 1) / span
    left_values = current[lefts[repeats]]
    right_values = current[rights[repeats]]
    new_values = left_values * (1.0 - weights) + right_values * weights
    deltas = new_values - current[positions]
    return starts, lengths, positions, deltas
