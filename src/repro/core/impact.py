"""ACF-impact evaluation (Algorithm 2 and the ReHeap look-ahead).

Two entry points:

* :func:`batched_single_change_impacts` — the vectorised ``GetAllImpact`` of
  Algorithm 2: for many candidate points at once, compute the deviation the
  ACF would suffer if that point alone changed by its interpolation delta.
  Works directly on the per-lag aggregate vectors, so each candidate costs
  O(L) and the whole batch is a handful of NumPy operations per chunk.
* :func:`segment_interpolation_deltas` — the exact multi-point deltas used in
  the inner loop: when point ``i`` is removed, every already-removed point in
  the surviving gap ``(left, right)`` is re-interpolated on the new segment.

The deviation measure ``D`` is vectorised for the common metrics (MAE,
Chebyshev, RMSE/MSE); any other callable falls back to a row-wise loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..metrics import get_metric
from ..stats.aggregates import ACFAggregateState

__all__ = [
    "metric_rowwise",
    "batched_single_change_impacts",
    "segment_interpolation_deltas",
    "initial_interpolation_deltas",
]

_VECTORISED_METRICS = {"mae", "cheb", "chebyshev", "max", "rmse", "mse"}


def metric_rowwise(metric, reference: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Evaluate ``D(reference, row)`` for every row of ``candidates``.

    ``metric`` may be a registered metric name or a callable ``(x, y) ->
    float``.  Common names use closed-form NumPy expressions; callables are
    applied row by row.
    """
    candidates = np.atleast_2d(candidates)
    if isinstance(metric, str):
        name = metric.strip().lower()
        if name in _VECTORISED_METRICS:
            diff = candidates - reference[np.newaxis, :]
            if name == "mae":
                return np.mean(np.abs(diff), axis=1)
            if name in ("cheb", "chebyshev", "max"):
                return np.max(np.abs(diff), axis=1)
            if name == "mse":
                return np.mean(diff * diff, axis=1)
            return np.sqrt(np.mean(diff * diff, axis=1))
    fn: Callable[..., float] = get_metric(metric)
    return np.array([fn(reference, row) for row in candidates], dtype=np.float64)


def batched_single_change_impacts(state: ACFAggregateState, positions, deltas,
                                  reference: np.ndarray, metric="mae", *,
                                  chunk_size: int = 16384) -> np.ndarray:
    """Deviation of the ACF if each candidate position changed independently.

    Parameters
    ----------
    state:
        The aggregate state whose sums describe the *current* series.
    positions, deltas:
        Candidate positions (into the state's series) and the value change
        each candidate would apply.  Each candidate is evaluated in
        isolation.
    reference:
        The reference ACF vector the deviation is measured against (the ACF
        of the *original* series, ``P_L`` in Algorithm 1).
    metric:
        Deviation measure ``D`` (name or callable).
    chunk_size:
        Number of candidates evaluated per NumPy batch; bounds memory at
        ``chunk_size * L`` floats.
    """
    positions = np.asarray(positions, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.float64)
    if positions.shape != deltas.shape:
        raise ValueError("positions and deltas must have the same shape")
    if positions.size == 0:
        return np.empty(0, dtype=np.float64)

    sums = state.sums
    lags = state.lags
    counts = sums.counts
    current = state.current
    n = state.n
    out = np.empty(positions.size, dtype=np.float64)

    for start in range(0, positions.size, chunk_size):
        stop = min(start + chunk_size, positions.size)
        pos = positions[start:stop, np.newaxis]      # (m, 1)
        delta = deltas[start:stop, np.newaxis]       # (m, 1)
        head = pos + lags[np.newaxis, :] <= n - 1    # (m, L) position is in the lag head
        tail = pos - lags[np.newaxis, :] >= 0        # (m, L) position is in the lag tail

        own = current[pos]                           # (m, 1)
        square_term = delta * (2.0 * own + delta)

        new_sx = sums.sx + np.where(head, delta, 0.0)
        new_sxl = sums.sxl + np.where(tail, delta, 0.0)
        new_sx2 = sums.sx2 + np.where(head, square_term, 0.0)
        new_sx2l = sums.sx2l + np.where(tail, square_term, 0.0)

        right_idx = np.minimum(pos + lags[np.newaxis, :], n - 1)
        left_idx = np.maximum(pos - lags[np.newaxis, :], 0)
        new_sxxl = (sums.sxxl
                    + np.where(head, delta * current[right_idx], 0.0)
                    + np.where(tail, delta * current[left_idx], 0.0))

        numerator = counts * new_sxxl - new_sx * new_sxl
        var_head = counts * new_sx2 - new_sx * new_sx
        var_tail = counts * new_sx2l - new_sxl * new_sxl
        acf_new = np.zeros_like(numerator)
        valid = (var_head > 0.0) & (var_tail > 0.0)
        denom = np.sqrt(np.where(valid, var_head * var_tail, 1.0))
        np.divide(numerator, denom, out=acf_new, where=valid)

        out[start:stop] = metric_rowwise(metric, reference, acf_new)
    return out


def initial_interpolation_deltas(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-point delta if each interior point were replaced by the average of
    its immediate neighbours (the linear interpolation at removal time).

    Returns ``(positions, deltas)`` for positions ``1..n-2``; this is the
    ``ΔX`` vector of Algorithm 2.
    """
    positions = np.arange(1, values.size - 1, dtype=np.int64)
    deltas = 0.5 * (values[2:] + values[:-2]) - values[1:-1]
    return positions, deltas


def segment_interpolation_deltas(current: np.ndarray, left: int, right: int
                                 ) -> tuple[int, np.ndarray]:
    """Deltas to re-interpolate every point strictly inside ``(left, right)``.

    ``current`` is the reconstructed series; ``left`` and ``right`` are the
    surviving anchors of the segment after the candidate removal.  Every
    position in between (the candidate plus previously removed points) gets
    the value of the straight line from ``current[left]`` to
    ``current[right]``; the returned deltas are *new minus current* for the
    contiguous range starting at ``left + 1`` (the first returned value).
    """
    if right - left < 2:
        return left + 1, np.empty(0, dtype=np.float64)
    positions = np.arange(left + 1, right, dtype=np.int64)
    span = float(right - left)
    weights = (positions - left) / span
    new_values = current[left] * (1.0 - weights) + current[right] * weights
    deltas = new_values - current[positions]
    return left + 1, deltas
