"""CAMEO core: compressor, impact evaluation, blocking, parallel strategies."""

from .blocking import resolve_blocking_hops
from .compressor import CameoCompressor, CompressionStats, cameo_compress, compress_multivariate
from .custom import GenericStatisticTracker
from .heap import IndexedMinHeap
from .impact import (
    batched_single_change_impacts,
    initial_interpolation_deltas,
    metric_rowwise,
    segment_interpolation_deltas,
)
from .neighbors import NeighborList
from .parallel import CoarseGrainedCameo, FineGrainedCameo, ParallelReport
from .tracker import StatisticTracker

__all__ = [
    "CameoCompressor",
    "CompressionStats",
    "cameo_compress",
    "compress_multivariate",
    "IndexedMinHeap",
    "NeighborList",
    "StatisticTracker",
    "GenericStatisticTracker",
    "resolve_blocking_hops",
    "batched_single_change_impacts",
    "initial_interpolation_deltas",
    "segment_interpolation_deltas",
    "metric_rowwise",
    "CoarseGrainedCameo",
    "FineGrainedCameo",
    "ParallelReport",
]
