"""CAMEO core: compressor, impact evaluation, blocking, parallel strategies."""

from .blocking import resolve_blocking_hops
from .compressor import CameoCompressor, CompressionStats, cameo_compress, compress_multivariate
from .custom import GenericStatisticTracker
from .heap import IndexedMinHeap
from .impact import (
    ResolvedMetric,
    batched_contiguous_acf,
    batched_single_change_impacts,
    initial_interpolation_deltas,
    metric_rowwise,
    resolve_rowwise_metric,
    segment_interpolation_deltas,
    segment_interpolation_deltas_batched,
)
from .neighbors import NeighborList
from .parallel import CoarseGrainedCameo, FineGrainedCameo, ParallelReport
from .tracker import StatisticTracker

__all__ = [
    "CameoCompressor",
    "CompressionStats",
    "cameo_compress",
    "compress_multivariate",
    "IndexedMinHeap",
    "NeighborList",
    "StatisticTracker",
    "GenericStatisticTracker",
    "resolve_blocking_hops",
    "ResolvedMetric",
    "resolve_rowwise_metric",
    "batched_contiguous_acf",
    "batched_single_change_impacts",
    "initial_interpolation_deltas",
    "segment_interpolation_deltas",
    "segment_interpolation_deltas_batched",
    "metric_rowwise",
    "CoarseGrainedCameo",
    "FineGrainedCameo",
    "ParallelReport",
]
