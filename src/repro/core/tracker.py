"""Statistic tracking facade used by the CAMEO compressor.

The compressor itself is agnostic about *which* statistic is being preserved
and *on which* series (raw vs. tumbling-window aggregates).  The tracker
wraps the incremental aggregate states from :mod:`repro.stats` and exposes a
tiny interface:

* ``reference`` — the statistic of the original series (``P_L``),
* ``current_statistic()`` — the statistic of the current reconstruction,
* ``preview(positions, deltas)`` — statistic after hypothetical changes,
* ``apply(positions, deltas)`` — commit changes,
* ``initial_impacts(metric)`` — Algorithm 2's vectorised initial heap keys,
* ``batch_impacts_segments(...)`` — the fused ReHeap evaluation: impacts of
  many contiguous-range changes in one vectorized pass.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..stats.aggregates import ACFAggregateState
from ..stats.pacf import pacf_from_acf, pacf_from_acf_batched
from ..stats.windowed import AggregatedACFState
from .impact import (
    batched_contiguous_acf,
    batched_single_change_impacts,
    initial_interpolation_deltas,
    resolve_rowwise_metric,
)

__all__ = ["StatisticTracker", "SUPPORTED_STATISTICS"]

SUPPORTED_STATISTICS = ("acf", "pacf")


class StatisticTracker:
    """Tracks the ACF or PACF of a (possibly window-aggregated) series."""

    def __init__(self, values: np.ndarray, max_lag: int, *, statistic: str = "acf",
                 agg_window: int = 1, agg: str = "mean"):
        statistic = str(statistic).lower()
        if statistic not in SUPPORTED_STATISTICS:
            raise InvalidParameterError(
                f"unsupported statistic {statistic!r}; choose from {SUPPORTED_STATISTICS}")
        self._statistic = statistic
        self._agg_window = int(agg_window)
        if self._agg_window < 1:
            raise InvalidParameterError("agg_window must be >= 1")
        if self._agg_window == 1:
            self._state: ACFAggregateState | AggregatedACFState = ACFAggregateState(
                values, max_lag)
        else:
            self._state = AggregatedACFState(values, max_lag, self._agg_window, agg)
        self._reference = self.current_statistic()

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def statistic(self) -> str:
        """Name of the tracked statistic (``"acf"`` or ``"pacf"``)."""
        return self._statistic

    @property
    def agg_window(self) -> int:
        """Tumbling-window size (1 = statistic on the raw series)."""
        return self._agg_window

    @property
    def reference(self) -> np.ndarray:
        """Statistic of the original, uncompressed series."""
        return self._reference

    @property
    def max_lag(self) -> int:
        """Number of lags of the tracked statistic."""
        return self._state.max_lag

    @property
    def current_values(self) -> np.ndarray:
        """Current reconstructed raw series (do not mutate)."""
        if isinstance(self._state, AggregatedACFState):
            return self._state.current_raw
        return self._state.current

    @property
    def state(self) -> ACFAggregateState | AggregatedACFState:
        """The underlying aggregate state (used by the multi-series kernel)."""
        return self._state

    # ------------------------------------------------------------------ #
    # statistic evaluation
    # ------------------------------------------------------------------ #
    def _to_statistic(self, acf_vector: np.ndarray) -> np.ndarray:
        if self._statistic == "pacf":
            return pacf_from_acf(acf_vector)
        return acf_vector

    def _to_statistic_rows(self, acf_matrix: np.ndarray) -> np.ndarray:
        """Row-wise statistic transform of a ``(k, L)`` ACF matrix.

        For ``statistic="pacf"`` this is the batched Durbin-Levinson kernel
        — one vectorized recursion over all rows, bit-identical to applying
        :func:`repro.stats.pacf.pacf_from_acf` row by row.
        """
        if self._statistic != "pacf":
            return acf_matrix
        return pacf_from_acf_batched(acf_matrix)

    def current_statistic(self) -> np.ndarray:
        """Statistic of the current reconstructed series."""
        return self._to_statistic(self._state.acf())

    def preview(self, start: int, deltas) -> np.ndarray:
        """Statistic after hypothetically changing the contiguous raw range
        ``[start, start + len(deltas))`` by ``deltas`` (no mutation).

        The returned vector may share a reused scratch buffer; consume it
        before the next ``preview`` call.
        """
        return self._to_statistic(self._state.preview_acf_contiguous(start, deltas))

    def apply(self, start: int, deltas) -> None:
        """Commit a contiguous raw-range change to the tracked state."""
        self._state.apply_contiguous(start, deltas)

    def deviation(self, metric, statistic_vector: np.ndarray) -> float:
        """Deviation ``D(reference, statistic_vector)`` for a single vector."""
        return resolve_rowwise_metric(metric).single(self._reference, statistic_vector)

    # ------------------------------------------------------------------ #
    # batched hypothetical impacts (used by the ReHeap step)
    # ------------------------------------------------------------------ #
    def batch_impacts_segments(self, starts, lengths, positions, deltas, metric
                               ) -> np.ndarray:
        """Impacts of many contiguous-range changes in one vectorized pass.

        The hypothetical changes are given in the concatenated form produced
        by :func:`repro.core.impact.segment_interpolation_deltas_batched`:
        change ``s`` alters the ``lengths[s]`` raw positions starting at
        ``starts[s]``; ``positions``/``deltas`` hold every change back to
        back.  Each change is evaluated in isolation against the current
        state.  Zero-length changes get the current deviation.
        """
        metric = resolve_rowwise_metric(metric)
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0:
            return np.empty(0, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float64)

        if self._agg_window == 1:
            acf_matrix = batched_contiguous_acf(self._state, lengths, positions, deltas)
        elif (isinstance(self._state, AggregatedACFState)
              and self._state.agg in ("mean", "sum")):
            window_lengths, window_positions, window_deltas = \
                self._segments_to_window_segments(lengths, positions, deltas)
            acf_matrix = batched_contiguous_acf(
                self._state.inner, window_lengths, window_positions, window_deltas)
        else:
            return self._batch_impacts_fallback(starts, lengths, deltas, metric)
        return metric.rowwise(self._reference,
                              self._to_statistic_rows(acf_matrix),
                              overwrite=True)

    def _segments_to_window_segments(self, lengths: np.ndarray, positions: np.ndarray,
                                     deltas: np.ndarray
                                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Translate concatenated raw segments into window-level segments.

        Exact for additive aggregations (mean/sum): each raw segment's
        positions are grouped by tumbling window, the per-window delta is
        the (scaled) sum of its raw deltas, and the resulting window
        positions are again consecutive within each segment.
        """
        state = self._state
        window = state.window
        num_windows = state.num_windows
        keep = positions < num_windows * window
        segment_ids = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
        kept_positions = positions[keep]
        if kept_positions.size == 0:
            return (np.zeros(lengths.size, dtype=np.int64),
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        kept_deltas = deltas[keep]
        kept_segments = segment_ids[keep]
        window_of = kept_positions // window
        boundary = np.empty(kept_positions.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = ((kept_segments[1:] != kept_segments[:-1])
                        | (window_of[1:] != window_of[:-1]))
        bounds = np.flatnonzero(boundary)
        group_sums = np.add.reduceat(kept_deltas, bounds)
        if state.agg == "mean":
            group_sums = group_sums / window
        window_lengths = np.bincount(kept_segments[bounds], minlength=lengths.size)
        return window_lengths.astype(np.int64), window_of[bounds], group_sums

    def _batch_impacts_fallback(self, starts, lengths, deltas, metric) -> np.ndarray:
        """Per-segment preview loop (max/min aggregations)."""
        starts = np.asarray(starts, dtype=np.int64)
        impacts = np.empty(lengths.size, dtype=np.float64)
        current_deviation: float | None = None
        offset = 0
        for index in range(lengths.size):
            length = int(lengths[index])
            if length == 0:
                if current_deviation is None:
                    current_deviation = self.deviation(metric, self.current_statistic())
                impacts[index] = current_deviation
                continue
            segment = deltas[offset:offset + length]
            offset += length
            impacts[index] = self.deviation(
                metric, self.preview(int(starts[index]), segment))
        return impacts

    def batch_impacts(self, changes: list[tuple[int, np.ndarray]], metric) -> np.ndarray:
        """Impact of several independent hypothetical contiguous changes.

        ``changes`` is a list of ``(start, deltas)`` pairs; kept for API
        compatibility — internally the pairs are concatenated and evaluated
        through :meth:`batch_impacts_segments`.
        """
        if not changes:
            return np.empty(0, dtype=np.float64)
        starts = np.fromiter((int(start) for start, _deltas in changes),
                             dtype=np.int64, count=len(changes))
        parts = [np.asarray(deltas, dtype=np.float64) for _start, deltas in changes]
        lengths = np.fromiter((part.size for part in parts),
                              dtype=np.int64, count=len(parts))
        deltas = np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        total = int(lengths.sum())
        positions = np.empty(total, dtype=np.int64)
        offset = 0
        for start, part in zip(starts, parts):
            positions[offset:offset + part.size] = np.arange(
                start, start + part.size, dtype=np.int64)
            offset += part.size
        return self.batch_impacts_segments(starts, lengths, positions, deltas, metric)

    # ------------------------------------------------------------------ #
    # initial impacts (Algorithm 2)
    # ------------------------------------------------------------------ #
    def initial_impacts(self, metric) -> tuple[np.ndarray, np.ndarray]:
        """Impact of removing each interior point in isolation.

        Returns ``(positions, impacts)`` for positions ``1..n-2``.  The fast
        vectorised path applies when the aggregation is linear (raw series,
        or mean/sum windows) — for both the ACF and the PACF statistic;
        otherwise a per-point preview loop is used (max/min windows).
        """
        metric = resolve_rowwise_metric(metric)
        values = self.current_values
        positions, deltas = initial_interpolation_deltas(values)
        if positions.size == 0:
            return positions, np.empty(0, dtype=np.float64)

        if self._agg_window == 1:
            impacts = self._single_change_impacts(self._state, positions, deltas,
                                                  metric)
            return positions, impacts

        if (isinstance(self._state, AggregatedACFState)
                and self._state.agg in ("mean", "sum")):
            scale = 1.0 / self._state.window if self._state.agg == "mean" else 1.0
            window_positions = positions // self._state.window
            in_range = window_positions < self._state.num_windows
            impacts = np.zeros(positions.size, dtype=np.float64)
            if in_range.any():
                impacts[in_range] = self._single_change_impacts(
                    self._state.inner, window_positions[in_range],
                    deltas[in_range] * scale, metric)
            # Points in the trailing partial window do not move the
            # aggregated ACF at all; their impact is the current deviation.
            if (~in_range).any():
                impacts[~in_range] = self.deviation(metric, self.current_statistic())
            return positions, impacts

        # Generic fallback: per-point preview (max/min aggregations).
        impacts = np.empty(positions.size, dtype=np.float64)
        for index, (position, delta) in enumerate(zip(positions, deltas)):
            stat = self.preview(int(position), np.asarray([delta]))
            impacts[index] = self.deviation(metric, stat)
        return positions, impacts

    def _single_change_impacts(self, state: ACFAggregateState, positions: np.ndarray,
                               deltas: np.ndarray, metric) -> np.ndarray:
        """Impacts of many independent single-point changes on ``state``.

        The ACF statistic uses the closed-form single-change kernel of
        Algorithm 2 directly.  The PACF statistic needs the candidate ACF
        *rows* (to run the batched Durbin-Levinson transform on them), so it
        evaluates the same arithmetic through the contiguous kernel with
        length-1 segments — bit-identical ACF rows — in bounded chunks.
        """
        if self._statistic == "acf":
            return batched_single_change_impacts(state, positions, deltas,
                                                 self._reference, metric)
        chunk_size = 16384
        impacts = np.empty(positions.size, dtype=np.float64)
        for start in range(0, positions.size, chunk_size):
            stop = min(start + chunk_size, positions.size)
            acf_rows = batched_contiguous_acf(
                state, np.ones(stop - start, dtype=np.int64),
                positions[start:stop], deltas[start:stop])
            impacts[start:stop] = metric.rowwise(
                self._reference, self._to_statistic_rows(acf_rows),
                overwrite=True)
        return impacts
