"""Statistic tracking facade used by the CAMEO compressor.

The compressor itself is agnostic about *which* statistic is being preserved
and *on which* series (raw vs. tumbling-window aggregates).  The tracker
wraps the incremental aggregate states from :mod:`repro.stats` and exposes a
tiny interface:

* ``reference`` — the statistic of the original series (``P_L``),
* ``current_statistic()`` — the statistic of the current reconstruction,
* ``preview(positions, deltas)`` — statistic after hypothetical changes,
* ``apply(positions, deltas)`` — commit changes,
* ``initial_impacts(metric)`` — Algorithm 2's vectorised initial heap keys.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..stats.aggregates import ACFAggregateState
from ..stats.pacf import pacf_from_acf
from ..stats.windowed import AggregatedACFState
from .impact import batched_single_change_impacts, initial_interpolation_deltas, metric_rowwise

__all__ = ["StatisticTracker", "SUPPORTED_STATISTICS"]

SUPPORTED_STATISTICS = ("acf", "pacf")


class StatisticTracker:
    """Tracks the ACF or PACF of a (possibly window-aggregated) series."""

    def __init__(self, values: np.ndarray, max_lag: int, *, statistic: str = "acf",
                 agg_window: int = 1, agg: str = "mean"):
        statistic = str(statistic).lower()
        if statistic not in SUPPORTED_STATISTICS:
            raise InvalidParameterError(
                f"unsupported statistic {statistic!r}; choose from {SUPPORTED_STATISTICS}")
        self._statistic = statistic
        self._agg_window = int(agg_window)
        if self._agg_window < 1:
            raise InvalidParameterError("agg_window must be >= 1")
        if self._agg_window == 1:
            self._state: ACFAggregateState | AggregatedACFState = ACFAggregateState(
                values, max_lag)
        else:
            self._state = AggregatedACFState(values, max_lag, self._agg_window, agg)
        self._reference = self.current_statistic()

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def statistic(self) -> str:
        """Name of the tracked statistic (``"acf"`` or ``"pacf"``)."""
        return self._statistic

    @property
    def agg_window(self) -> int:
        """Tumbling-window size (1 = statistic on the raw series)."""
        return self._agg_window

    @property
    def reference(self) -> np.ndarray:
        """Statistic of the original, uncompressed series."""
        return self._reference

    @property
    def max_lag(self) -> int:
        """Number of lags of the tracked statistic."""
        return self._state.max_lag

    @property
    def current_values(self) -> np.ndarray:
        """Current reconstructed raw series (do not mutate)."""
        if isinstance(self._state, AggregatedACFState):
            return self._state.current_raw
        return self._state.current

    # ------------------------------------------------------------------ #
    # statistic evaluation
    # ------------------------------------------------------------------ #
    def _to_statistic(self, acf_vector: np.ndarray) -> np.ndarray:
        if self._statistic == "pacf":
            return pacf_from_acf(acf_vector)
        return acf_vector

    def current_statistic(self) -> np.ndarray:
        """Statistic of the current reconstructed series."""
        return self._to_statistic(self._state.acf())

    def preview(self, start: int, deltas) -> np.ndarray:
        """Statistic after hypothetically changing the contiguous raw range
        ``[start, start + len(deltas))`` by ``deltas`` (no mutation)."""
        return self._to_statistic(self._state.preview_acf_contiguous(start, deltas))

    def apply(self, start: int, deltas) -> None:
        """Commit a contiguous raw-range change to the tracked state."""
        self._state.apply_contiguous(start, deltas)

    def deviation(self, metric, statistic_vector: np.ndarray) -> float:
        """Deviation ``D(reference, statistic_vector)`` for a single vector."""
        return float(metric_rowwise(metric, self._reference, statistic_vector)[0])

    # ------------------------------------------------------------------ #
    # batched hypothetical impacts (used by the ReHeap step)
    # ------------------------------------------------------------------ #
    def batch_impacts(self, changes: list[tuple[int, np.ndarray]], metric) -> np.ndarray:
        """Impact of several independent hypothetical contiguous changes.

        ``changes`` is a list of ``(start, deltas)`` pairs; each is evaluated
        in isolation against the current state.  Single-position changes (the
        overwhelming majority during compression) are evaluated in one
        vectorised pass; longer changes fall back to individual previews.
        """
        if not changes:
            return np.empty(0, dtype=np.float64)
        impacts = np.empty(len(changes), dtype=np.float64)
        singles: list[int] = []
        single_positions: list[int] = []
        single_deltas: list[float] = []
        current_deviation: float | None = None

        fast_acf_direct = self._statistic == "acf" and self._agg_window == 1
        fast_acf_agg = (self._statistic == "acf"
                        and isinstance(self._state, AggregatedACFState)
                        and self._state.agg in ("mean", "sum"))

        for index, (start, deltas) in enumerate(changes):
            deltas = np.asarray(deltas, dtype=np.float64)
            if deltas.size == 0:
                if current_deviation is None:
                    current_deviation = self.deviation(metric, self.current_statistic())
                impacts[index] = current_deviation
                continue
            if fast_acf_direct and deltas.size == 1:
                singles.append(index)
                single_positions.append(int(start))
                single_deltas.append(float(deltas[0]))
                continue
            if fast_acf_agg:
                window_start, window_deltas = self._state._contiguous_window_deltas(
                    int(start), deltas)
                if window_deltas.size == 0:
                    if current_deviation is None:
                        current_deviation = self.deviation(metric, self.current_statistic())
                    impacts[index] = current_deviation
                    continue
                if window_deltas.size == 1:
                    singles.append(index)
                    single_positions.append(int(window_start))
                    single_deltas.append(float(window_deltas[0]))
                    continue
                statistic = self._state.inner.preview_acf_contiguous(
                    window_start, window_deltas)
                impacts[index] = self.deviation(metric, statistic)
                continue
            impacts[index] = self.deviation(metric, self.preview(int(start), deltas))

        if singles:
            target_state = (self._state.inner if fast_acf_agg and not fast_acf_direct
                            else self._state)
            batched = batched_single_change_impacts(
                target_state, np.asarray(single_positions, dtype=np.int64),
                np.asarray(single_deltas, dtype=np.float64), self._reference, metric)
            impacts[np.asarray(singles, dtype=np.int64)] = batched
        return impacts

    # ------------------------------------------------------------------ #
    # initial impacts (Algorithm 2)
    # ------------------------------------------------------------------ #
    def initial_impacts(self, metric) -> tuple[np.ndarray, np.ndarray]:
        """Impact of removing each interior point in isolation.

        Returns ``(positions, impacts)`` for positions ``1..n-2``.  The fast
        vectorised path applies when the statistic is the ACF and the
        aggregation is linear (raw series, or mean/sum windows); otherwise a
        per-point preview loop is used.
        """
        values = self.current_values
        positions, deltas = initial_interpolation_deltas(values)
        if positions.size == 0:
            return positions, np.empty(0, dtype=np.float64)

        if self._statistic == "acf" and self._agg_window == 1:
            impacts = batched_single_change_impacts(
                self._state, positions, deltas, self._reference, metric)
            return positions, impacts

        if (self._statistic == "acf" and isinstance(self._state, AggregatedACFState)
                and self._state.agg in ("mean", "sum")):
            scale = 1.0 / self._state.window if self._state.agg == "mean" else 1.0
            window_positions = positions // self._state.window
            in_range = window_positions < self._state.num_windows
            impacts = np.zeros(positions.size, dtype=np.float64)
            if in_range.any():
                impacts[in_range] = batched_single_change_impacts(
                    self._state.inner, window_positions[in_range],
                    deltas[in_range] * scale, self._reference, metric)
            # Points in the trailing partial window do not move the
            # aggregated ACF at all; their impact is the current deviation.
            if (~in_range).any():
                impacts[~in_range] = self.deviation(metric, self.current_statistic())
            return positions, impacts

        # Generic fallback: per-point preview (PACF and max/min aggregations).
        impacts = np.empty(positions.size, dtype=np.float64)
        for index, (position, delta) in enumerate(zip(positions, deltas)):
            stat = self.preview(int(position), np.asarray([delta]))
            impacts[index] = self.deviation(metric, stat)
        return positions, impacts
