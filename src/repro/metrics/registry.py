"""Name-based metric registry.

CAMEO and the baseline adapters accept a metric either as a callable or as a
string (``"mae"``, ``"cheb"``, ...).  The registry maps those names to the
functions in :mod:`repro.metrics.pointwise` and allows downstream users to
register custom quality measures without touching library code.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import InvalidParameterError
from . import pointwise

MetricFn = Callable[..., float]

_REGISTRY: Dict[str, MetricFn] = {}


def register_metric(name: str, fn: MetricFn, *, overwrite: bool = False) -> None:
    """Register ``fn`` under ``name`` (case-insensitive).

    Parameters
    ----------
    name:
        Lookup key, e.g. ``"mae"``.
    fn:
        Callable ``(x, y) -> float``.
    overwrite:
        Allow replacing an existing registration.  Defaults to ``False`` to
        protect the built-in metrics from accidental shadowing.
    """
    key = name.strip().lower()
    if not key:
        raise InvalidParameterError("metric name must be a non-empty string")
    if key in _REGISTRY and not overwrite:
        raise InvalidParameterError(f"metric {name!r} is already registered")
    if not callable(fn):
        raise InvalidParameterError(f"metric {name!r} must be callable")
    _REGISTRY[key] = fn


def get_metric(metric: str | MetricFn) -> MetricFn:
    """Resolve a metric given by name or return the callable unchanged."""
    if callable(metric):
        return metric
    key = str(metric).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError as exc:
        raise InvalidParameterError(
            f"unknown metric {metric!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_metrics() -> list[str]:
    """Return the sorted list of registered metric names."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    builtin = {
        "mae": pointwise.mae,
        "rmse": pointwise.rmse,
        "nrmse": pointwise.nrmse,
        "mape": pointwise.mape,
        "smape": pointwise.smape,
        "msmape": pointwise.msmape,
        "psnr": pointwise.psnr,
        "cheb": pointwise.chebyshev,
        "chebyshev": pointwise.chebyshev,
        "max": pointwise.chebyshev,
        "pearson": pointwise.pearson_correlation,
    }
    for name, fn in builtin.items():
        register_metric(name, fn, overwrite=True)


_register_builtins()
