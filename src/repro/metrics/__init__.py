"""Quality measures used throughout the paper (Section 2.3).

The module exposes the point-wise reconstruction-error metrics (MAE, RMSE,
NRMSE, mSMAPE, MAPE, PSNR, Chebyshev) as plain functions plus a small string
registry so compressors can be parameterised with a metric name, exactly like
CAMEO's ``D`` argument in the problem definitions.
"""

from .pointwise import (
    chebyshev,
    mae,
    mape,
    mean_error,
    msmape,
    nrmse,
    pearson_correlation,
    psnr,
    rmse,
    smape,
)
from .registry import available_metrics, get_metric, register_metric

__all__ = [
    "mae",
    "rmse",
    "nrmse",
    "msmape",
    "smape",
    "mape",
    "psnr",
    "chebyshev",
    "mean_error",
    "pearson_correlation",
    "get_metric",
    "register_metric",
    "available_metrics",
]
