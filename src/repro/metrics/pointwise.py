"""Point-wise distance and quality measures (paper Section 2.3).

Every function takes two equally sized 1-D arrays (original ``x`` and
approximation ``y``) and returns a scalar ``float``.  The functions are also
used to compare ACF/PACF vectors — the constraint ``D(S(X), S(X'))`` from
Definitions 1-3 — so they are deliberately agnostic about what the arrays
represent.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import InvalidSeriesError

__all__ = [
    "mae",
    "rmse",
    "nrmse",
    "msmape",
    "smape",
    "mape",
    "psnr",
    "chebyshev",
    "mean_error",
    "pearson_correlation",
]


def _pair(x, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a pair of series and return them as equally sized arrays."""
    x = as_float_array(x, name="x")
    y = as_float_array(y, name="y")
    if x.shape != y.shape:
        raise InvalidSeriesError(
            f"x and y must have the same shape, got {x.shape} and {y.shape}"
        )
    return x, y


def mae(x, y) -> float:
    """Mean Absolute Error ``1/n * sum |x_i - y_i|``."""
    x, y = _pair(x, y)
    return float(np.mean(np.abs(x - y)))


def mean_error(x, y) -> float:
    """Signed mean error ``1/n * sum (x_i - y_i)`` (bias of the approximation)."""
    x, y = _pair(x, y)
    return float(np.mean(x - y))


def rmse(x, y) -> float:
    """Root Mean Square Error ``sqrt(1/n * sum (x_i - y_i)^2)``."""
    x, y = _pair(x, y)
    return float(np.sqrt(np.mean((x - y) ** 2)))


def nrmse(x, y) -> float:
    """RMSE normalised by the value range of the original series ``x``.

    Matches the paper's definition ``NRMSE = RMSE / (max(X) - min(X))``.
    A constant original series (including every length-1 series) has zero
    value range, making the quotient undefined; instead of dividing by zero
    the degenerate case returns a documented sentinel: ``0.0`` when the
    approximation is exact and ``inf`` otherwise.  Empty and non-finite
    (NaN/inf) inputs raise
    :class:`~repro.exceptions.InvalidSeriesError`, like every metric here.
    """
    x, y = _pair(x, y)
    value_range = float(np.max(x) - np.min(x))
    error = float(np.sqrt(np.mean((x - y) ** 2)))
    if value_range == 0.0:
        return 0.0 if error == 0.0 else float("inf")
    return error / value_range


def chebyshev(x, y) -> float:
    """Chebyshev (maximum/L-infinity) distance ``max |x_i - y_i|``.

    EXP1 in the paper uses this metric as the ACF-deviation measure inside
    CAMEO; it spreads the error budget evenly over all lags.
    """
    x, y = _pair(x, y)
    return float(np.max(np.abs(x - y)))


def mape(x, y, *, epsilon: float = 1e-12) -> float:
    """Mean Absolute Percentage Error in percent.

    Zero entries in ``x`` are stabilised with ``epsilon`` to keep the metric
    finite; this mirrors common forecasting-library behaviour.
    """
    x, y = _pair(x, y)
    denominator = np.maximum(np.abs(x), epsilon)
    return float(np.mean(np.abs(x - y) / denominator) * 100.0)


def smape(x, y, *, epsilon: float = 1e-12) -> float:
    """Symmetric MAPE with the conventional ``(|x|+|y|)/2`` denominator."""
    x, y = _pair(x, y)
    denominator = (np.abs(x) + np.abs(y)) / 2.0
    denominator = np.maximum(denominator, epsilon)
    return float(np.mean(np.abs(x - y) / denominator))


def msmape(x, y, *, epsilon: float = 1e-12) -> float:
    """Modified Symmetric MAPE as defined in the paper (Section 2.3).

    ``mSMAPE = 1/n * sum |x_i - y_i| / ((|x_i + y_i|)/2 + S_i)`` where ``S_i``
    is the mean absolute deviation of the first ``i-1`` values around their
    running mean.  The stabiliser ``S_i`` prevents the metric from exploding
    for near-zero actuals, which is why the Monash forecasting benchmark uses
    it.  ``S_1`` is defined as 0 (no history); ``epsilon`` guards the fully
    degenerate case where both the values and the history are zero.
    """
    x, y = _pair(x, y)
    n = x.size
    stabiliser = np.zeros(n)
    if n > 1:
        # Running mean of x_1..x_{i-1} and mean absolute deviation around it.
        cumulative = np.cumsum(x)
        counts = np.arange(1, n + 1, dtype=np.float64)
        running_mean = cumulative / counts
        for i in range(1, n):
            stabiliser[i] = np.mean(np.abs(x[:i] - running_mean[i - 1]))
    denominator = np.abs(x + y) / 2.0 + stabiliser
    denominator = np.maximum(denominator, epsilon)
    return float(np.mean(np.abs(x - y) / denominator))


def psnr(x, y) -> float:
    """Peak Signal-to-Noise Ratio in decibels.

    Uses the value range of the original series as the peak signal.  A perfect
    reconstruction returns ``inf``.
    """
    x, y = _pair(x, y)
    mse = float(np.mean((x - y) ** 2))
    if mse == 0.0:
        return float("inf")
    peak = float(np.max(x) - np.min(x))
    if peak == 0.0:
        peak = float(np.max(np.abs(x))) or 1.0
    return float(10.0 * np.log10(peak * peak / mse))


def pearson_correlation(x, y) -> float:
    """Pearson correlation coefficient between two vectors.

    Used by the Figure-1 experiment to correlate feature deviations with the
    impact on forecasting accuracy.  Returns 0.0 when either input is
    constant (correlation undefined).
    """
    x, y = _pair(x, y)
    x_std = float(np.std(x))
    y_std = float(np.std(y))
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
