"""CRC32C (Castagnoli) checksums for the durable storage layer.

Every durable artifact — WAL records, sealed segment files, the manifest's
per-segment references — carries a CRC32C so a flipped bit or a torn write
is *detected* instead of decoding into silently wrong values.  CRC32C is
the polynomial used by iSCSI, ext4 metadata, and LevelDB's log format; the
implementation here is a pure-Python slicing-by-8 table walk (stdlib only,
no compiled dependency), fast enough for segment-sized payloads and
byte-for-byte compatible with hardware CRC32C implementations.

>>> hex(crc32c(b"123456789"))
'0xe3069283'
"""

from __future__ import annotations

__all__ = ["crc32c", "crc32c_hex"]

#: Reflected CRC32C (Castagnoli) polynomial.
_POLY = 0x82F63B78


def _make_tables() -> list[list[int]]:
    """Slicing-by-8 lookup tables (table[0] is the classic byte table)."""
    tables = [[0] * 256 for _ in range(8)]
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
        tables[0][index] = crc
    for index in range(256):
        crc = tables[0][index]
        for slab in range(1, 8):
            crc = (crc >> 8) ^ tables[0][crc & 0xFF]
            tables[slab][index] = crc
    return tables


_TABLES = _make_tables()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a previous ``value``.

    ``crc32c(b + c, crc32c(a)) == crc32c(a + b + c)[-incremental-]`` — the
    running form lets callers checksum streamed writes without buffering.
    """
    crc = (int(value) & 0xFFFFFFFF) ^ 0xFFFFFFFF
    data = memoryview(bytes(data))
    t0, t1, t2, t3, t4, t5, t6, t7 = _TABLES
    length = len(data)
    position = 0
    # Slicing-by-8: fold eight bytes per iteration through eight tables.
    for position in range(0, length - (length % 8), 8):
        b0, b1, b2, b3, b4, b5, b6, b7 = data[position:position + 8]
        crc ^= b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)
        crc = (t7[crc & 0xFF] ^ t6[(crc >> 8) & 0xFF]
               ^ t5[(crc >> 16) & 0xFF] ^ t4[(crc >> 24) & 0xFF]
               ^ t3[b4] ^ t2[b5] ^ t1[b6] ^ t0[b7])
    for byte in data[length - (length % 8):]:
        crc = (crc >> 8) ^ t0[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32c_hex(data: bytes, value: int = 0) -> str:
    """Zero-padded lowercase hex form of :func:`crc32c` (manifest fields)."""
    return f"{crc32c(data, value):08x}"
