"""Persistence of :class:`repro.storage.store.TimeSeriesStore` to disk.

This module is the *format-v1* path: one monolithic ``manifest.json``
holding the catalog of every series — codec specification, segment size,
metadata, the (raw) write-buffer tail, and one entry per sealed segment
with its summary and encoded payload.  The manifest is published with a
tmp-file → fsync → rename swap, so a crash during :func:`save_store`
leaves either the old manifest or the new one, never a torn hybrid.

The crash-consistent sharded layout (format v2, WAL + checksummed segment
files) lives in :mod:`repro.storage.durable`; :func:`load_store` reads
both formats, delegating v2 directories to a
:class:`~repro.storage.durable.DurableStore` recovery scan and returning
the recovered in-memory view.

Payloads are stored in the codec's *encoded* form, so a CAMEO- or
Gorilla-backed store keeps its compression benefit on disk: irregular
segments persist their retained indices/values, XOR codecs persist the bit
stream (hex-encoded), raw segments persist the values.  The
functional-approximation codecs (PMC, SWING, Sim-Piece, FFT) keep closures as
payloads and therefore do not support persistence; attempting to save such a
store raises :class:`repro.exceptions.StorageError` with a pointer to
:meth:`TimeSeriesStore.compact` as the workaround (re-encode with a
persistable codec first).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..codecs.serialize import payload_from_document, payload_to_document
from ..exceptions import StorageError
from .codecs import EncodedChunk, make_codec
from .segment import Segment, SegmentSummary
from .store import TimeSeriesStore

__all__ = ["save_store", "load_store", "MANIFEST_NAME", "FORMAT_VERSION",
           "MAX_FORMAT_VERSION"]

MANIFEST_NAME = "manifest.json"
#: Version written by :func:`save_store` (the monolithic format).
FORMAT_VERSION = 1
#: Newest version :func:`load_store` can read (v2 = the durable layout).
MAX_FORMAT_VERSION = 2


def _codec_spec(codec) -> dict:
    """Build a ``make_codec``-compatible specification for ``codec``."""
    options: dict = {}
    for attribute in ("max_lag", "epsilon", "error_bound", "keep_fraction", "variant"):
        if hasattr(codec, attribute):
            options[attribute] = getattr(codec, attribute)
    extra = getattr(codec, "options", None)
    if isinstance(extra, dict):
        options.update(extra)
    return {"name": codec.name, "options": options}


def _segment_to_document(segment: Segment) -> dict:
    chunk = segment.chunk
    return {
        "start": segment.start,
        "codec": chunk.codec,
        "length": chunk.length,
        "bits": chunk.bits,
        "lossless": chunk.lossless,
        "metadata": chunk.metadata,
        "payload": payload_to_document(chunk.payload),
        "summary": {
            "count": segment.summary.count,
            "minimum": segment.summary.minimum,
            "maximum": segment.summary.maximum,
            "total": segment.summary.total,
        },
    }


def _segment_from_document(document: dict, codec) -> Segment:
    chunk = EncodedChunk(
        codec=str(document["codec"]),
        payload=payload_from_document(document["payload"]),
        length=int(document["length"]),
        bits=int(document["bits"]),
        lossless=bool(document["lossless"]),
        metadata=dict(document.get("metadata", {})))
    summary_doc = document["summary"]
    summary = SegmentSummary(count=int(summary_doc["count"]),
                             minimum=float(summary_doc["minimum"]),
                             maximum=float(summary_doc["maximum"]),
                             total=float(summary_doc["total"]))
    return Segment(int(document["start"]), chunk, codec, summary=summary)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """tmp-file → fsync → rename → directory fsync."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------- #
# public API
# ---------------------------------------------------------------------- #
def save_store(store: TimeSeriesStore, directory) -> Path:
    """Persist ``store`` into ``directory`` (created if missing).

    The manifest is swapped atomically (tmp file + fsync + rename), so an
    interrupted save never corrupts an existing manifest.  Returns the path
    of the written manifest.  Every series must use a codec with a
    serializable encoded form (see module docstring).
    """
    if not isinstance(store, TimeSeriesStore):
        raise StorageError("save_store expects a TimeSeriesStore")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    series_documents = {}
    for name in store.list_series():
        state = store._state(name)  # noqa: SLF001 - persistence is a store companion
        series_documents[name] = {
            "codec": _codec_spec(state.codec),
            "segment_size": state.segment_size,
            "metadata": state.metadata,
            "buffer": list(state.buffer),
            "segments": [_segment_to_document(segment) for segment in state.segments],
        }

    manifest = {
        "format": "repro.timeseries-store",
        "version": FORMAT_VERSION,
        "default_segment_size": store.default_segment_size,
        "series": series_documents,
    }
    path = directory / MANIFEST_NAME
    _atomic_write_bytes(path, json.dumps(manifest, default=float).encode("utf-8"))
    return path


def load_store(directory) -> TimeSeriesStore:
    """Load a store previously written by :func:`save_store`.

    Version-2 (durable-layout) directories are opened through a
    :class:`~repro.storage.durable.DurableStore` recovery scan and the
    recovered in-memory view is returned; mutate a durable store through
    :class:`DurableStore` itself, not through this snapshot.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME if directory.is_dir() else directory
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read store manifest at {path}: {exc}") from exc
    if b"\n#crc32c=" in raw:
        # A checksum footer marks the durable (v2) layout.
        return _load_durable(path.parent)
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(
            f"store manifest at {path} is truncated or not valid JSON: "
            f"{exc}") from exc
    if not isinstance(manifest, dict) or manifest.get(
            "format") != "repro.timeseries-store":
        raise StorageError(f"{path} is not a repro.timeseries-store manifest")
    version = int(manifest.get("version", 0))
    if version > MAX_FORMAT_VERSION:
        raise StorageError(
            f"manifest version {version} is newer than supported "
            f"({MAX_FORMAT_VERSION})")
    if version == MAX_FORMAT_VERSION:
        return _load_durable(path.parent)
    return _store_from_manifest(manifest, path)


def _load_durable(directory: Path) -> TimeSeriesStore:
    from .durable import DurableStore  # circular: durable builds on this module

    store = DurableStore.open(directory)
    memory = store.memory
    store.close()
    return memory


def _store_from_manifest(manifest: dict, path) -> TimeSeriesStore:
    """Build a :class:`TimeSeriesStore` from a parsed v1 manifest document.

    Validates the catalog before trusting it: segment starts must be
    contiguous from 0, every segment's length must agree with its summary
    count, and buffers must be shorter than the segment size.  Violations
    raise :class:`StorageError` naming the offending series and segment.
    """
    series_documents = manifest.get("series", {})
    if not isinstance(series_documents, dict):
        raise StorageError(f"{path}: manifest series catalog is not an object")
    store = TimeSeriesStore(
        default_segment_size=int(manifest.get("default_segment_size", 1_024)))
    for name, document in series_documents.items():
        try:
            _load_series_document(store, str(name), document)
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"{path}: series {name!r} has a malformed manifest entry: "
                f"{exc!r}") from exc
    return store


def _load_series_document(store: TimeSeriesStore, name: str, document) -> None:
    if not isinstance(document, dict):
        raise StorageError(f"series {name!r}: manifest entry is not an object")
    spec = document["codec"]
    codec = make_codec(spec["name"], **spec.get("options", {}))
    segment_size = int(document["segment_size"])
    store.create_series(name, codec=codec, segment_size=segment_size,
                        metadata=dict(document.get("metadata", {})))
    state = store._state(name)  # noqa: SLF001

    position = 0
    for index, segment_doc in enumerate(document.get("segments", [])):
        segment = _segment_from_document(segment_doc, codec)
        if segment.start != position:
            raise StorageError(
                f"series {name!r}: segment {index} starts at {segment.start}, "
                f"expected {position} (segments must be contiguous from 0)")
        if segment.length <= 0:
            raise StorageError(
                f"series {name!r}: segment {index} has non-positive length "
                f"{segment.length}")
        if segment.summary.count != segment.length:
            raise StorageError(
                f"series {name!r}: segment {index} length {segment.length} "
                f"disagrees with its summary count {segment.summary.count}")
        state.segments.append(segment)
        position += segment.length

    buffer = [float(value) for value in document.get("buffer", [])]
    if len(buffer) >= segment_size:
        raise StorageError(
            f"series {name!r}: buffered tail holds {len(buffer)} values but "
            f"the segment size is {segment_size}; a buffer that long should "
            "have been sealed")
    state.buffer = buffer
