"""Persistence of :class:`repro.storage.store.TimeSeriesStore` to disk.

A store is written as one directory:

``manifest.json``
    Catalog of every series — codec specification, segment size, metadata,
    the (raw) write-buffer tail, and one entry per sealed segment with its
    summary and encoded payload.

Payloads are stored in the codec's *encoded* form, so a CAMEO- or
Gorilla-backed store keeps its compression benefit on disk: irregular
segments persist their retained indices/values, XOR codecs persist the bit
stream (hex-encoded), raw segments persist the values.  The
functional-approximation codecs (PMC, SWING, Sim-Piece, FFT) keep closures as
payloads and therefore do not support persistence; attempting to save such a
store raises :class:`repro.exceptions.StorageError` with a pointer to
:meth:`TimeSeriesStore.compact` as the workaround (re-encode with a
persistable codec first).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..codecs.serialize import payload_from_document, payload_to_document
from ..exceptions import StorageError
from .codecs import EncodedChunk, make_codec
from .segment import Segment, SegmentSummary
from .store import TimeSeriesStore

__all__ = ["save_store", "load_store", "MANIFEST_NAME", "FORMAT_VERSION"]

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def _codec_spec(codec) -> dict:
    """Build a ``make_codec``-compatible specification for ``codec``."""
    options: dict = {}
    for attribute in ("max_lag", "epsilon", "error_bound", "keep_fraction", "variant"):
        if hasattr(codec, attribute):
            options[attribute] = getattr(codec, attribute)
    extra = getattr(codec, "options", None)
    if isinstance(extra, dict):
        options.update(extra)
    return {"name": codec.name, "options": options}


def _segment_to_document(segment: Segment) -> dict:
    chunk = segment.chunk
    return {
        "start": segment.start,
        "codec": chunk.codec,
        "length": chunk.length,
        "bits": chunk.bits,
        "lossless": chunk.lossless,
        "metadata": chunk.metadata,
        "payload": payload_to_document(chunk.payload),
        "summary": {
            "count": segment.summary.count,
            "minimum": segment.summary.minimum,
            "maximum": segment.summary.maximum,
            "total": segment.summary.total,
        },
    }


def _segment_from_document(document: dict, codec) -> Segment:
    chunk = EncodedChunk(
        codec=str(document["codec"]),
        payload=payload_from_document(document["payload"]),
        length=int(document["length"]),
        bits=int(document["bits"]),
        lossless=bool(document["lossless"]),
        metadata=dict(document.get("metadata", {})))
    summary_doc = document["summary"]
    summary = SegmentSummary(count=int(summary_doc["count"]),
                             minimum=float(summary_doc["minimum"]),
                             maximum=float(summary_doc["maximum"]),
                             total=float(summary_doc["total"]))
    return Segment(int(document["start"]), chunk, codec, summary=summary)


# ---------------------------------------------------------------------- #
# public API
# ---------------------------------------------------------------------- #
def save_store(store: TimeSeriesStore, directory) -> Path:
    """Persist ``store`` into ``directory`` (created if missing).

    Returns the path of the written manifest.  Every series must use a codec
    with a serializable encoded form (see module docstring).
    """
    if not isinstance(store, TimeSeriesStore):
        raise StorageError("save_store expects a TimeSeriesStore")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    series_documents = {}
    for name in store.list_series():
        state = store._state(name)  # noqa: SLF001 - persistence is a store companion
        series_documents[name] = {
            "codec": _codec_spec(state.codec),
            "segment_size": state.segment_size,
            "metadata": state.metadata,
            "buffer": list(state.buffer),
            "segments": [_segment_to_document(segment) for segment in state.segments],
        }

    manifest = {
        "format": "repro.timeseries-store",
        "version": FORMAT_VERSION,
        "default_segment_size": store.default_segment_size,
        "series": series_documents,
    }
    path = directory / MANIFEST_NAME
    path.write_text(json.dumps(manifest, default=float), encoding="utf-8")
    return path


def load_store(directory) -> TimeSeriesStore:
    """Load a store previously written by :func:`save_store`."""
    directory = Path(directory)
    path = directory / MANIFEST_NAME if directory.is_dir() else directory
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read store manifest at {path}: {exc}") from exc
    if manifest.get("format") != "repro.timeseries-store":
        raise StorageError(f"{path} is not a repro.timeseries-store manifest")
    if int(manifest.get("version", 0)) > FORMAT_VERSION:
        raise StorageError(
            f"manifest version {manifest.get('version')} is newer than supported "
            f"({FORMAT_VERSION})")

    store = TimeSeriesStore(
        default_segment_size=int(manifest.get("default_segment_size", 1_024)))
    for name, document in manifest.get("series", {}).items():
        spec = document["codec"]
        codec = make_codec(spec["name"], **spec.get("options", {}))
        store.create_series(name, codec=codec,
                            segment_size=int(document["segment_size"]),
                            metadata=dict(document.get("metadata", {})))
        state = store._state(name)  # noqa: SLF001
        state.segments = [_segment_from_document(segment_doc, codec)
                          for segment_doc in document.get("segments", [])]
        state.buffer = [float(value) for value in document.get("buffer", [])]
    return store
