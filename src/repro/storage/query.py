"""Query layer over the compression-aware store.

Analytics over compressed time series are the whole point of preserving
statistical features: this module answers point, range, aggregate, windowed
and ACF queries directly against a :class:`repro.storage.store.
TimeSeriesStore`, decoding as little as possible.

Aggregate pushdown
------------------
Every sealed segment carries a :class:`repro.storage.segment.SegmentSummary`
of its reconstruction.  ``sum``/``mean``/``min``/``max``/``count`` queries
whose range fully covers a segment use the summary instead of decoding the
segment; only the partially covered boundary segments (and the write buffer)
are decoded.  :class:`AggregateResult.segments_decoded` exposes how much work
a query actually did, which the storage benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError, StorageError
from ..stats.acf import acf
from ..stats.windowed import tumbling_window_aggregate
from .store import TimeSeriesStore

__all__ = ["AggregateResult", "QueryEngine", "SUPPORTED_AGGREGATES"]

#: Aggregate functions the query engine can push down to segment summaries.
SUPPORTED_AGGREGATES = ("sum", "mean", "min", "max", "count")


@dataclass(frozen=True)
class AggregateResult:
    """Result of an aggregate query plus its execution statistics."""

    value: float
    rows: int
    segments_total: int
    segments_decoded: int
    segments_pruned: int

    @property
    def pushdown_fraction(self) -> float:
        """Share of relevant segments answered from their summary alone."""
        relevant = self.segments_total - self.segments_pruned
        if relevant <= 0:
            return 1.0
        return 1.0 - self.segments_decoded / float(relevant)


class QueryEngine:
    """Read-only analytical queries over a :class:`TimeSeriesStore`."""

    def __init__(self, store: TimeSeriesStore):
        if not isinstance(store, TimeSeriesStore):
            raise InvalidParameterError("store must be a TimeSeriesStore")
        self.store = store

    # ------------------------------------------------------------------ #
    # basic lookups
    # ------------------------------------------------------------------ #
    def point(self, name: str, position: int) -> float:
        """Reconstructed value at one position."""
        return self.store.value_at(name, position)

    def range(self, name: str, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Reconstructed values of ``[start, stop)``."""
        return self.store.read(name, start, stop)

    def latest(self, name: str, count: int) -> np.ndarray:
        """The most recent ``count`` reconstructed values."""
        count = check_positive_int(count, "count")
        total = self.store.length(name)
        return self.store.read(name, max(total - count, 0), total)

    # ------------------------------------------------------------------ #
    # aggregates with segment pushdown
    # ------------------------------------------------------------------ #
    def aggregate(self, name: str, agg: str = "mean", start: int = 0,
                  stop: int | None = None) -> AggregateResult:
        """Aggregate a range, using segment summaries wherever possible."""
        agg = str(agg).lower()
        if agg not in SUPPORTED_AGGREGATES:
            raise InvalidParameterError(
                f"unsupported aggregate {agg!r}; choose from {SUPPORTED_AGGREGATES}")
        total_points = self.store.length(name)
        stop = total_points if stop is None else min(stop, total_points)
        start = max(int(start), 0)
        if start >= stop:
            raise StorageError("aggregate query over an empty range")

        segments = self.store.segments(name)
        rows = 0
        total = 0.0
        minimum = np.inf
        maximum = -np.inf
        decoded = 0
        pruned = 0

        for segment in segments:
            if not segment.overlaps(start, stop):
                pruned += 1
                continue
            if segment.covered_by(start, stop):
                summary = segment.summary
                rows += summary.count
                total += summary.total
                minimum = min(minimum, summary.minimum)
                maximum = max(maximum, summary.maximum)
                continue
            values = segment.slice(start, stop)
            decoded += 1
            rows += values.size
            total += float(np.sum(values))
            minimum = min(minimum, float(np.min(values)))
            maximum = max(maximum, float(np.max(values)))

        sealed_points = sum(segment.length for segment in segments)
        if stop > sealed_points:
            tail = self.store.read(name, max(start, sealed_points), stop)
            if tail.size:
                rows += tail.size
                total += float(np.sum(tail))
                minimum = min(minimum, float(np.min(tail)))
                maximum = max(maximum, float(np.max(tail)))

        if rows == 0:
            raise StorageError("aggregate query matched no values")
        value = {
            "sum": total,
            "mean": total / rows,
            "min": minimum,
            "max": maximum,
            "count": float(rows),
        }[agg]
        return AggregateResult(value=float(value), rows=rows,
                               segments_total=len(segments), segments_decoded=decoded,
                               segments_pruned=pruned)

    # ------------------------------------------------------------------ #
    # windowed and statistical queries
    # ------------------------------------------------------------------ #
    def windowed_aggregate(self, name: str, window: int, agg: str = "mean",
                           start: int = 0, stop: int | None = None) -> np.ndarray:
        """Tumbling-window aggregates of the reconstructed range."""
        window = check_positive_int(window, "window")
        values = self.store.read(name, start, stop)
        if values.size < window:
            raise StorageError(
                f"range has {values.size} values, smaller than the window {window}")
        return tumbling_window_aggregate(values, window, agg)

    def acf(self, name: str, max_lag: int, start: int = 0, stop: int | None = None,
            *, agg_window: int = 1, agg: str = "mean") -> np.ndarray:
        """ACF of the reconstructed range (optionally of window aggregates).

        This is the quantity whose deviation a CAMEO-encoded series bounds,
        so analytics reading the store observe an autocorrelation structure
        within ``epsilon`` of the original ingest.
        """
        max_lag = check_positive_int(max_lag, "max_lag")
        values = self.store.read(name, start, stop)
        if agg_window > 1:
            values = tumbling_window_aggregate(values, agg_window, agg)
        if values.size < 3:
            raise StorageError("range too short for an ACF query")
        return acf(values, min(max_lag, values.size - 1))

    def seasonal_profile(self, name: str, period: int, start: int = 0,
                         stop: int | None = None) -> np.ndarray:
        """Mean value per phase of a seasonal cycle (e.g. hour-of-day profile)."""
        period = check_positive_int(period, "period")
        values = self.store.read(name, start, stop)
        if values.size < period:
            raise StorageError(
                f"range has {values.size} values, smaller than the period {period}")
        usable = values[: values.size - values.size % period]
        return usable.reshape(-1, period).mean(axis=0)
