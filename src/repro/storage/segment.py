"""Sealed storage segments and their pruning summaries.

A :class:`Segment` couples an :class:`repro.storage.codecs.EncodedChunk` with
its global position inside a series and a small :class:`SegmentSummary` of
the *reconstruction*.  The summary is computed once, when the segment is
sealed, so aggregate queries over fully covered segments never need to decode
them again (aggregate pushdown), and range queries can skip segments outside
the requested window (pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import StorageError
from .codecs import EncodedChunk, SegmentCodec

__all__ = ["SegmentSummary", "Segment"]


@dataclass(frozen=True)
class SegmentSummary:
    """Aggregates of a segment's reconstruction, used for query pushdown."""

    count: int
    minimum: float
    maximum: float
    total: float

    @property
    def mean(self) -> float:
        """Mean of the reconstructed segment values."""
        return self.total / float(self.count) if self.count else 0.0

    @classmethod
    def from_values(cls, values: np.ndarray) -> "SegmentSummary":
        """Summarise a reconstructed value chunk."""
        if values.size == 0:
            raise StorageError("cannot summarise an empty segment")
        return cls(count=int(values.size), minimum=float(np.min(values)),
                   maximum=float(np.max(values)), total=float(np.sum(values)))


class Segment:
    """A sealed, immutable run of consecutive values of one series."""

    __slots__ = ("start", "chunk", "summary", "_codec")

    def __init__(self, start: int, chunk: EncodedChunk, codec: SegmentCodec,
                 summary: SegmentSummary | None = None):
        if start < 0:
            raise StorageError("segment start must be >= 0")
        if chunk.length <= 0:
            raise StorageError("segment must contain at least one value")
        self.start = int(start)
        self.chunk = chunk
        self._codec = codec
        if summary is None:
            summary = SegmentSummary.from_values(codec.decode(chunk))
        self.summary = summary

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Number of original values covered by the segment."""
        return int(self.chunk.length)

    @property
    def end(self) -> int:
        """Exclusive global end position."""
        return self.start + self.length

    def contains(self, position: int) -> bool:
        """Whether the global ``position`` falls inside this segment."""
        return self.start <= position < self.end

    def overlaps(self, start: int, stop: int) -> bool:
        """Whether the segment intersects the half-open range ``[start, stop)``."""
        return self.start < stop and start < self.end

    def covered_by(self, start: int, stop: int) -> bool:
        """Whether ``[start, stop)`` fully contains the segment."""
        return start <= self.start and self.end <= stop

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def bits(self) -> int:
        """Encoded size of the segment in bits."""
        return int(self.chunk.bits)

    def decode(self) -> np.ndarray:
        """Reconstruct all values of the segment."""
        values = self._codec.decode(self.chunk)
        if values.size != self.length:
            raise StorageError(
                f"codec {self._codec.name!r} returned {values.size} values, "
                f"expected {self.length}")
        return values

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Reconstructed values of the global range ``[start, stop)`` ∩ segment."""
        if not self.overlaps(start, stop):
            return np.empty(0, dtype=np.float64)
        local_start = max(start, self.start) - self.start
        local_stop = min(stop, self.end) - self.start
        return self.decode()[local_start:local_stop]

    def value_at(self, position: int) -> float:
        """Reconstructed value at one global position."""
        if not self.contains(position):
            raise StorageError(
                f"position {position} outside segment [{self.start}, {self.end})")
        return float(self.decode()[position - self.start])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Segment(start={self.start}, length={self.length}, "
                f"codec={self.chunk.codec!r}, bits={self.bits()})")
