"""Recovery reporting and fsck for the durable store.

Opening a :class:`repro.storage.durable.DurableStore` is always a recovery
scan: the manifest is verified (falling back to the previous manifest when
the current one is corrupt), every referenced segment file is checksummed,
corrupt segments are *quarantined* — moved into ``quarantine/`` with a
machine-readable reason file, never silently dropped and never decoded —
and the shard WALs are replayed up to their last intact record.  The
outcome of all of that is a :class:`RecoveryReport`.

:func:`fsck` is the standalone check: run a full recovery, close the
store, and summarise what was found.  Its exit-code contract (via the CLI
``store fsck`` subcommand) is ``0`` for a clean store and ``4`` when
corruption was found and quarantined/truncated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QuarantinedSegment", "RecoveryReport", "fsck", "recover"]


@dataclass(frozen=True)
class QuarantinedSegment:
    """One corrupt segment moved to ``quarantine/`` during recovery."""

    #: Series the segment belonged to.
    series: str
    #: Manifest-relative path the segment lived at.
    file: str
    #: Machine-readable reason code (``checksum-mismatch`` |
    #: ``truncated-footer`` | ``parse-error`` | ``manifest-mismatch`` |
    #: ``missing-file`` | ``invalid-geometry``).
    reason: str
    #: Human-readable detail for the reason.
    detail: str
    #: Global start position the segment covered.
    start: int
    #: Number of values the segment covered.
    length: int


@dataclass
class RecoveryReport:
    """What a durable-store recovery scan found and did."""

    #: Intact WAL records replayed into series buffers/segments.
    replayed_records: int = 0
    #: Values carried by the replayed records.
    replayed_values: int = 0
    #: Segments sealed (re-sealed) while replaying the WAL.
    resealed_segments: int = 0
    #: Bytes of corrupt/torn WAL tail discarded across all shards.
    truncated_wal_bytes: int = 0
    #: WAL files whose tail had to be truncated.
    truncated_wal_files: int = 0
    #: Reasons the WAL scans stopped early (one per truncated file).
    truncation_reasons: list[str] = field(default_factory=list)
    #: Referenced segment files that passed checksum verification.
    segments_verified: int = 0
    #: Corrupt segments moved to ``quarantine/`` by this recovery.
    quarantined: list[QuarantinedSegment] = field(default_factory=list)
    #: Quarantine holes carried over from earlier recoveries (per manifest).
    prior_holes: int = 0
    #: True when the store was read from a version-1 (monolithic) manifest.
    migrated_from_v1: bool = False
    #: True when ``manifest.json`` was corrupt and ``manifest.json.prev``
    #: was used instead (the corrupt manifest is quarantined).
    used_prev_manifest: bool = False
    #: WAL records naming a series the manifest does not know (only
    #: possible after a ``manifest.json.prev`` fallback); counted, skipped.
    orphan_records: int = 0
    #: WAL generations newer than the manifest's that were replayed —
    #: acknowledged appends that landed after the recovered manifest was
    #: published (``manifest.json.prev`` fallback, or a crash between a
    #: WAL rotation and its manifest swap).
    extra_wal_generations: int = 0
    #: Leftover ``*.tmp`` files from interrupted atomic writes, removed.
    removed_tmp_files: int = 0
    #: Stale (unreferenced) WAL generations removed.
    removed_stale_wals: int = 0

    @property
    def corruption_found(self) -> bool:
        """True when this scan hit any corruption (quarantine/truncation)."""
        return bool(self.quarantined or self.truncated_wal_bytes
                    or self.used_prev_manifest)

    @property
    def clean(self) -> bool:
        """True when the scan found nothing to repair or quarantine."""
        return not self.corruption_found

    def summary(self) -> str:
        """One-paragraph human summary (the CLI's fsck output)."""
        lines = [
            f"replayed {self.replayed_records} WAL records "
            f"({self.replayed_values} values, "
            f"{self.resealed_segments} segments re-sealed)",
            f"verified {self.segments_verified} segment checksums",
        ]
        if self.truncated_wal_bytes:
            lines.append(
                f"truncated {self.truncated_wal_bytes} corrupt WAL bytes "
                f"in {self.truncated_wal_files} file(s)")
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} segment(s):")
            for entry in self.quarantined:
                lines.append(f"  {entry.series}: {entry.file} "
                             f"[{entry.reason}] {entry.detail}")
        if self.prior_holes:
            lines.append(f"{self.prior_holes} quarantine hole(s) recorded "
                         "by earlier recoveries")
        if self.used_prev_manifest:
            lines.append("manifest.json was corrupt; "
                         "recovered from manifest.json.prev")
        if self.orphan_records:
            lines.append(f"skipped {self.orphan_records} WAL record(s) for "
                         "series unknown to the recovered manifest")
        if self.extra_wal_generations:
            lines.append(f"replayed {self.extra_wal_generations} WAL "
                         "generation(s) newer than the recovered manifest")
        if self.migrated_from_v1:
            lines.append("migrated from a version-1 manifest")
        lines.append("store is clean" if self.clean
                     else "corruption was found and contained")
        return "\n".join(lines)


def recover(directory, **options):
    """Open ``directory`` with a full recovery scan.

    Returns ``(store, report)``.  Equivalent to
    ``DurableStore.open(directory, **options)`` followed by reading
    ``store.recovery`` — provided as a function for symmetry with
    :func:`fsck`.
    """
    from .durable import DurableStore

    store = DurableStore.open(directory, **options)
    return store, store.recovery


def fsck(directory, **options) -> RecoveryReport:
    """Run a recovery scan on ``directory`` and return its report.

    The scan repairs what it can (quarantines corrupt segments, truncates
    torn WAL tails, checkpoints the repaired state), so a second fsck of
    the same directory reports clean unless new corruption appeared.
    """
    store, report = recover(directory, **options)
    store.close()
    return report
