"""Storage-facing view of the unified codec layer.

Historically this module owned the codec interface and one adapter per
compression method; that layer now lives in :mod:`repro.codecs` where the
streaming layer, the CLI, and the benchmark harness share it.  What remains
here is the storage vocabulary — a sealed segment's codec is a
``SegmentCodec`` and its encoded form an ``EncodedChunk`` — as thin aliases
over the unified protocol, so existing storage code and user codecs keep
working unchanged:

* :class:`SegmentCodec` *is* :class:`repro.codecs.Codec`;
* :class:`EncodedChunk` *is* :class:`repro.codecs.CompressedBlock`;
* :func:`make_codec` resolves names through the central registry
  (:func:`repro.codecs.get_codec`), so codecs registered anywhere are
  immediately usable as storage codecs — there is no storage-private
  registry anymore.
"""

from __future__ import annotations

from ..codecs import (
    CameoCodec,
    ChimpXorCodec,
    Codec,
    CompressedBlock,
    FftCodec,
    GorillaXorCodec,
    PmcCodec,
    RawCodec,
    SimPieceCodec,
    SimplifierCodec,
    SwingCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from ..codecs.registry import _REGISTRY as _CODEC_REGISTRY  # noqa: F401 - test hook

__all__ = [
    "EncodedChunk",
    "SegmentCodec",
    "RawCodec",
    "GorillaSegmentCodec",
    "ChimpSegmentCodec",
    "CameoSegmentCodec",
    "SimplifierSegmentCodec",
    "PmcSegmentCodec",
    "SwingSegmentCodec",
    "SimPieceSegmentCodec",
    "FftSegmentCodec",
    "make_codec",
    "get_codec",
    "register_codec",
    "available_codecs",
]

#: The storage segment codec interface is the unified codec protocol.
SegmentCodec = Codec

#: A sealed segment's encoded form is a unified compressed block.
EncodedChunk = CompressedBlock

#: Historical storage names for the unified adapters.
GorillaSegmentCodec = GorillaXorCodec
ChimpSegmentCodec = ChimpXorCodec
CameoSegmentCodec = CameoCodec
SimplifierSegmentCodec = SimplifierCodec
PmcSegmentCodec = PmcCodec
SwingSegmentCodec = SwingCodec
SimPieceSegmentCodec = SimPieceCodec
FftSegmentCodec = FftCodec

#: Construct a registered codec by name (central registry lookup).
make_codec = get_codec
