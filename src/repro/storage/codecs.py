"""Unified segment codecs for the storage engine.

The paper motivates CAMEO with the storage and I/O pressure that time series
databases face.  :mod:`repro.storage` provides that substrate: an in-process
storage engine whose segments can be encoded with any of the compression
methods the paper studies.  This module defines the common codec interface
and adapters for

* the raw representation (64 bits per value),
* the lossless codecs (Gorilla, Chimp),
* CAMEO and the ACF-constrained line-simplification baselines, and
* the functional-approximation baselines (PMC, SWING, Sim-Piece, FFT).

Every codec turns a value chunk into an :class:`EncodedChunk` that knows its
size in bits and how to reconstruct the values, so the store can report the
bits/value accounting of Table 2 per series regardless of the chosen method.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..compressors import FFTCompressor, PoorMansCompressionMean, SimPiece, SwingFilter
from ..core import CameoCompressor
from ..data.timeseries import BITS_PER_VALUE_RAW, IrregularSeries
from ..exceptions import InvalidParameterError, StorageError
from ..lossless import ChimpCodec, GorillaCodec
from ..simplify import AcfConstrainedSimplifier, make_simplifier

__all__ = [
    "EncodedChunk",
    "SegmentCodec",
    "RawCodec",
    "GorillaSegmentCodec",
    "ChimpSegmentCodec",
    "CameoSegmentCodec",
    "SimplifierSegmentCodec",
    "PmcSegmentCodec",
    "SwingSegmentCodec",
    "SimPieceSegmentCodec",
    "FftSegmentCodec",
    "make_codec",
    "register_codec",
    "available_codecs",
]


@dataclass
class EncodedChunk:
    """One encoded value chunk plus the accounting the store needs.

    Attributes
    ----------
    codec:
        Name of the codec that produced the chunk.
    payload:
        Codec-specific representation (an :class:`IrregularSeries`, a
        ``(bytes, bit_length, count)`` triple, a coefficient table, ...).
    length:
        Number of original values the chunk represents.
    bits:
        Size of the encoded representation in bits.
    lossless:
        Whether decoding reproduces the original values exactly.
    metadata:
        Codec-specific details (error bounds, achieved deviations, ...).
    """

    codec: str
    payload: object
    length: int
    bits: int
    lossless: bool
    metadata: dict = field(default_factory=dict)

    def bits_per_value(self) -> float:
        """Bits of encoded storage per original value."""
        return self.bits / float(max(self.length, 1))

    def compression_ratio(self) -> float:
        """Raw bits over encoded bits."""
        return (self.length * BITS_PER_VALUE_RAW) / float(max(self.bits, 1))


class SegmentCodec(ABC):
    """Encode/decode interface every storage codec implements."""

    #: Registry / metadata identifier.
    name: str = "codec"
    #: Whether decoding is bit-exact.
    lossless: bool = False

    @abstractmethod
    def encode(self, values) -> EncodedChunk:
        """Encode a chunk of values."""

    @abstractmethod
    def decode(self, chunk: EncodedChunk) -> np.ndarray:
        """Reconstruct the values of an encoded chunk."""

    # ------------------------------------------------------------------ #
    def _check_chunk(self, chunk: EncodedChunk) -> None:
        if chunk.codec != self.name:
            raise StorageError(
                f"chunk was encoded with {chunk.codec!r}, not {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


class RawCodec(SegmentCodec):
    """Identity codec: stores the values verbatim at 64 bits each."""

    name = "raw"
    lossless = True

    def encode(self, values) -> EncodedChunk:
        values = as_float_array(values)
        return EncodedChunk(codec=self.name, payload=values.copy(),
                            length=values.size, bits=values.size * BITS_PER_VALUE_RAW,
                            lossless=True)

    def decode(self, chunk: EncodedChunk) -> np.ndarray:
        self._check_chunk(chunk)
        return np.asarray(chunk.payload, dtype=np.float64).copy()


class _XorSegmentCodec(SegmentCodec):
    """Shared adapter for the bit-level lossless codecs."""

    lossless = True
    _codec_factory: Callable

    def __init__(self) -> None:
        self._codec = self._codec_factory()

    def encode(self, values) -> EncodedChunk:
        values = as_float_array(values)
        payload, bit_length, count = self._codec.encode(values)
        return EncodedChunk(codec=self.name, payload=(payload, bit_length, count),
                            length=count, bits=bit_length, lossless=True)

    def decode(self, chunk: EncodedChunk) -> np.ndarray:
        self._check_chunk(chunk)
        payload, bit_length, count = chunk.payload
        return self._codec.decode(payload, bit_length, count)


class GorillaSegmentCodec(_XorSegmentCodec):
    """Gorilla XOR compression as a storage codec."""

    name = "gorilla"
    _codec_factory = GorillaCodec


class ChimpSegmentCodec(_XorSegmentCodec):
    """Chimp XOR compression as a storage codec."""

    name = "chimp"
    _codec_factory = ChimpCodec


class _IrregularSegmentCodec(SegmentCodec):
    """Shared decode/accounting for codecs producing an IrregularSeries."""

    #: Charge 64 bits per retained value plus 32 bits per retained index,
    #: the honest on-disk accounting for an irregular representation.
    store_indices: bool = True

    def decode(self, chunk: EncodedChunk) -> np.ndarray:
        self._check_chunk(chunk)
        if isinstance(chunk.payload, np.ndarray):
            # Segments too short for line simplification are kept verbatim.
            return np.asarray(chunk.payload, dtype=np.float64).copy()
        return chunk.payload.decompress()

    def _short_chunk(self, values: np.ndarray) -> EncodedChunk:
        """Verbatim chunk for segments too short to simplify (< 4 points)."""
        return EncodedChunk(codec=self.name, payload=values.copy(), length=values.size,
                            bits=values.size * BITS_PER_VALUE_RAW, lossless=True,
                            metadata={"short_segment": True})

    def _chunk_from_irregular(self, result: IrregularSeries) -> EncodedChunk:
        return EncodedChunk(
            codec=self.name, payload=result, length=result.original_length,
            bits=result.bits(store_indices=self.store_indices), lossless=False,
            metadata={"kept_points": len(result),
                      "achieved_deviation": result.metadata.get("achieved_deviation")})


class CameoSegmentCodec(_IrregularSegmentCodec):
    """CAMEO as a storage codec: ACF/PACF-bounded per segment.

    Parameters are forwarded to :class:`repro.core.CameoCompressor`; every
    sealed segment is compressed under the same statistic bound, so the
    deviation guarantee holds per segment.
    """

    name = "cameo"

    def __init__(self, max_lag: int, epsilon: float | None = 0.01, **kwargs):
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.epsilon = epsilon
        self.options = dict(kwargs)
        self._agg_window = int(kwargs.get("agg_window", 1))
        self._compressor = CameoCompressor(max_lag, epsilon, **kwargs)

    def encode(self, values) -> EncodedChunk:
        values = as_float_array(values)
        # Segments shorter than a few aggregation windows cannot track the
        # statistic meaningfully; keep them verbatim (typically only the
        # final, partially filled segment of a series).
        if values.size < max(4, 3 * self._agg_window):
            return self._short_chunk(values)
        return self._chunk_from_irregular(self._compressor.compress(values))


class SimplifierSegmentCodec(_IrregularSegmentCodec):
    """ACF-constrained line-simplification baselines (VW, TP, PIP, RDP)."""

    def __init__(self, method: str, max_lag: int, epsilon: float = 0.01, **kwargs):
        self.method = str(method)
        self.name = self.method.lower()
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.epsilon = epsilon
        self._agg_window = int(kwargs.get("agg_window", 1))
        self._simplifier = AcfConstrainedSimplifier(
            make_simplifier(self.method), max_lag, epsilon, **kwargs)

    def encode(self, values) -> EncodedChunk:
        values = as_float_array(values)
        if values.size < max(4, 3 * self._agg_window):
            return self._short_chunk(values)
        return self._chunk_from_irregular(self._simplifier.compress(values))


class _ModelSegmentCodec(SegmentCodec):
    """Shared adapter for the functional-approximation baselines.

    The payload keeps the :class:`repro.compressors.base.CompressedModel`
    produced by the baseline, so decoding simply calls its reconstruction.
    """

    def encode(self, values) -> EncodedChunk:
        values = as_float_array(values)
        model = self._compressor().compress(values)
        return EncodedChunk(codec=self.name, payload=model, length=values.size,
                            bits=model.bits(), lossless=False,
                            metadata={"stored_values": model.stored_values})

    def decode(self, chunk: EncodedChunk) -> np.ndarray:
        self._check_chunk(chunk)
        return chunk.payload.decompress()

    def _compressor(self):  # pragma: no cover - overridden
        raise NotImplementedError


class PmcSegmentCodec(_ModelSegmentCodec):
    """Poor Man's Compression (constant segments) as a storage codec."""

    name = "pmc"

    def __init__(self, error_bound: float = 0.01, variant: str = "midrange"):
        self.error_bound = float(error_bound)
        self.variant = variant

    def _compressor(self):
        return PoorMansCompressionMean(self.error_bound, variant=self.variant)


class SwingSegmentCodec(_ModelSegmentCodec):
    """SWING filter (connected linear segments) as a storage codec."""

    name = "swing"

    def __init__(self, error_bound: float = 0.01):
        self.error_bound = float(error_bound)

    def _compressor(self):
        return SwingFilter(self.error_bound)


class SimPieceSegmentCodec(_ModelSegmentCodec):
    """Sim-Piece (grouped linear segments) as a storage codec."""

    name = "simpiece"

    def __init__(self, error_bound: float = 0.01):
        self.error_bound = float(error_bound)

    def _compressor(self):
        return SimPiece(self.error_bound)


class FftSegmentCodec(_ModelSegmentCodec):
    """FFT top-coefficient compression as a storage codec."""

    name = "fft"

    def __init__(self, keep_fraction: float = 0.1):
        self.keep_fraction = float(keep_fraction)

    def _compressor(self):
        return FFTCompressor(self.keep_fraction)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_CODEC_REGISTRY: dict[str, Callable[..., SegmentCodec]] = {}


def register_codec(name: str, factory: Callable[..., SegmentCodec]) -> None:
    """Register a codec factory under ``name`` (case-insensitive)."""
    if not callable(factory):
        raise InvalidParameterError("factory must be callable")
    _CODEC_REGISTRY[str(name).lower()] = factory


def available_codecs() -> list[str]:
    """Names of all registered codecs, sorted alphabetically."""
    return sorted(_CODEC_REGISTRY)


def make_codec(name: str, **kwargs) -> SegmentCodec:
    """Construct a registered codec by name, forwarding ``kwargs``.

    Built-in names: ``raw``, ``gorilla``, ``chimp``, ``cameo``, ``vw``,
    ``tps``, ``tpm``, ``pipv``, ``pipe``, ``rdp``, ``pmc``, ``swing``,
    ``simpiece``, ``fft``.
    """
    key = str(name).strip().lower()
    try:
        factory = _CODEC_REGISTRY[key]
    except KeyError as exc:
        raise InvalidParameterError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}") from exc
    return factory(**kwargs)


def _register_builtins() -> None:
    register_codec("raw", RawCodec)
    register_codec("gorilla", GorillaSegmentCodec)
    register_codec("chimp", ChimpSegmentCodec)
    register_codec("cameo", lambda max_lag=24, epsilon=0.01, **kw: CameoSegmentCodec(
        max_lag, epsilon, **kw))
    for method in ("VW", "TPs", "TPm", "PIPv", "PIPe", "RDP"):
        register_codec(method, lambda max_lag=24, epsilon=0.01, _m=method, **kw:
                       SimplifierSegmentCodec(_m, max_lag, epsilon, **kw))
    register_codec("pmc", PmcSegmentCodec)
    register_codec("swing", SwingSegmentCodec)
    register_codec("simpiece", SimPieceSegmentCodec)
    register_codec("fft", FftSegmentCodec)


_register_builtins()
