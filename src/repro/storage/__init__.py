"""Compression-aware time series storage engine.

The paper motivates CAMEO with storage and I/O pressure in time series
databases; this subpackage provides that substrate so the compressor can be
exercised end-to-end: buffered ingest into sealed segments, pluggable codecs
(CAMEO, every baseline, and the lossless codecs), per-series footprint
accounting, and an analytical query layer with aggregate pushdown.
"""

from .codecs import (
    CameoSegmentCodec,
    ChimpSegmentCodec,
    EncodedChunk,
    FftSegmentCodec,
    GorillaSegmentCodec,
    PmcSegmentCodec,
    RawCodec,
    SegmentCodec,
    SimPieceSegmentCodec,
    SimplifierSegmentCodec,
    SwingSegmentCodec,
    available_codecs,
    make_codec,
    register_codec,
)
from .persistence import load_store, save_store
from .query import AggregateResult, QueryEngine, SUPPORTED_AGGREGATES
from .segment import Segment, SegmentSummary
from .store import DEFAULT_SEGMENT_SIZE, SeriesInfo, TimeSeriesStore

__all__ = [
    "EncodedChunk",
    "SegmentCodec",
    "RawCodec",
    "GorillaSegmentCodec",
    "ChimpSegmentCodec",
    "CameoSegmentCodec",
    "SimplifierSegmentCodec",
    "PmcSegmentCodec",
    "SwingSegmentCodec",
    "SimPieceSegmentCodec",
    "FftSegmentCodec",
    "make_codec",
    "register_codec",
    "available_codecs",
    "Segment",
    "SegmentSummary",
    "TimeSeriesStore",
    "SeriesInfo",
    "DEFAULT_SEGMENT_SIZE",
    "QueryEngine",
    "AggregateResult",
    "SUPPORTED_AGGREGATES",
    "save_store",
    "load_store",
]
