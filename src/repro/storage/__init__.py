"""Compression-aware time series storage engine.

The paper motivates CAMEO with storage and I/O pressure in time series
databases; this subpackage provides that substrate so the compressor can be
exercised end-to-end: buffered ingest into sealed segments, pluggable codecs
(CAMEO, every baseline, and the lossless codecs), per-series footprint
accounting, and an analytical query layer with aggregate pushdown.

:class:`DurableStore` adds the crash-consistent on-disk tier: appends are
acknowledged through a per-shard write-ahead log, sealed segments persist
as CRC32C-checksummed sharded files behind an atomically swapped manifest,
and opening a store is a recovery scan that replays the WAL and
quarantines corruption instead of returning it (``docs/storage.md``).
"""

from .codecs import (
    CameoSegmentCodec,
    ChimpSegmentCodec,
    EncodedChunk,
    FftSegmentCodec,
    GorillaSegmentCodec,
    PmcSegmentCodec,
    RawCodec,
    SegmentCodec,
    SimPieceSegmentCodec,
    SimplifierSegmentCodec,
    SwingSegmentCodec,
    available_codecs,
    make_codec,
    register_codec,
)
from .checksum import crc32c, crc32c_hex
from .durable import DurableStore
from .persistence import load_store, save_store
from .query import AggregateResult, QueryEngine, SUPPORTED_AGGREGATES
from .recovery import QuarantinedSegment, RecoveryReport, fsck, recover
from .segment import Segment, SegmentSummary
from .store import DEFAULT_SEGMENT_SIZE, SeriesInfo, TimeSeriesStore
from .wal import WalRecord, WriteAheadLog, scan_wal

__all__ = [
    "EncodedChunk",
    "SegmentCodec",
    "RawCodec",
    "GorillaSegmentCodec",
    "ChimpSegmentCodec",
    "CameoSegmentCodec",
    "SimplifierSegmentCodec",
    "PmcSegmentCodec",
    "SwingSegmentCodec",
    "SimPieceSegmentCodec",
    "FftSegmentCodec",
    "make_codec",
    "register_codec",
    "available_codecs",
    "Segment",
    "SegmentSummary",
    "TimeSeriesStore",
    "SeriesInfo",
    "DEFAULT_SEGMENT_SIZE",
    "QueryEngine",
    "AggregateResult",
    "SUPPORTED_AGGREGATES",
    "save_store",
    "load_store",
    "DurableStore",
    "RecoveryReport",
    "QuarantinedSegment",
    "recover",
    "fsck",
    "WalRecord",
    "WriteAheadLog",
    "scan_wal",
    "crc32c",
    "crc32c_hex",
]
