"""An in-process, compression-aware time series store.

The store keeps one catalog entry per series.  Appended values accumulate in
a small write buffer; once the buffer reaches the series' segment size it is
*sealed*: encoded with the series' codec (CAMEO, a baseline, or a lossless
codec) and turned into an immutable :class:`repro.storage.segment.Segment`.
This mirrors how time series databases (the paper's motivating setting)
organise data into compressed blocks, and lets the benchmarks compare the
storage footprint of every method under identical ingest conditions.

Main operations
---------------
* :meth:`TimeSeriesStore.create_series` / :meth:`drop_series`
* :meth:`TimeSeriesStore.append` — buffered ingest with automatic sealing
* :meth:`TimeSeriesStore.flush` — seal a partial buffer
* :meth:`TimeSeriesStore.read` — reconstruct a value range
* :meth:`TimeSeriesStore.info` — per-series footprint (Table 2 style)
* :meth:`TimeSeriesStore.compact` — re-encode a series with another codec
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..data.timeseries import BITS_PER_VALUE_RAW
from ..exceptions import InvalidParameterError, SeriesNotFoundError, StorageError
from .codecs import SegmentCodec, make_codec
from .segment import Segment

__all__ = ["SeriesInfo", "TimeSeriesStore", "DEFAULT_SEGMENT_SIZE"]

#: Default number of values per sealed segment.
DEFAULT_SEGMENT_SIZE = 1_024


@dataclass
class SeriesInfo:
    """Footprint and layout summary of one stored series."""

    name: str
    codec: str
    points: int
    sealed_points: int
    buffered_points: int
    segments: int
    encoded_bits: int
    raw_bits: int
    metadata: dict = field(default_factory=dict)

    @property
    def bits_per_value(self) -> float:
        """Bits of storage per ingested value (buffered values count as raw)."""
        return self.encoded_bits / float(max(self.points, 1))

    @property
    def compression_ratio(self) -> float:
        """Raw storage bits over actual storage bits."""
        return self.raw_bits / float(max(self.encoded_bits, 1))


@dataclass
class _SeriesState:
    """Internal catalog entry."""

    name: str
    codec: SegmentCodec
    segment_size: int
    segments: list[Segment] = field(default_factory=list)
    buffer: list[float] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    #: Position ranges lost to quarantined (corrupt) segments — recorded by
    #: durable-store recovery as ``{"start", "length", "file", "reason"}``.
    #: Reads overlapping a hole raise instead of silently skipping it.
    holes: list[dict] = field(default_factory=list)

    @property
    def lost_points(self) -> int:
        """Values covered by quarantined segments (position-space only)."""
        return sum(int(hole["length"]) for hole in self.holes)

    @property
    def sealed_points(self) -> int:
        """Global position one past the last sealed (or quarantined) value."""
        return (sum(segment.length for segment in self.segments)
                + self.lost_points)

    @property
    def total_points(self) -> int:
        return self.sealed_points + len(self.buffer)

    def hole_overlapping(self, start: int, stop: int) -> dict | None:
        """The first quarantine hole intersecting ``[start, stop)``, if any."""
        for hole in self.holes:
            hole_start = int(hole["start"])
            hole_stop = hole_start + int(hole["length"])
            if hole_start < stop and start < hole_stop:
                return hole
        return None


class TimeSeriesStore:
    """In-memory, segment-oriented storage engine with pluggable codecs."""

    def __init__(self, *, default_segment_size: int = DEFAULT_SEGMENT_SIZE):
        self.default_segment_size = check_positive_int(
            default_segment_size, "default_segment_size")
        self._catalog: dict[str, _SeriesState] = {}

    # ------------------------------------------------------------------ #
    # catalog management
    # ------------------------------------------------------------------ #
    def create_series(self, name: str, codec="cameo", *, segment_size: int | None = None,
                      codec_options: dict | None = None, metadata: dict | None = None) -> None:
        """Register a new series.

        ``codec`` is either a registered codec name (``codec_options`` are
        forwarded to :func:`repro.storage.codecs.make_codec`) or a
        :class:`SegmentCodec` instance.
        """
        name = self._valid_name(name)
        if name in self._catalog:
            raise StorageError(f"series {name!r} already exists")
        if isinstance(codec, SegmentCodec):
            codec_instance = codec
            if codec_options:
                raise InvalidParameterError(
                    "codec_options only apply when codec is given by name")
        else:
            codec_instance = make_codec(str(codec), **(codec_options or {}))
        segment_size = (self.default_segment_size if segment_size is None
                        else check_positive_int(segment_size, "segment_size"))
        self._catalog[name] = _SeriesState(
            name=name, codec=codec_instance, segment_size=segment_size,
            metadata=dict(metadata or {}))

    def drop_series(self, name: str) -> None:
        """Remove a series and all its segments."""
        self._state(name)
        del self._catalog[name]

    def list_series(self) -> list[str]:
        """Names of all stored series, sorted alphabetically."""
        return sorted(self._catalog)

    def __contains__(self, name: str) -> bool:
        return str(name) in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def append(self, name: str, values) -> int:
        """Append values to a series, sealing full segments along the way.

        Returns the number of segments sealed by this call.  Scalars and
        iterables are both accepted.
        """
        state = self._state(name)
        if np.isscalar(values):
            values = [float(values)]
        values = as_float_array(values, name="values")
        state.buffer.extend(values.tolist())
        sealed = 0
        while len(state.buffer) >= state.segment_size:
            chunk_values = np.asarray(state.buffer[: state.segment_size], dtype=np.float64)
            del state.buffer[: state.segment_size]
            self._seal(state, chunk_values)
            sealed += 1
        return sealed

    def flush(self, name: str | None = None) -> int:
        """Seal any buffered values into (possibly short) segments.

        Flushes one series, or every series when ``name`` is ``None``.
        Returns the number of segments sealed.
        """
        names = [name] if name is not None else self.list_series()
        sealed = 0
        for series_name in names:
            state = self._state(series_name)
            if not state.buffer:
                continue
            chunk_values = np.asarray(state.buffer, dtype=np.float64)
            state.buffer.clear()
            self._seal(state, chunk_values)
            sealed += 1
        return sealed

    def _seal(self, state: _SeriesState, values: np.ndarray) -> None:
        chunk = state.codec.encode(values)
        if chunk.length != values.size:
            raise StorageError(
                f"codec {state.codec.name!r} encoded {chunk.length} values, "
                f"expected {values.size}")
        state.segments.append(Segment(state.sealed_points, chunk, state.codec))

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def length(self, name: str) -> int:
        """Number of ingested values (sealed + buffered)."""
        return self._state(name).total_points

    def segments(self, name: str) -> list[Segment]:
        """The sealed segments of a series, in position order."""
        return list(self._state(name).segments)

    def read(self, name: str, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Reconstruct the values of ``[start, stop)`` (default: everything).

        Lossy codecs return the reconstruction of their compressed segments;
        buffered (not yet sealed) values are returned verbatim.
        """
        state = self._state(name)
        total = state.total_points
        start, stop = self._resolve_range(start, stop, total)
        if start >= stop:
            return np.empty(0, dtype=np.float64)
        hole = state.hole_overlapping(start, stop)
        if hole is not None:
            raise StorageError(
                f"range [{start}, {stop}) of series {name!r} overlaps the "
                f"quarantined segment {hole.get('file', '?')} "
                f"[{hole.get('reason', 'corrupt')}]; the data was corrupt and "
                "is preserved in the store's quarantine/ directory")

        pieces: list[np.ndarray] = []
        for segment in state.segments:
            if segment.start >= stop:
                break
            if not segment.overlaps(start, stop):
                continue
            pieces.append(segment.slice(start, stop))
        sealed_points = state.sealed_points
        if stop > sealed_points and state.buffer:
            buffer_start = max(start, sealed_points) - sealed_points
            buffer_stop = stop - sealed_points
            pieces.append(np.asarray(state.buffer[buffer_start:buffer_stop],
                                     dtype=np.float64))
        if not pieces:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(pieces)

    def value_at(self, name: str, position: int) -> float:
        """Reconstructed value at a single global position."""
        state = self._state(name)
        total = state.total_points
        if not 0 <= position < total:
            raise StorageError(f"position {position} out of range [0, {total})")
        sealed_points = state.sealed_points
        if position >= sealed_points:
            return float(state.buffer[position - sealed_points])
        hole = state.hole_overlapping(position, position + 1)
        if hole is not None:
            raise StorageError(
                f"position {position} of series {name!r} falls inside the "
                f"quarantined segment {hole.get('file', '?')} "
                f"[{hole.get('reason', 'corrupt')}]")
        for segment in state.segments:
            if segment.contains(position):
                return segment.value_at(position)
        raise StorageError(f"no segment covers position {position}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # maintenance and reporting
    # ------------------------------------------------------------------ #
    def info(self, name: str) -> SeriesInfo:
        """Footprint summary of one series (bits/value, compression ratio)."""
        state = self._state(name)
        encoded_bits = sum(segment.bits() for segment in state.segments)
        buffered_bits = len(state.buffer) * BITS_PER_VALUE_RAW
        total_points = state.total_points
        return SeriesInfo(
            name=state.name, codec=state.codec.name, points=total_points,
            sealed_points=state.sealed_points, buffered_points=len(state.buffer),
            segments=len(state.segments), encoded_bits=encoded_bits + buffered_bits,
            raw_bits=total_points * BITS_PER_VALUE_RAW, metadata=dict(state.metadata))

    def compact(self, name: str, *, codec=None, codec_options: dict | None = None,
                segment_size: int | None = None) -> SeriesInfo:
        """Re-encode a series, optionally with a different codec or segment size.

        All sealed segments are decoded and re-ingested through the (new)
        codec in segments of the (new) segment size.  The write buffer is
        flushed first so the compacted series covers every ingested value.
        Note that re-encoding a lossy codec's reconstruction does not recover
        information lost at ingest time.
        """
        state = self._state(name)
        self.flush(name)
        values = self.read(name)
        if codec is None:
            new_codec = state.codec
            if codec_options:
                raise InvalidParameterError(
                    "codec_options require an explicit codec name")
        elif isinstance(codec, SegmentCodec):
            new_codec = codec
        else:
            new_codec = make_codec(str(codec), **(codec_options or {}))
        new_size = (state.segment_size if segment_size is None
                    else check_positive_int(segment_size, "segment_size"))

        state.codec = new_codec
        state.segment_size = new_size
        state.segments = []
        state.buffer = []
        if values.size:
            self.append(name, values)
            self.flush(name)
        return self.info(name)

    def total_bits(self) -> int:
        """Encoded bits across every series (buffered values count as raw)."""
        return sum(self.info(name).encoded_bits for name in self.list_series())

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _state(self, name: str) -> _SeriesState:
        try:
            return self._catalog[str(name)]
        except KeyError as exc:
            raise SeriesNotFoundError(f"series {name!r} does not exist") from exc

    @staticmethod
    def _valid_name(name) -> str:
        name = str(name).strip()
        if not name:
            raise InvalidParameterError("series name must not be empty")
        return name

    @staticmethod
    def _resolve_range(start: int, stop: int | None, total: int) -> tuple[int, int]:
        if start < 0 or (stop is not None and stop < 0):
            raise StorageError("start and stop must be non-negative")
        stop = total if stop is None else min(stop, total)
        start = min(start, total)
        return int(start), int(stop)
