"""Write-ahead log for the durable store's unsealed buffer tails.

A :class:`repro.storage.durable.DurableStore` acknowledges an append once
the values are in its shard's WAL; sealed segments and the manifest are
only updated afterwards.  Losing the buffer tail on a crash would silently
drop acknowledged data, so the WAL is the durability floor: binary,
append-only, one CRC32C per record, replayed front-to-back on recovery and
truncated at the first record that fails its checksum.

Record layout (little-endian)::

    u32  magic       0x4C415752 ("RWAL")
    u64  sequence    per-shard, strictly increasing
    u16  name_len    length of the series name (utf-8 bytes)
    u32  count       number of float64 values
    u8   flags       bit 0: compaction record (see below); others reserved
    ...  name        utf-8 series name
    ...  values      count * 8 bytes (IEEE-754 float64, little-endian)
    u32  crc32c      over every preceding byte of the record

A *compaction* record (flag bit 0) is written at the head of a rotated
WAL generation and re-encodes a series' entire unsealed buffer at
rotation time.  Replay treats it as authoritative — it *replaces* the
series' buffer instead of appending — so a recovery that replays several
generations of one shard (see ``DurableStore._replay_wals``) never
duplicates the values an ordinary append record already carried.

A torn write leaves a truncated final record (header or CRC missing); a
flipped bit fails the CRC.  Both stop the scan at the *previous* record —
the replayed prefix is exactly the acknowledged-durable data, never more.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import StorageError
from ..faultinject import fire_storage
from .checksum import crc32c

__all__ = [
    "FSYNC_POLICIES",
    "RECORD_MAGIC",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "decode_record",
    "encode_record",
    "scan_wal",
]

#: Per-record magic ("RWAL" little-endian), a cheap first corruption check.
RECORD_MAGIC = 0x4C415752

#: Fixed-size record header: magic, sequence, name length, value count,
#: flags byte.
_HEADER = struct.Struct("<IQHIB")
_CRC = struct.Struct("<I")

#: Known record flag bits (bit 0: compaction record).
_FLAG_COMPACTION = 0x01
_KNOWN_FLAGS = _FLAG_COMPACTION

#: Supported WAL fsync policies.
#:
#: ``always``
#:     flush + fsync after every record — every acknowledged append
#:     survives a power loss (the durability contract's default).
#: ``interval``
#:     fsync every ``fsync_interval`` records (and on ``sync``/``close``)
#:     — bounded data loss, amortized fsync cost.
#: ``never``
#:     flush to the OS but never fsync — survives process crashes, not
#:     power loss.  For spools whose source can replay.
FSYNC_POLICIES = ("always", "interval", "never")


@dataclass(frozen=True)
class WalRecord:
    """One acknowledged append: which series received which values.

    ``compaction=True`` marks a rotation's buffer re-encoding — replay
    replaces the series' buffer with these values instead of appending.
    """

    sequence: int
    series: str
    values: np.ndarray
    compaction: bool = False

    def __post_init__(self):
        object.__setattr__(
            self, "values",
            np.ascontiguousarray(np.asarray(self.values, dtype=np.float64)))
        if int(self.sequence) < 0:
            raise StorageError("WAL sequence must be non-negative")


def encode_record(record: WalRecord) -> bytes:
    """Binary form of ``record`` (header + name + values + CRC32C)."""
    name = record.series.encode("utf-8")
    if len(name) > 0xFFFF:
        raise StorageError(
            f"series name too long for a WAL record ({len(name)} bytes)")
    body = (_HEADER.pack(RECORD_MAGIC, int(record.sequence), len(name),
                         int(record.values.size),
                         _FLAG_COMPACTION if record.compaction else 0)
            + name
            + record.values.astype("<f8", copy=False).tobytes())
    return body + _CRC.pack(crc32c(body))


def decode_record(buffer: bytes, offset: int = 0) -> tuple[WalRecord, int]:
    """Decode one record at ``offset``; returns ``(record, next_offset)``.

    Raises :class:`~repro.exceptions.StorageError` on a truncated record,
    a bad magic, or a CRC mismatch — the scan layer turns that into a
    truncation point, it is never silently skipped.
    """
    view = memoryview(buffer)
    if offset + _HEADER.size > len(view):
        raise StorageError("truncated WAL record header")
    magic, sequence, name_len, count, flags = _HEADER.unpack_from(view, offset)
    if magic != RECORD_MAGIC:
        raise StorageError(f"bad WAL record magic {magic:#010x}")
    body_end = offset + _HEADER.size + name_len + count * 8
    if body_end + _CRC.size > len(view):
        raise StorageError("truncated WAL record body")
    (stored_crc,) = _CRC.unpack_from(view, body_end)
    actual_crc = crc32c(bytes(view[offset:body_end]))
    if stored_crc != actual_crc:
        raise StorageError(
            f"WAL record CRC mismatch (stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x})")
    if flags & ~_KNOWN_FLAGS:
        raise StorageError(f"unknown WAL record flags {flags:#04x}")
    name_start = offset + _HEADER.size
    series = bytes(view[name_start:name_start + name_len]).decode("utf-8")
    values = np.frombuffer(view, dtype="<f8", count=count,
                           offset=name_start + name_len).astype(np.float64)
    return WalRecord(sequence=int(sequence), series=series, values=values,
                     compaction=bool(flags & _FLAG_COMPACTION)), \
        body_end + _CRC.size


@dataclass
class WalScan:
    """Result of scanning one WAL file front-to-back."""

    #: The intact record prefix, in file order.
    records: list[WalRecord]
    #: Bytes covered by the intact prefix.
    valid_bytes: int
    #: Bytes past the intact prefix (torn/corrupt tail; 0 when clean).
    truncated_bytes: int
    #: Why the scan stopped early (empty when the file is clean).
    truncation_reason: str = ""


def scan_wal(path) -> WalScan:
    """Scan a WAL file, returning its intact record prefix.

    The scan stops at the first record that is truncated, has a bad magic
    or CRC, or breaks the strictly-increasing sequence invariant; the tail
    beyond that point is reported, never decoded.  A missing file scans as
    empty (a shard that never received an append has no WAL yet).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return WalScan(records=[], valid_bytes=0, truncated_bytes=0)
    except OSError as exc:
        raise StorageError(f"cannot read WAL {path}: {exc}") from exc
    records: list[WalRecord] = []
    offset = 0
    previous_sequence = -1
    while offset < len(data):
        try:
            record, next_offset = decode_record(data, offset)
        except StorageError as exc:
            return WalScan(records=records, valid_bytes=offset,
                           truncated_bytes=len(data) - offset,
                           truncation_reason=str(exc))
        if record.sequence <= previous_sequence:
            return WalScan(records=records, valid_bytes=offset,
                           truncated_bytes=len(data) - offset,
                           truncation_reason=(
                               f"non-monotonic WAL sequence {record.sequence} "
                               f"after {previous_sequence}"))
        previous_sequence = record.sequence
        records.append(record)
        offset = next_offset
    return WalScan(records=records, valid_bytes=offset, truncated_bytes=0)


class WriteAheadLog:
    """Append-only WAL file handle with a configurable fsync policy."""

    def __init__(self, path, *, fsync_policy: str = "always",
                 fsync_interval: int = 16):
        if fsync_policy not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync_policy {fsync_policy!r}; "
                f"choose from {', '.join(FSYNC_POLICIES)}")
        if int(fsync_interval) < 1:
            raise StorageError("fsync_interval must be >= 1")
        self.path = Path(path)
        self.fsync_policy = fsync_policy
        self.fsync_interval = int(fsync_interval)
        self._handle = open(self.path, "ab")
        self._unsynced = 0

    def append(self, record: WalRecord) -> int:
        """Append one record; returns its encoded size in bytes.

        With ``fsync_policy="always"`` the record is durable when this
        returns — that return is the store's acknowledgement point.
        """
        data = encode_record(record)
        data = fire_storage("wal_append", path=self.path, data=data)
        self._handle.write(data)
        self._handle.flush()
        fire_storage("wal_sync", path=self.path)
        if self.fsync_policy == "always":
            os.fsync(self._handle.fileno())
        elif self.fsync_policy == "interval":
            self._unsynced += 1
            if self._unsynced >= self.fsync_interval:
                os.fsync(self._handle.fileno())
                self._unsynced = 0
        return len(data)

    def sync(self) -> None:
        """Force an fsync regardless of policy (except after close)."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self.fsync_policy != "never":
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        """Sync (per policy) and close the file handle."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
