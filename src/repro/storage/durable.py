"""Crash-consistent durable store: WAL + checksummed segments + manifest.

:class:`DurableStore` wraps the in-memory
:class:`~repro.storage.store.TimeSeriesStore` with an on-disk layout built
for crashes (ARIES/LevelDB-style write-ahead discipline applied to the
paper's compressed-block model)::

    <root>/
      manifest.json            atomic catalog (CRC32C footer, tmp->fsync->
      manifest.json.prev       rename swap; .prev is the last-known-good
                               fallback for torn manifest publications)
      segments/<shard>/<series>/seg-000000.json
                               one sealed segment per file: the codec-encoded
                               block document plus a CRC32C footer covering
                               payload + summary + metadata
      wal/shard-<shard>.<generation>.wal
                               per-shard append WAL holding the unsealed
                               buffer tails (see repro.storage.wal)
      quarantine/              corrupt segments moved here by recovery, each
                               with a machine-readable .reason.json sidecar

Durability contract
-------------------
* ``append`` returns only after the values are in the shard WAL (fsynced
  under ``fsync_policy="always"``) — that return is the acknowledgement.
* Sealed segments and the manifest are updated *after* the WAL, via
  tmp-file → fsync → rename → directory fsync, so a crash at any point
  leaves either the old or the new state, never a torn hybrid.
* A checkpoint (triggered by sealing or ``flush``) rotates the shard WAL
  to a fresh generation holding only the current buffers; the manifest
  references segment files by name + checksum and the WAL generation, so
  recovery replays exactly the not-yet-sealed tail.
* Opening a store is always a recovery scan (see
  :mod:`repro.storage.recovery`): checksums verified, corrupt segments
  quarantined with a reason (reads of their range *raise*, they are never
  silently dropped), torn WAL tails truncated at the last intact record.

Every write-path syncpoint calls :func:`repro.faultinject.fire_storage`,
so the kill-at-every-syncpoint harness in ``tests/storage/`` can prove the
contract by crashing at each site and diffing the reopened store against
the acknowledged state.

Version-1 manifests (the monolithic :func:`repro.storage.persistence.
save_store` format) open transparently: the store is loaded through the
v1 reader and migrated to the v2 layout on the spot.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

import numpy as np

from .._validation import as_float_array
from ..exceptions import StorageError
from ..faultinject import fire_storage
from .checksum import crc32c, crc32c_hex
from .codecs import make_codec
from .persistence import (
    MANIFEST_NAME,
    _codec_spec,
    _segment_from_document,
    _segment_to_document,
    _store_from_manifest,
)
from .recovery import QuarantinedSegment, RecoveryReport
from .store import DEFAULT_SEGMENT_SIZE, TimeSeriesStore
from .wal import (
    FSYNC_POLICIES,
    WalRecord,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

__all__ = [
    "DURABLE_FORMAT_VERSION",
    "DurableStore",
    "PREV_MANIFEST_NAME",
    "QUARANTINE_DIR",
]

#: Manifest version written by :class:`DurableStore`.
DURABLE_FORMAT_VERSION = 2

#: Last-known-good manifest kept beside the live one.
PREV_MANIFEST_NAME = "manifest.json.prev"

#: Directory names inside a durable store root.
SEGMENTS_DIR = "segments"
WAL_DIR = "wal"
QUARANTINE_DIR = "quarantine"

#: Advisory lock file guarding a store root against concurrent handles.
LOCK_NAME = ".lock"

#: Footer marker separating a checksummed file's payload from its CRC32C.
FOOTER_PREFIX = b"\n#crc32c="


# --------------------------------------------------------------------- #
# checksummed file helpers
# --------------------------------------------------------------------- #
def attach_footer(payload: bytes) -> bytes:
    """Append the CRC32C footer line to ``payload``."""
    return payload + FOOTER_PREFIX + crc32c_hex(payload).encode("ascii") + b"\n"


def split_footer(data: bytes) -> tuple[bytes | None, str, str]:
    """Verify a checksummed file's bytes.

    Returns ``(payload, reason, detail)`` — ``payload`` is ``None`` when
    verification fails, with a machine-readable ``reason`` code
    (``truncated-footer`` / ``checksum-mismatch``).
    """
    position = data.rfind(FOOTER_PREFIX)
    if position < 0:
        return None, "truncated-footer", "no checksum footer found"
    payload = bytes(data[:position])
    tail = data[position + len(FOOTER_PREFIX):].strip()
    try:
        stored = int(tail.decode("ascii"), 16)
    except (UnicodeDecodeError, ValueError):
        return None, "truncated-footer", "unparseable checksum footer"
    actual = crc32c(payload)
    if stored != actual:
        return (None, "checksum-mismatch",
                f"stored {stored:08x}, computed {actual:08x}")
    return payload, "", ""


def _read_checksummed_json(path: Path) -> tuple[dict | None, str, str, str]:
    """Read + verify a footer-checksummed JSON file.

    Returns ``(document, payload_crc_hex, reason, detail)``; ``document``
    is ``None`` on any failure.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return None, "", "missing-file", f"{path.name} does not exist"
    except OSError as exc:  # pragma: no cover - environment-specific
        return None, "", "missing-file", str(exc)
    payload, reason, detail = split_footer(data)
    if payload is None:
        return None, "", reason, detail
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return None, "", "parse-error", str(exc)
    if not isinstance(document, dict):
        return None, "", "parse-error", "document is not a JSON object"
    return document, crc32c_hex(payload), "", ""


def _series_slug(name: str) -> str:
    """Filesystem-safe, collision-free directory name for a series."""
    cleaned = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                      for ch in name)[:40] or "series"
    return f"{cleaned}-{crc32c_hex(name.encode('utf-8'))[:8]}"


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DurableStore:
    """Crash-consistent on-disk wrapper around :class:`TimeSeriesStore`.

    Use :meth:`create` for a fresh directory and :meth:`open` for an
    existing one (``open(..., create=True)`` does open-or-create).  Every
    open runs a recovery scan whose findings land in :attr:`recovery`.

    Parameters
    ----------
    fsync_policy:
        WAL durability: ``"always"`` (default — every acknowledged append
        survives power loss), ``"interval"``, or ``"never"``; see
        :data:`repro.storage.wal.FSYNC_POLICIES`.
    shards:
        Number of WAL/segment shard directories (1-256; fixed at store
        creation and recorded in the manifest).

    Examples
    --------
    >>> import numpy as np, tempfile
    >>> root = tempfile.mkdtemp()
    >>> store = DurableStore.create(root, default_segment_size=64)
    >>> store.create_series("sensor", codec="raw")
    >>> _ = store.append("sensor", np.arange(100.0))
    >>> store.close()
    >>> reopened = DurableStore.open(root)
    >>> bool(np.array_equal(reopened.read("sensor"), np.arange(100.0)))
    True
    >>> reopened.recovery.clean
    True
    >>> reopened.close()
    """

    def __init__(self, directory, *, create: bool = False,
                 must_create: bool = False, fsync_policy: str = "always",
                 fsync_interval: int = 16,
                 default_segment_size: int | None = None, shards: int = 8):
        if fsync_policy not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync_policy {fsync_policy!r}; "
                f"choose from {', '.join(FSYNC_POLICIES)}")
        if not 1 <= int(shards) <= 256:
            raise StorageError("shards must be between 1 and 256")
        self.directory = Path(directory)
        self.fsync_policy = fsync_policy
        self.fsync_interval = int(fsync_interval)
        self._closed = False
        self._memory = TimeSeriesStore(
            default_segment_size=default_segment_size or DEFAULT_SEGMENT_SIZE)
        self._shards = int(shards)
        self._series_shard: dict[str, str] = {}
        self._refs: dict[str, list[dict]] = {}
        self._next_file_index: dict[str, int] = {}
        self._generations: dict[str, int] = {}
        self._next_sequence: dict[str, int] = {}
        self._wals: dict[str, WriteAheadLog] = {}
        self._lock_handle = None
        self.recovery = RecoveryReport()

        manifest_path = self.directory / MANIFEST_NAME
        prev_path = self.directory / PREV_MANIFEST_NAME
        exists = manifest_path.exists() or prev_path.exists()
        if must_create and exists:
            raise StorageError(
                f"{self.directory} already contains a store manifest")
        if not exists and not (create or must_create):
            raise StorageError(
                f"no store manifest in {self.directory}; use "
                "DurableStore.create(...) or open(..., create=True)")
        self.directory.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            if not exists:
                self._write_manifest()
            else:
                self._recover()
        except BaseException:
            self._release_lock()
            raise

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, directory, **options) -> "DurableStore":
        """Initialize a fresh durable store (fails on an existing one)."""
        return cls(directory, must_create=True, **options)

    @classmethod
    def open(cls, directory, *, create: bool = False, **options) -> "DurableStore":
        """Open an existing store with a full recovery scan.

        ``create=True`` initializes an empty store when the directory has
        no manifest yet (open-or-create).
        """
        return cls(directory, create=create, **options)

    # ------------------------------------------------------------------ #
    # catalog and ingest
    # ------------------------------------------------------------------ #
    def create_series(self, name: str, codec="cameo", *,
                      segment_size: int | None = None,
                      codec_options: dict | None = None,
                      metadata: dict | None = None) -> None:
        """Register a new series (durably — the manifest is swapped)."""
        self._check_open()
        self._memory.create_series(name, codec, segment_size=segment_size,
                                   codec_options=codec_options,
                                   metadata=metadata)
        name = str(name).strip()
        shard = self._shard_of(name)
        self._series_shard[name] = shard
        self._refs[name] = []
        self._next_file_index[name] = 0
        self._generations.setdefault(shard, 0)
        self._next_sequence.setdefault(shard, 0)
        self._write_manifest()

    def append(self, name, values) -> int:
        """Durably append values; returns the number of segments sealed.

        The values are acknowledged once they are in the shard WAL (fsynced
        under ``fsync_policy="always"``); sealing and the manifest swap
        happen after, and a crash anywhere in between is recovered by WAL
        replay on the next open.
        """
        self._check_open()
        name = str(name)
        self._memory._state(name)  # noqa: SLF001 - existence check
        if np.isscalar(values):
            values = [float(values)]
        if np.asarray(values, dtype=np.float64).size == 0:
            return 0  # an empty append is acknowledged trivially
        values = as_float_array(values, name="values")
        shard = self._series_shard[name]
        sequence = self._next_sequence[shard]
        self._wal(shard).append(
            WalRecord(sequence=sequence, series=name, values=values))
        self._next_sequence[shard] = sequence + 1
        sealed = self._memory.append(name, values)
        if sealed:
            self._checkpoint({shard})
        return sealed

    def flush(self, name: str | None = None) -> int:
        """Seal buffered values into (possibly short) segments, durably."""
        self._check_open()
        names = [str(name)] if name is not None else self.list_series()
        shards: set[str] = set()
        sealed = 0
        for series_name in names:
            state = self._memory._state(series_name)  # noqa: SLF001
            if not state.buffer:
                continue
            sealed += self._memory.flush(series_name)
            shards.add(self._series_shard[series_name])
        if shards:
            self._checkpoint(shards)
        return sealed

    # ------------------------------------------------------------------ #
    # reads (delegated to the in-memory store)
    # ------------------------------------------------------------------ #
    @property
    def memory(self) -> TimeSeriesStore:
        """The in-memory store view (for the query engine and reporting)."""
        return self._memory

    def list_series(self) -> list[str]:
        """Names of all stored series, sorted alphabetically."""
        return self._memory.list_series()

    def __contains__(self, name: str) -> bool:
        return name in self._memory

    def __len__(self) -> int:
        return len(self._memory)

    def read(self, name, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Reconstruct ``[start, stop)``; raises on quarantined ranges."""
        return self._memory.read(name, start, stop)

    def value_at(self, name, position: int) -> float:
        """Reconstructed value at one global position."""
        return self._memory.value_at(name, position)

    def length(self, name) -> int:
        """Number of ingested values (sealed + quarantined + buffered)."""
        return self._memory.length(name)

    def info(self, name):
        """Per-series footprint summary (see :class:`SeriesInfo`)."""
        return self._memory.info(name)

    def holes(self, name) -> list[dict]:
        """Quarantined position ranges of a series (empty when intact)."""
        return [dict(hole)
                for hole in self._memory._state(str(name)).holes]  # noqa: SLF001

    @property
    def quarantine_dir(self) -> Path:
        """Directory holding quarantined segment files and reasons."""
        return self.directory / QUARANTINE_DIR

    def metadata(self, name) -> dict:
        """A copy of one series' metadata dict."""
        return dict(self._memory._state(str(name)).metadata)  # noqa: SLF001

    def update_metadata(self, entries: dict) -> None:
        """Durably merge metadata updates into one or more series.

        ``entries`` maps series name to a dict of metadata keys to merge;
        a single manifest swap publishes every update.  Unknown series
        raise before anything is modified.
        """
        self._check_open()
        states = [(self._memory._state(str(name)), dict(updates))  # noqa: SLF001
                  for name, updates in entries.items()]
        if not states:
            return
        for state, updates in states:
            state.metadata.update(updates)
        self._write_manifest()

    def drop_series(self, name: str) -> None:
        """Durably remove a series: manifest entry, segments, WAL records.

        The shard WAL is rotated (so stale records for the dropped series
        are never replayed), the manifest is swapped without the series,
        and only then are its segment files unlinked — a crash in between
        leaks unreferenced files, it never resurrects the series.
        """
        self._check_open()
        name = str(name)
        self._memory.drop_series(name)
        shard = self._series_shard.pop(name)
        refs = self._refs.pop(name, [])
        self._next_file_index.pop(name, None)
        self._checkpoint({shard})
        for ref in refs:
            try:
                (self.directory / str(ref.get("file", ""))).unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Force-fsync every open WAL handle (regardless of policy)."""
        for wal in self._wals.values():
            wal.sync()

    def close(self) -> None:
        """Close WAL handles and release the store lock.  Buffers stay
        durable in the WAL."""
        if self._closed:
            return
        for wal in self._wals.values():
            wal.close()
        self._wals.clear()
        self._closed = True
        self._release_lock()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        self._release_lock()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("the durable store has been closed")

    def _acquire_lock(self) -> None:
        """Take the root's exclusive advisory lock (one handle per store).

        Two live handles would interleave WAL sequences and each handle's
        manifest swap would silently drop the other's acknowledged state.
        The lock is ``flock``-based, so the OS releases it when a holder
        crashes — a dead writer never wedges recovery.  The holder's PID is
        written into the lock file (best-effort, purely diagnostic) so a
        contention error can name who to look at — typically a service
        restart racing an unfinished drain.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        lock_path = self.directory / LOCK_NAME
        # a+b: creates without truncating — a failed contender must never
        # wipe the holder's PID while losing the flock race.
        handle = open(lock_path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            try:
                handle.seek(0)
                holder = handle.read(64).decode("ascii", "replace").strip()
            except OSError:  # pragma: no cover - unreadable lock file
                holder = ""
            handle.close()
            held_by = (f"held by pid {holder}" if holder
                       else "holder pid unknown")
            raise StorageError(
                f"store at {self.directory} is already open: another "
                f"DurableStore handle holds the lock at {lock_path} "
                f"({held_by})") from None
        try:
            handle.seek(0)
            handle.truncate()
            handle.write(str(os.getpid()).encode("ascii"))
            handle.flush()
        except OSError:  # pragma: no cover - diagnostic only
            pass
        self._lock_handle = handle

    def _release_lock(self) -> None:
        handle = getattr(self, "_lock_handle", None)
        if handle is not None:
            try:
                handle.close()  # closing the fd releases the flock
            except OSError:  # pragma: no cover - already closed
                pass
            self._lock_handle = None

    # ------------------------------------------------------------------ #
    # write path
    # ------------------------------------------------------------------ #
    def _shard_of(self, name: str) -> str:
        return format(crc32c(name.encode("utf-8")) % self._shards, "02x")

    def _series_dir(self, name: str) -> str:
        return f"{SEGMENTS_DIR}/{self._series_shard[name]}/{_series_slug(name)}"

    def _wal_relpath(self, shard: str, generation: int) -> str:
        return f"{WAL_DIR}/shard-{shard}.{generation:06d}.wal"

    def _wal(self, shard: str) -> WriteAheadLog:
        if shard not in self._wals:
            path = self.directory / self._wal_relpath(
                shard, self._generations[shard])
            path.parent.mkdir(parents=True, exist_ok=True)
            self._wals[shard] = WriteAheadLog(
                path, fsync_policy=self.fsync_policy,
                fsync_interval=self.fsync_interval)
        return self._wals[shard]

    def _atomic_write(self, relpath: str, data: bytes, site: str) -> None:
        """tmp-file → fsync → rename → dir fsync, with fault hooks."""
        final = self.directory / relpath
        final.parent.mkdir(parents=True, exist_ok=True)
        data = fire_storage(site, path=relpath, data=data)
        tmp = final.with_name(final.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        fire_storage("before_rename", path=relpath)
        os.replace(tmp, final)
        fire_storage("after_rename", path=relpath)
        _fsync_dir(final.parent)

    def _write_segment(self, name: str, segment) -> dict:
        """Persist one sealed segment; returns its manifest reference."""
        index = self._next_file_index[name]
        self._next_file_index[name] = index + 1
        document = _segment_to_document(segment)
        payload = json.dumps(document, sort_keys=True,
                             default=float).encode("utf-8")
        relpath = f"{self._series_dir(name)}/seg-{index:06d}.json"
        self._atomic_write(relpath, attach_footer(payload),
                           site="segment_write")
        summary = segment.summary
        return {
            "file": relpath,
            "crc32c": crc32c_hex(payload),
            "start": int(segment.start),
            "length": int(segment.length),
            "summary": {"count": summary.count, "minimum": summary.minimum,
                        "maximum": summary.maximum, "total": summary.total},
        }

    def _manifest_document(self) -> dict:
        series_documents = {}
        for name in self._memory.list_series():
            state = self._memory._state(name)  # noqa: SLF001
            series_documents[name] = {
                "codec": _codec_spec(state.codec),
                "segment_size": state.segment_size,
                "metadata": state.metadata,
                "shard": self._series_shard[name],
                "segments": self._refs[name],
                "holes": state.holes,
                "next_segment_file": self._next_file_index[name],
            }
        return {
            "format": "repro.timeseries-store",
            "version": DURABLE_FORMAT_VERSION,
            "default_segment_size": self._memory.default_segment_size,
            "shards": self._shards,
            "wal": {shard: {"generation": generation,
                            "next_sequence": self._next_sequence.get(shard, 0)}
                    for shard, generation in sorted(self._generations.items())},
            "series": series_documents,
        }

    def _write_manifest(self) -> None:
        """Atomic manifest swap, preserving the previous one as fallback."""
        payload = json.dumps(self._manifest_document(), sort_keys=True,
                             default=float).encode("utf-8")
        final = self.directory / MANIFEST_NAME
        if final.exists():
            # Keep the last-known-good manifest: a torn publication of the
            # new one (non-atomic rename, injected torn_write) must not
            # leave the store unopenable.  Verify the current manifest
            # first — copying externally corrupted bytes over a good
            # fallback would destroy the last recovery path.
            document, _reason = self._parse_manifest_file(final)
            if document is not None:
                prev = self.directory / PREV_MANIFEST_NAME
                with open(prev, "wb") as handle:
                    handle.write(final.read_bytes())
                    handle.flush()
                    os.fsync(handle.fileno())
        self._atomic_write(MANIFEST_NAME, attach_footer(payload),
                           site="manifest_write")

    def _rotate_wal(self, shard: str) -> int:
        """Write the next WAL generation holding only current buffers.

        Returns the superseded generation number.  The new generation is
        not referenced until the following manifest swap, so a crash here
        is invisible to recovery.
        """
        old_generation = self._generations[shard]
        new_generation = old_generation + 1
        records: list[WalRecord] = []
        for name in self._memory.list_series():
            if self._series_shard[name] != shard:
                continue
            buffer = self._memory._state(name).buffer  # noqa: SLF001
            if buffer:
                sequence = self._next_sequence[shard]
                self._next_sequence[shard] = sequence + 1
                records.append(WalRecord(
                    sequence=sequence, series=name,
                    values=np.asarray(buffer, dtype=np.float64),
                    compaction=True))
        blob = b"".join(encode_record(record) for record in records)
        relpath = self._wal_relpath(shard, new_generation)
        path = self.directory / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = fire_storage("wal_compact", path=relpath, data=blob)
        with open(path, "wb") as handle:
            if blob:
                handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(path.parent)
        if shard in self._wals:
            self._wals.pop(shard).close()
        self._generations[shard] = new_generation
        return old_generation

    def _prune_wals(self, shard: str) -> int:
        """Remove WAL generations older than current-1 (best effort).

        The previous generation is kept because ``manifest.json.prev`` may
        still reference it.
        """
        keep = {self._generations[shard], self._generations[shard] - 1}
        removed = 0
        wal_dir = self.directory / WAL_DIR
        for path in wal_dir.glob(f"shard-{shard}.*.wal"):
            try:
                generation = int(path.name.rsplit(".", 2)[-2])
            except ValueError:  # pragma: no cover - foreign file
                continue
            if generation not in keep:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - race/permissions
                    pass
        return removed

    def _checkpoint(self, shards: set[str]) -> None:
        """Persist sealed segments, rotate WALs, swap the manifest."""
        for name in self._memory.list_series():
            if self._series_shard[name] not in shards:
                continue
            state = self._memory._state(name)  # noqa: SLF001
            refs = self._refs[name]
            for segment in state.segments[len(refs):]:
                refs.append(self._write_segment(name, segment))
        superseded = {shard: self._rotate_wal(shard)
                      for shard in sorted(shards)}
        self._write_manifest()
        for shard in superseded:
            self._prune_wals(shard)

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        report = self.recovery
        report.removed_tmp_files = self._remove_tmp_files()
        document, used_prev = self._load_manifest()
        report.used_prev_manifest = used_prev
        version = int(document.get("version", 0))
        if version == 1:
            self._migrate_v1(document)
            return
        if version != DURABLE_FORMAT_VERSION:
            raise StorageError(
                f"manifest version {version} is newer than supported "
                f"({DURABLE_FORMAT_VERSION})")

        self._shards = int(document.get("shards", self._shards))
        self._memory = TimeSeriesStore(default_segment_size=int(
            document.get("default_segment_size", DEFAULT_SEGMENT_SIZE)))
        for shard, info in (document.get("wal") or {}).items():
            self._generations[str(shard)] = int(info.get("generation", 0))
            self._next_sequence[str(shard)] = int(info.get("next_sequence", 0))

        series_items = document.get("series")
        if not isinstance(series_items, dict):
            raise StorageError("manifest has no series catalog")
        for name, entry in series_items.items():
            self._load_series(str(name), entry, report)

        touched = self._replay_wals(report)
        dirty = (bool(report.quarantined) or used_prev
                 or report.removed_tmp_files > 0)
        if touched:
            self._checkpoint(touched)
        elif dirty:
            self._write_manifest()
        report.removed_stale_wals = sum(
            self._prune_wals(shard) for shard in self._generations)

    def _remove_tmp_files(self) -> int:
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.rglob("*.tmp"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - race/permissions
                    pass
        return removed

    def _load_manifest(self) -> tuple[dict, bool]:
        """Parse + verify the manifest, falling back to the previous one."""
        primary = self.directory / MANIFEST_NAME
        document, reason = self._parse_manifest_file(primary)
        if document is not None:
            return document, False
        fallback = self.directory / PREV_MANIFEST_NAME
        recovered, fallback_reason = self._parse_manifest_file(fallback)
        if recovered is None:
            raise StorageError(
                f"cannot read store manifest at {primary}: {reason}; "
                f"fallback {fallback.name}: {fallback_reason}")
        # Preserve the corrupt primary for forensics, out of the way.
        self._quarantine_file(primary, reason="manifest-corrupt",
                              detail=reason, series="")
        return recovered, True

    def _parse_manifest_file(self, path: Path) -> tuple[dict | None, str]:
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None, "missing"
        except OSError as exc:  # pragma: no cover - environment-specific
            return None, str(exc)
        payload, reason, detail = split_footer(data)
        if payload is None:
            # No footer: accept plain version-1 JSON (the legacy format).
            try:
                document = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return None, f"{reason}: {detail}"
            if (isinstance(document, dict)
                    and document.get("format") == "repro.timeseries-store"
                    and int(document.get("version", 0)) == 1):
                return document, ""
            return None, f"{reason}: {detail}"
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"parse-error: {exc}"
        if not isinstance(document, dict) or document.get(
                "format") != "repro.timeseries-store":
            return None, "not a repro.timeseries-store manifest"
        return document, ""

    def _migrate_v1(self, document: dict) -> None:
        """Load a version-1 manifest and rewrite it as the v2 layout."""
        self._memory = _store_from_manifest(
            document, self.directory / MANIFEST_NAME)
        for name in self._memory.list_series():
            shard = self._shard_of(name)
            self._series_shard[name] = shard
            self._refs[name] = []
            self._next_file_index[name] = 0
            self._generations.setdefault(shard, 0)
            self._next_sequence.setdefault(shard, 0)
        if not self._generations:
            # A v1 store with zero series still needs one seeded shard so
            # the migration checkpoint has a WAL to rotate.
            shard = self._shard_of("")
            self._generations[shard] = 0
            self._next_sequence[shard] = 0
        self.recovery.migrated_from_v1 = True
        # Persist everything: segments to files, buffers to WALs, manifest
        # to v2.  Touch every shard so empty ones are recorded too.
        self._checkpoint(set(self._generations))

    def _load_series(self, name: str, entry, report: RecoveryReport) -> None:
        if not isinstance(entry, dict):
            raise StorageError(f"manifest entry for series {name!r} "
                               "is not an object")
        spec = entry.get("codec") or {}
        codec = make_codec(spec["name"], **spec.get("options", {}))
        self._memory.create_series(
            name, codec=codec, segment_size=int(entry["segment_size"]),
            metadata=dict(entry.get("metadata", {})))
        state = self._memory._state(name)  # noqa: SLF001
        state.holes = [dict(hole) for hole in entry.get("holes", [])]
        report.prior_holes += len(state.holes)
        shard = str(entry.get("shard") or self._shard_of(name))
        self._series_shard[name] = shard
        self._generations.setdefault(shard, 0)
        self._next_sequence.setdefault(shard, 0)

        kept_refs: list[dict] = []
        for ref in entry.get("segments", []):
            segment, failure = self._verify_segment(name, ref, codec)
            if segment is not None:
                state.segments.append(segment)
                kept_refs.append(ref)
                report.segments_verified += 1
                continue
            reason, detail = failure
            self._quarantine_segment(name, ref, reason, detail, report)
        self._refs[name] = kept_refs
        self._next_file_index[name] = int(
            entry.get("next_segment_file", len(entry.get("segments", []))))
        self._validate_geometry(name, state)

    def _verify_segment(self, name: str, ref: dict, codec):
        """Verify one manifest segment reference against its file.

        Returns ``(segment, None)`` on success or ``(None, (reason,
        detail))`` when the segment must be quarantined.
        """
        relpath = str(ref.get("file", ""))
        document, payload_crc, reason, detail = _read_checksummed_json(
            self.directory / relpath)
        if document is None:
            return None, (reason, detail)
        expected_crc = str(ref.get("crc32c", ""))
        if payload_crc != expected_crc:
            return None, ("manifest-mismatch",
                          f"manifest records crc32c {expected_crc}, "
                          f"file payload has {payload_crc}")
        try:
            segment = _segment_from_document(document, codec)
        except (KeyError, TypeError, ValueError, StorageError) as exc:
            return None, ("parse-error", f"cannot rebuild segment: {exc}")
        if (segment.start != int(ref.get("start", -1))
                or segment.length != int(ref.get("length", -1))):
            return None, ("manifest-mismatch",
                          f"segment covers [{segment.start}, {segment.end})"
                          f", manifest says start={ref.get('start')} "
                          f"length={ref.get('length')}")
        if segment.summary.count != segment.length:
            return None, ("invalid-geometry",
                          f"summary.count {segment.summary.count} != "
                          f"length {segment.length}")
        return segment, None

    def _quarantine_segment(self, name: str, ref: dict, reason: str,
                            detail: str, report: RecoveryReport) -> None:
        relpath = str(ref.get("file", ""))
        start = int(ref.get("start", 0))
        length = int(ref.get("length", 0))
        quarantined_name = self._quarantine_file(
            self.directory / relpath, reason=reason, detail=detail,
            series=name)
        state = self._memory._state(name)  # noqa: SLF001
        state.holes.append({"start": start, "length": length,
                            "file": quarantined_name or relpath,
                            "reason": reason})
        report.quarantined.append(QuarantinedSegment(
            series=name, file=relpath, reason=reason, detail=detail,
            start=start, length=length))

    def _quarantine_file(self, path: Path, *, reason: str, detail: str,
                         series: str) -> str | None:
        """Move a corrupt file into ``quarantine/`` with a reason sidecar.

        Returns the quarantine-relative name, or ``None`` when the file
        does not exist (missing-file corruption has nothing to move).
        """
        quarantine = self.quarantine_dir
        quarantine.mkdir(parents=True, exist_ok=True)
        flat = str(path.relative_to(self.directory)).replace(
            "/", "__") if path.is_relative_to(self.directory) else path.name
        target = quarantine / flat
        moved = None
        if path.exists():
            os.replace(path, target)
            moved = f"{QUARANTINE_DIR}/{flat}"
        reason_document = {"series": series, "file": flat,
                           "original_path": str(path.relative_to(self.directory))
                           if path.is_relative_to(self.directory)
                           else str(path),
                           "reason": reason, "detail": detail}
        (quarantine / f"{flat}.reason.json").write_text(
            json.dumps(reason_document, sort_keys=True), encoding="utf-8")
        return moved

    def _validate_geometry(self, name: str, state) -> None:
        """Segments + holes must tile ``[0, sealed_points)`` contiguously."""
        pieces = ([(segment.start, segment.length, "segment")
                   for segment in state.segments]
                  + [(int(hole["start"]), int(hole["length"]), "hole")
                     for hole in state.holes])
        pieces.sort()
        position = 0
        for start, length, kind in pieces:
            if start != position or length <= 0:
                raise StorageError(
                    f"manifest geometry of series {name!r} is broken: "
                    f"{kind} at {start} (length {length}) does not continue "
                    f"from position {position}")
            position += length
        state.segments.sort(key=lambda segment: segment.start)

    def _on_disk_generations(self, shard: str) -> list[int]:
        """Sorted WAL generation numbers present on disk for ``shard``."""
        generations = []
        for path in (self.directory / WAL_DIR).glob(f"shard-{shard}.*.wal"):
            try:
                generations.append(int(path.name.rsplit(".", 2)[-2]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return sorted(generations)

    def _replay_wals(self, report: RecoveryReport) -> set[str]:
        """Replay every shard's WAL chain, oldest generation first.

        The chain is the manifest's referenced generation plus every newer
        generation still on disk — newer generations hold appends that were
        fsync-acknowledged after the recovered manifest was published (the
        ``manifest.json.prev`` fallback case, or a crash between a WAL
        rotation and its manifest swap); skipping them would silently lose
        acknowledged data.  Compaction records (each rotated generation's
        re-encoding of the buffers at rotation time) *replace* the series'
        buffer instead of appending, so replaying multiple generations
        never duplicates values an earlier generation already carried
        (sequences stay strictly increasing across the chain).

        Returns the shards whose replay sealed segments, spanned extra
        generations, or hit a corrupt tail (they need a checkpoint to
        converge).
        """
        touched: set[str] = set()
        for shard in sorted(self._generations):
            referenced = self._generations[shard]
            newer = [generation
                     for generation in self._on_disk_generations(shard)
                     if generation > referenced]
            last_sequence = -1
            broken = False
            for position, generation in enumerate([referenced, *newer]):
                if position:
                    report.extra_wal_generations += 1
                    touched.add(shard)
                scan = scan_wal(self.directory / self._wal_relpath(
                    shard, generation))
                if scan.truncated_bytes:
                    report.truncated_wal_bytes += scan.truncated_bytes
                    report.truncated_wal_files += 1
                    report.truncation_reasons.append(
                        f"shard {shard} generation {generation}: "
                        f"{scan.truncation_reason}")
                    touched.add(shard)
                for record in scan.records:
                    if record.sequence <= last_sequence:
                        report.truncation_reasons.append(
                            f"shard {shard} generation {generation}: "
                            f"sequence {record.sequence} not past "
                            f"{last_sequence} from the previous generation")
                        touched.add(shard)
                        broken = True
                        break
                    last_sequence = record.sequence
                    if record.series not in self._memory:
                        # A record for a series the (possibly fallback)
                        # manifest does not know.  Count it; never guess a
                        # codec for it.
                        report.orphan_records += 1
                        continue
                    if record.compaction:
                        # A rotation's authoritative buffer re-encoding:
                        # replace the buffer so values an earlier generation
                        # already replayed are not duplicated.
                        state = self._memory._state(record.series)  # noqa: SLF001
                        state.buffer[:] = record.values.tolist()
                        report.replayed_records += 1
                        report.replayed_values += int(record.values.size)
                        continue
                    sealed = self._memory.append(record.series, record.values)
                    report.replayed_records += 1
                    report.replayed_values += int(record.values.size)
                    if sealed:
                        report.resealed_segments += sealed
                        touched.add(shard)
                if broken:
                    break
            # Future rotations must start past every generation seen on
            # disk, so an existing file is never overwritten.
            self._generations[shard] = max([referenced, *newer])
            self._next_sequence[shard] = max(
                self._next_sequence.get(shard, 0), last_sequence + 1)
        return touched
