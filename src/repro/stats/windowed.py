"""ACF preservation on tumbling-window aggregates (paper Definition 2).

For long, high-frequency series the interesting seasonality lives at a much
coarser granularity than the sampling rate (e.g. daily seasonality in
1-minute data).  Definition 2 therefore bounds the ACF deviation of
``Agg_kappa(X)`` — the series of per-window aggregates — instead of the raw
series.  :class:`AggregatedACFState` wraps an :class:`ACFAggregateState`
over the aggregated series and translates point-level changes into
window-level changes (Equations 10 and 11).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import InvalidParameterError
from .aggregates import ACFAggregateState

__all__ = ["tumbling_window_aggregate", "AggregatedACFState", "AGGREGATION_FUNCTIONS"]


AGGREGATION_FUNCTIONS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda window: float(np.mean(window)),
    "sum": lambda window: float(np.sum(window)),
    "max": lambda window: float(np.max(window)),
    "min": lambda window: float(np.min(window)),
}


def tumbling_window_aggregate(values, window: int, agg: str = "mean") -> np.ndarray:
    """Aggregate ``values`` over consecutive non-overlapping windows.

    Only complete windows are kept (``floor(n / window)`` outputs), matching
    the paper's ``Agg_kappa(X) = [a_1, ..., a_{n/kappa}]``.

    Parameters
    ----------
    values:
        Input series.
    window:
        Window length ``kappa`` in points.
    agg:
        One of ``"mean"``, ``"sum"``, ``"max"``, ``"min"``.
    """
    x = as_float_array(values)
    window = check_positive_int(window, "window")
    if agg not in AGGREGATION_FUNCTIONS:
        raise InvalidParameterError(
            f"unknown aggregation {agg!r}; available: {sorted(AGGREGATION_FUNCTIONS)}"
        )
    num_windows = x.size // window
    if num_windows == 0:
        raise InvalidParameterError(
            f"window ({window}) is larger than the series ({x.size} points)"
        )
    trimmed = x[: num_windows * window].reshape(num_windows, window)
    if agg == "mean":
        return trimmed.mean(axis=1)
    if agg == "sum":
        return trimmed.sum(axis=1)
    if agg == "max":
        return trimmed.max(axis=1)
    return trimmed.min(axis=1)


class AggregatedACFState:
    """Incrementally maintained ACF of the tumbling-window aggregate series.

    The state keeps the current reconstruction of the *raw* series (needed to
    recompute window aggregates after a change) and an
    :class:`ACFAggregateState` over the aggregated series.  Point-level
    changes are translated into window-level deltas:

    * for ``mean``/``sum`` the translation is exact and incremental
      (``delta_a = delta_x / kappa`` resp. ``delta_x``), Equation 11;
    * for ``max``/``min`` the affected windows are re-aggregated from the
      current raw values (the paper notes these require recomputation unless
      the new value dominates).
    """

    def __init__(self, values, max_lag: int, window: int, agg: str = "mean"):
        self._raw = as_float_array(values).copy()
        self._window = check_positive_int(window, "window")
        if agg not in AGGREGATION_FUNCTIONS:
            raise InvalidParameterError(
                f"unknown aggregation {agg!r}; available: {sorted(AGGREGATION_FUNCTIONS)}"
            )
        self._agg = agg
        aggregated = tumbling_window_aggregate(self._raw, self._window, agg)
        self._num_windows = aggregated.size
        self._inner = ACFAggregateState(aggregated, max_lag)

    # ------------------------------------------------------------------ #
    # read-only views
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Length of the raw series."""
        return self._raw.size

    @property
    def window(self) -> int:
        """Window length ``kappa``."""
        return self._window

    @property
    def agg(self) -> str:
        """Name of the aggregation function."""
        return self._agg

    @property
    def max_lag(self) -> int:
        """Number of lags tracked on the aggregated series."""
        return self._inner.max_lag

    @property
    def num_windows(self) -> int:
        """Number of complete windows (length of the aggregated series)."""
        return self._num_windows

    @property
    def inner(self) -> ACFAggregateState:
        """The aggregate-level ACF state (read-mostly)."""
        return self._inner

    @property
    def current_raw(self) -> np.ndarray:
        """Current reconstructed raw series (do not mutate directly)."""
        return self._raw

    def copy(self) -> "AggregatedACFState":
        """Independent deep copy."""
        clone = object.__new__(AggregatedACFState)
        clone._raw = self._raw.copy()
        clone._window = self._window
        clone._agg = self._agg
        clone._num_windows = self._num_windows
        clone._inner = self._inner.copy()
        return clone

    # ------------------------------------------------------------------ #
    # ACF evaluation
    # ------------------------------------------------------------------ #
    def acf(self) -> np.ndarray:
        """ACF of the aggregated series for lags ``1..L``."""
        return self._inner.acf()

    def pacf(self) -> np.ndarray:
        """PACF of the aggregated series (batched Durbin-Levinson kernel)."""
        return self._inner.pacf()

    # ------------------------------------------------------------------ #
    # change translation
    # ------------------------------------------------------------------ #
    def window_of(self, position: int) -> int:
        """Window index of a raw position, or -1 if it falls in the remainder."""
        window_index = position // self._window
        if window_index >= self._num_windows:
            return -1
        return int(window_index)

    def _window_level_changes(self, positions: np.ndarray, deltas: np.ndarray,
                              raw_override: dict[int, float] | None
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Translate raw-level changes into window-level (position, delta) pairs."""
        affected: dict[int, float] = {}
        if self._agg in ("mean", "sum"):
            scale = 1.0 / self._window if self._agg == "mean" else 1.0
            for position, delta in zip(positions, deltas):
                window_index = self.window_of(int(position))
                if window_index < 0 or delta == 0.0:
                    continue
                affected[window_index] = affected.get(window_index, 0.0) + float(delta) * scale
        else:
            # max / min: recompute the aggregate of every touched window.
            fn = AGGREGATION_FUNCTIONS[self._agg]
            touched: dict[int, None] = {}
            overlay: dict[int, float] = {}
            for position, delta in zip(positions, deltas):
                position = int(position)
                window_index = self.window_of(position)
                if window_index < 0:
                    continue
                base = overlay.get(position)
                if base is None:
                    base = (raw_override.get(position, float(self._raw[position]))
                            if raw_override else float(self._raw[position]))
                overlay[position] = base + float(delta)
                touched[window_index] = None
            for window_index in touched:
                start = window_index * self._window
                stop = start + self._window
                window_values = self._raw[start:stop].copy()
                for position, value in overlay.items():
                    if start <= position < stop:
                        window_values[position - start] = value
                new_value = fn(window_values)
                old_value = float(self._inner.current[window_index])
                if new_value != old_value:
                    affected[window_index] = new_value - old_value
        if not affected:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        window_positions = np.fromiter(affected.keys(), dtype=np.int64, count=len(affected))
        window_deltas = np.fromiter(affected.values(), dtype=np.float64, count=len(affected))
        return window_positions, window_deltas

    def apply_changes(self, positions, deltas) -> None:
        """Apply raw-level changes and update the aggregated ACF state."""
        positions = np.atleast_1d(np.asarray(positions, dtype=np.int64))
        deltas = np.atleast_1d(np.asarray(deltas, dtype=np.float64))
        if positions.shape != deltas.shape:
            raise ValueError("positions and deltas must have the same shape")
        window_positions, window_deltas = self._window_level_changes(positions, deltas, None)
        if window_positions.size:
            self._inner.apply_changes(window_positions, window_deltas)
        np.add.at(self._raw, positions, deltas)

    def preview_acf(self, positions, deltas) -> np.ndarray:
        """ACF of the aggregated series if the raw changes were applied."""
        positions = np.atleast_1d(np.asarray(positions, dtype=np.int64))
        deltas = np.atleast_1d(np.asarray(deltas, dtype=np.float64))
        if positions.shape != deltas.shape:
            raise ValueError("positions and deltas must have the same shape")
        window_positions, window_deltas = self._window_level_changes(positions, deltas, {})
        if window_positions.size == 0:
            return self._inner.acf()
        return self._inner.preview_acf(window_positions, window_deltas)

    def preview_pacf(self, positions, deltas) -> np.ndarray:
        """PACF of the aggregated series if the raw changes were applied."""
        from .pacf import pacf_from_acf

        return pacf_from_acf(self.preview_acf(positions, deltas))

    # ------------------------------------------------------------------ #
    # contiguous-range fast path (used by the CAMEO inner loop)
    # ------------------------------------------------------------------ #
    def _contiguous_window_deltas(self, start: int, deltas: np.ndarray
                                  ) -> tuple[int, np.ndarray]:
        """Translate a contiguous raw-range change into contiguous window deltas.

        Only exact for additive aggregations (mean/sum); callers fall back to
        the generic path for max/min.
        """
        m = deltas.size
        stop = start + m
        usable_stop = min(stop, self._num_windows * self._window)
        if start >= usable_stop:
            return 0, np.empty(0, dtype=np.float64)
        usable = usable_stop - start
        first_window = start // self._window
        last_window = (usable_stop - 1) // self._window
        num_windows = last_window - first_window + 1
        # Sum the deltas falling into each touched window.
        boundaries = [0]
        for window_index in range(first_window, last_window):
            boundaries.append((window_index + 1) * self._window - start)
        sums = np.add.reduceat(deltas[:usable], np.asarray(boundaries, dtype=np.int64))
        if sums.size != num_windows:  # pragma: no cover - defensive
            raise RuntimeError("window delta translation mismatch")
        if self._agg == "mean":
            sums = sums / self._window
        return first_window, sums

    def preview_acf_contiguous(self, start: int, deltas) -> np.ndarray:
        """ACF of the aggregated series after a contiguous raw-range change."""
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return self._inner.acf()
        if self._agg in ("mean", "sum"):
            window_start, window_deltas = self._contiguous_window_deltas(int(start), deltas)
            if window_deltas.size == 0:
                return self._inner.acf()
            return self._inner.preview_acf_contiguous(window_start, window_deltas)
        positions = np.arange(int(start), int(start) + deltas.size, dtype=np.int64)
        return self.preview_acf(positions, deltas)

    def apply_contiguous(self, start: int, deltas) -> None:
        """Commit a contiguous raw-range change (fast path for mean/sum)."""
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return
        start = int(start)
        if self._agg in ("mean", "sum"):
            window_start, window_deltas = self._contiguous_window_deltas(start, deltas)
            if window_deltas.size:
                self._inner.apply_contiguous(window_start, window_deltas)
            self._raw[start:start + deltas.size] += deltas
            return
        positions = np.arange(start, start + deltas.size, dtype=np.int64)
        self.apply_changes(positions, deltas)

    # ------------------------------------------------------------------ #
    # verification helper
    # ------------------------------------------------------------------ #
    def recompute_acf(self) -> np.ndarray:
        """Recompute the aggregated ACF from scratch (testing aid)."""
        aggregated = tumbling_window_aggregate(self._raw, self._window, self._agg)
        return ACFAggregateState(aggregated, self.max_lag).acf()
