"""Partial autocorrelation via the Durbin-Levinson recursion (Equation 3).

The PACF at lag ``l`` is the last coefficient ``phi_{l,l}`` of the best linear
predictor of order ``l``.  The recursion runs in ``O(L^2)`` given the ACF for
lags ``1..L``, which is why the paper reports a roughly 6x slowdown when CAMEO
preserves the PACF instead of the ACF.

Both entry points route through the *batched* Durbin-Levinson kernel
(:func:`repro._kernels.pacf.pacf_from_acf_batched`), which vectorizes the
recursion over rows; the pre-vectorization per-row recursion is preserved as
:func:`repro._kernels.reference.reference_pacf_from_acf` and the batched
kernel is cross-checked against it bit for bit.
"""

from __future__ import annotations

import numpy as np

from .._kernels.pacf import pacf_from_acf_batched
from .._validation import as_float_array
from .acf import acf as _acf

__all__ = ["pacf_from_acf", "pacf_from_acf_batched", "pacf"]


def pacf_from_acf(acf_values) -> np.ndarray:
    """Convert an ACF vector (lags ``1..L``) into the PACF (lags ``1..L``).

    Implements the Durbin-Levinson recursion:

    ``phi_{1,1} = ACF_1``
    ``phi_{l,l} = (ACF_l - sum_k phi_{l-1,k} ACF_{l-k}) /
                  (1 - sum_k phi_{l-1,k} ACF_k)``
    ``phi_{l,k} = phi_{l-1,k} - phi_{l,l} phi_{l-1,l-k}``

    Parameters
    ----------
    acf_values:
        ACF vector for lags ``1..L`` (1-D, non-empty).

    Returns
    -------
    numpy.ndarray
        PACF vector for lags ``1..L``.

    Notes
    -----
    Degenerate denominators (close to zero) yield a PACF of 0 at that lag and
    the recursion continues, which keeps the function total on every input —
    important because CAMEO evaluates it on perturbed ACF vectors.

    This is the single-row entry of the batched kernel, so scalar previews
    and batched ReHeap evaluations are bit-identical by construction.
    """
    rho = np.asarray(acf_values, dtype=np.float64)
    if rho.ndim != 1 or rho.size == 0:
        raise ValueError("acf_values must be a non-empty 1-D array")
    return pacf_from_acf_batched(rho[np.newaxis, :])[0]


def pacf(values, max_lag: int, *, method: str = "pearson") -> np.ndarray:
    """PACF for lags ``1..max_lag`` computed from the series directly.

    Parameters
    ----------
    values:
        Input series (1-D array-like).
    max_lag:
        Number of lags ``L``.
    method:
        ACF estimator passed through to :func:`repro.stats.acf.acf`.

    Returns
    -------
    numpy.ndarray
        PACF vector for lags ``1..max_lag``.
    """
    x = as_float_array(values)
    rho = _acf(x, max_lag, method=method)
    return pacf_from_acf(rho)
