"""Partial autocorrelation via the Durbin-Levinson recursion (Equation 3).

The PACF at lag ``l`` is the last coefficient ``phi_{l,l}`` of the best linear
predictor of order ``l``.  The recursion runs in ``O(L^2)`` given the ACF for
lags ``1..L``, which is why the paper reports a roughly 6x slowdown when CAMEO
preserves the PACF instead of the ACF.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from .acf import acf as _acf

__all__ = ["pacf_from_acf", "pacf"]


def pacf_from_acf(acf_values) -> np.ndarray:
    """Convert an ACF vector (lags ``1..L``) into the PACF (lags ``1..L``).

    Implements the Durbin-Levinson recursion:

    ``phi_{1,1} = ACF_1``
    ``phi_{l,l} = (ACF_l - sum_k phi_{l-1,k} ACF_{l-k}) /
                  (1 - sum_k phi_{l-1,k} ACF_k)``
    ``phi_{l,k} = phi_{l-1,k} - phi_{l,l} phi_{l-1,l-k}``

    Degenerate denominators (close to zero) yield a PACF of 0 at that lag and
    the recursion continues, which keeps the function total on every input —
    important because CAMEO evaluates it on perturbed ACF vectors.
    """
    rho = np.asarray(acf_values, dtype=np.float64)
    if rho.ndim != 1 or rho.size == 0:
        raise ValueError("acf_values must be a non-empty 1-D array")
    max_lag = rho.size
    pacf_values = np.zeros(max_lag, dtype=np.float64)
    # phi[k] holds phi_{l-1, k+1} for k = 0..l-2 at the start of iteration l.
    phi_prev = np.zeros(max_lag, dtype=np.float64)
    phi_curr = np.zeros(max_lag, dtype=np.float64)

    pacf_values[0] = rho[0]
    phi_prev[0] = rho[0]

    for lag in range(2, max_lag + 1):
        k = np.arange(1, lag)
        numerator = rho[lag - 1] - float(np.dot(phi_prev[: lag - 1], rho[lag - 1 - k]))
        denominator = 1.0 - float(np.dot(phi_prev[: lag - 1], rho[k - 1]))
        if abs(denominator) < 1e-12:
            phi_ll = 0.0
        else:
            phi_ll = numerator / denominator
        pacf_values[lag - 1] = phi_ll
        phi_curr[: lag - 1] = phi_prev[: lag - 1] - phi_ll * phi_prev[: lag - 1][::-1]
        phi_curr[lag - 1] = phi_ll
        phi_prev, phi_curr = phi_curr.copy(), phi_prev
    return pacf_values


def pacf(values, max_lag: int, *, method: str = "pearson") -> np.ndarray:
    """PACF for lags ``1..max_lag`` computed from the series directly."""
    x = as_float_array(values)
    rho = _acf(x, max_lag, method=method)
    return pacf_from_acf(rho)
