"""Autocorrelation function implementations.

The paper uses two equivalent ACF formulations:

* Equation 1 — the classical *stationary* estimator that uses the global mean
  and variance of the series.
* Equation 2 — the *lagged Pearson* form expressed purely through running
  sums, which is the one CAMEO maintains incrementally.  For each lag ``l``
  it is the Pearson correlation between ``X[:-l]`` and ``X[l:]``.

Both are provided; ``acf`` defaults to the lagged-Pearson form because it is
the statistic the compressor actually bounds.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_lag

__all__ = ["acf", "stationary_acf", "lagged_pearson_acf", "acf_from_sums"]


def stationary_acf(values, max_lag: int) -> np.ndarray:
    """ACF under the stationarity assumption (paper Equation 1).

    ``ACF_l = 1/((n-l) * sigma^2) * sum_{t=1}^{n-l} (x_t - mu)(x_{t+l} - mu)``
    where ``mu`` and ``sigma`` are the global mean and standard deviation.

    Parameters
    ----------
    values:
        Input series.
    max_lag:
        Number of lags ``L``; the result has shape ``(L,)`` for lags
        ``1..L``.

    Returns
    -------
    numpy.ndarray
        ACF values for lags ``1..max_lag``.  Lags whose denominator is zero
        (constant series) are reported as 0.
    """
    x = as_float_array(values)
    n = x.size
    max_lag = check_lag(max_lag, n)
    mu = float(np.mean(x))
    sigma2 = float(np.var(x))
    centred = x - mu
    out = np.zeros(max_lag, dtype=np.float64)
    if sigma2 == 0.0:
        return out
    for lag in range(1, max_lag + 1):
        overlap = n - lag
        out[lag - 1] = float(np.dot(centred[:overlap], centred[lag:])) / (overlap * sigma2)
    return out


def lagged_pearson_acf(values, max_lag: int) -> np.ndarray:
    """ACF as the Pearson correlation of the series with its lagged copy.

    This is Equation 2 of the paper: for each lag ``l`` the correlation is
    computed between ``X[0:n-l]`` and ``X[l:n]`` with their own means and
    variances, which makes the estimator robust to mild non-stationarity and
    expressible through five running sums (see
    :class:`repro.stats.aggregates.ACFAggregateState`).
    """
    x = as_float_array(values)
    n = x.size
    max_lag = check_lag(max_lag, n)
    out = np.zeros(max_lag, dtype=np.float64)
    for lag in range(1, max_lag + 1):
        head = x[: n - lag]
        tail = x[lag:]
        count = n - lag
        sx = head.sum()
        sxl = tail.sum()
        sx2 = np.dot(head, head)
        sx2l = np.dot(tail, tail)
        sxxl = np.dot(head, tail)
        out[lag - 1] = acf_from_sums(count, sx, sxl, sx2, sx2l, sxxl)
    return out


def acf(values, max_lag: int, *, method: str = "pearson") -> np.ndarray:
    """Compute the ACF for lags ``1..max_lag``.

    Parameters
    ----------
    values:
        Input series.
    max_lag:
        Largest lag ``L``.
    method:
        ``"pearson"`` (Equation 2, default — what CAMEO preserves) or
        ``"stationary"`` (Equation 1).
    """
    if method == "pearson":
        return lagged_pearson_acf(values, max_lag)
    if method == "stationary":
        return stationary_acf(values, max_lag)
    raise ValueError(f"unknown ACF method {method!r}")


def acf_from_sums(count: float, sx: float, sxl: float, sx2: float,
                  sx2l: float, sxxl: float) -> float:
    """Evaluate Equation 2 from the five basic aggregates of a single lag.

    ``count`` is ``n - l``.  Returns 0 when either marginal variance is zero
    (degenerate overlap), matching the convention of the reference
    implementation.
    """
    numerator = count * sxxl - sx * sxl
    var_head = count * sx2 - sx * sx
    var_tail = count * sx2l - sxl * sxl
    if var_head <= 0.0 or var_tail <= 0.0:
        return 0.0
    denominator = np.sqrt(var_head * var_tail)
    if denominator == 0.0:
        return 0.0
    return float(numerator / denominator)
