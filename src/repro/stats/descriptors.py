"""Pluggable statistical descriptors for constraint-preserving compression.

The paper's framework section notes that CAMEO "is extensible to multivariate
time series and other statistical features of the time series".  This module
provides that extension point: a :class:`Statistic` is any object that maps a
series to a fixed-length feature vector, and the compressor can bound the
deviation ``D(S(X), S(X'))`` of *any* such statistic, not only the ACF/PACF.

Built-in descriptors
--------------------
* :class:`AcfStatistic` / :class:`PacfStatistic` — the paper's statistics,
  expressed through the generic interface (useful for composition).
* :class:`MomentStatistic` — mean, standard deviation, skewness, kurtosis.
* :class:`QuantileStatistic` — a configurable set of quantiles.
* :class:`SpectralStatistic` — relative energy of the lowest frequency bins,
  i.e. the spectral shape that FFT-based compressors implicitly preserve.
* :class:`CrossCorrelationStatistic` — correlation against a fixed reference
  column at several lags (the multivariate extension: preserve how a column
  co-moves with another sensor).
* :class:`TumblingAggregateStatistic` — any inner statistic evaluated on
  tumbling-window aggregates (Definition 2 generalised beyond the ACF).
* :class:`CompositeStatistic` — concatenation of several statistics with
  per-part weights, so one bound can cover multiple features at once.

The optimised incremental ACF/PACF maintenance of
:class:`repro.core.tracker.StatisticTracker` remains the fast path for the
paper's experiments; the generic descriptors trade speed for flexibility and
are evaluated from the current reconstruction (see
:class:`repro.core.custom.GenericStatisticTracker`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from .._validation import as_float_array, check_lag, check_positive_int
from ..exceptions import InvalidParameterError
from .acf import acf
from .pacf import pacf_from_acf
from .windowed import tumbling_window_aggregate

__all__ = [
    "Statistic",
    "AcfStatistic",
    "PacfStatistic",
    "MomentStatistic",
    "QuantileStatistic",
    "SpectralStatistic",
    "CrossCorrelationStatistic",
    "TumblingAggregateStatistic",
    "CompositeStatistic",
    "CallableStatistic",
    "make_statistic",
]


class Statistic(ABC):
    """A deterministic mapping from a series to a fixed-length feature vector.

    Subclasses implement :meth:`compute`; the returned vector must have the
    same length for every input of the same series length so that deviations
    ``D(S(X), S(X'))`` are well defined during compression.
    """

    #: Short identifier used in result metadata and benchmark tables.
    name: str = "statistic"

    @abstractmethod
    def compute(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the statistic on ``values`` and return a 1-D vector."""

    # ------------------------------------------------------------------ #
    def __call__(self, values) -> np.ndarray:
        return self.compute(as_float_array(values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


class AcfStatistic(Statistic):
    """The autocorrelation function at lags ``1..max_lag`` (paper Eq. 1/2)."""

    def __init__(self, max_lag: int):
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.name = f"acf{self.max_lag}"

    def compute(self, values: np.ndarray) -> np.ndarray:
        lag = check_lag(min(self.max_lag, values.size - 1), values.size)
        return acf(values, lag)


class PacfStatistic(Statistic):
    """The partial autocorrelation function via Durbin-Levinson (Eq. 3)."""

    def __init__(self, max_lag: int):
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.name = f"pacf{self.max_lag}"

    def compute(self, values: np.ndarray) -> np.ndarray:
        lag = check_lag(min(self.max_lag, values.size - 1), values.size)
        return pacf_from_acf(acf(values, lag))


#: Moment names supported by :class:`MomentStatistic`.
_MOMENTS = ("mean", "std", "skewness", "kurtosis")


class MomentStatistic(Statistic):
    """Low-order distribution moments of the series.

    Useful when downstream analytics care about the value distribution (e.g.
    threshold-based alerting) rather than temporal structure.
    """

    def __init__(self, moments: Sequence[str] = _MOMENTS):
        moments = tuple(str(m).lower() for m in moments)
        unknown = [m for m in moments if m not in _MOMENTS]
        if unknown:
            raise InvalidParameterError(
                f"unknown moments {unknown}; choose from {_MOMENTS}")
        if not moments:
            raise InvalidParameterError("at least one moment is required")
        self.moments = moments
        self.name = "moments(" + ",".join(moments) + ")"

    def compute(self, values: np.ndarray) -> np.ndarray:
        mean = float(np.mean(values))
        std = float(np.std(values))
        if std > 0:
            # Standardise first so extreme value scales cannot under/overflow
            # when the deviations are raised to the third and fourth power.
            standardized = (values - mean) / std
            skewness = float(np.mean(standardized ** 3))
            kurtosis = float(np.mean(standardized ** 4))
        else:
            skewness = 0.0
            kurtosis = 0.0
        lookup = {
            "mean": mean,
            "std": std,
            "skewness": skewness,
            "kurtosis": kurtosis,
        }
        return np.asarray([lookup[m] for m in self.moments], dtype=np.float64)


class QuantileStatistic(Statistic):
    """A fixed set of quantiles of the value distribution."""

    def __init__(self, quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95)):
        quantiles = tuple(float(q) for q in quantiles)
        if not quantiles:
            raise InvalidParameterError("at least one quantile is required")
        for quantile in quantiles:
            if not 0.0 <= quantile <= 1.0:
                raise InvalidParameterError(
                    f"quantiles must lie in [0, 1], got {quantile}")
        self.quantiles = quantiles
        self.name = "quantiles"

    def compute(self, values: np.ndarray) -> np.ndarray:
        return np.quantile(values, self.quantiles).astype(np.float64)


class SpectralStatistic(Statistic):
    """Relative spectral energy of the lowest ``num_bins`` frequency bins.

    The DC component is excluded; each entry is the share of the total
    (non-DC) power carried by that bin, so the vector is scale-invariant and
    sums to at most one.
    """

    def __init__(self, num_bins: int = 16):
        self.num_bins = check_positive_int(num_bins, "num_bins")
        self.name = f"spectrum{self.num_bins}"

    def compute(self, values: np.ndarray) -> np.ndarray:
        spectrum = np.abs(np.fft.rfft(values - np.mean(values))) ** 2
        power = spectrum[1:]
        total = float(np.sum(power))
        shares = np.zeros(self.num_bins, dtype=np.float64)
        if total > 0:
            available = min(self.num_bins, power.size)
            shares[:available] = power[:available] / total
        return shares


class CrossCorrelationStatistic(Statistic):
    """Pearson correlation against a fixed reference series at several lags.

    This is the multivariate extension: when compressing one column of a
    multivariate series, preserving its cross-correlation to another column
    keeps joint analytics (e.g. lagged regressions between sensors) intact.
    Lag ``l`` correlates ``values[: n - l]`` with ``reference[l:]``.
    """

    def __init__(self, reference, max_lag: int = 0):
        self.reference = as_float_array(reference, name="reference")
        if max_lag < 0:
            raise InvalidParameterError("max_lag must be >= 0")
        self.max_lag = int(max_lag)
        if self.reference.size <= self.max_lag + 1:
            raise InvalidParameterError("reference series too short for max_lag")
        self.name = f"ccf{self.max_lag}"

    def compute(self, values: np.ndarray) -> np.ndarray:
        if values.size != self.reference.size:
            raise InvalidParameterError(
                "series and reference must have the same length "
                f"({values.size} vs {self.reference.size})")
        out = np.zeros(self.max_lag + 1, dtype=np.float64)
        for lag in range(self.max_lag + 1):
            left = values[: values.size - lag]
            right = self.reference[lag:]
            left_std = np.std(left)
            right_std = np.std(right)
            if left_std == 0 or right_std == 0:
                out[lag] = 0.0
                continue
            out[lag] = float(np.mean(
                (left - np.mean(left)) * (right - np.mean(right))) / (left_std * right_std))
        return out


class TumblingAggregateStatistic(Statistic):
    """Any inner statistic evaluated on tumbling-window aggregates.

    Generalises Definition 2 of the paper: ``S(Agg_kappa(X))`` for an
    arbitrary ``S``, not only the ACF.
    """

    def __init__(self, inner: Statistic, window: int, agg: str = "mean"):
        if not isinstance(inner, Statistic):
            raise InvalidParameterError("inner must be a Statistic instance")
        self.inner = inner
        self.window = check_positive_int(window, "window")
        self.agg = str(agg).lower()
        self.name = f"{inner.name}@{self.agg}{self.window}"

    def compute(self, values: np.ndarray) -> np.ndarray:
        aggregated = tumbling_window_aggregate(values, self.window, self.agg)
        return self.inner.compute(aggregated)


class CompositeStatistic(Statistic):
    """Concatenation of several statistics with optional per-part weights.

    The weights scale each part's contribution to the deviation measure, so
    e.g. ``CompositeStatistic([AcfStatistic(24), MomentStatistic()],
    weights=[1.0, 0.5])`` bounds a blend of autocorrelation and moment drift.
    """

    def __init__(self, parts: Sequence[Statistic], weights: Sequence[float] | None = None):
        parts = list(parts)
        if not parts:
            raise InvalidParameterError("at least one statistic is required")
        for part in parts:
            if not isinstance(part, Statistic):
                raise InvalidParameterError("all parts must be Statistic instances")
        if weights is None:
            weights = [1.0] * len(parts)
        weights = [float(w) for w in weights]
        if len(weights) != len(parts):
            raise InvalidParameterError("weights must match the number of parts")
        if any(w < 0 for w in weights):
            raise InvalidParameterError("weights must be non-negative")
        self.parts = parts
        self.weights = weights
        self.name = "+".join(part.name for part in parts)

    def compute(self, values: np.ndarray) -> np.ndarray:
        pieces = [weight * part.compute(values)
                  for part, weight in zip(self.parts, self.weights)]
        return np.concatenate(pieces)


class CallableStatistic(Statistic):
    """Adapter turning a plain ``callable(values) -> vector`` into a Statistic."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], name: str = "custom"):
        if not callable(fn):
            raise InvalidParameterError("fn must be callable")
        self._fn = fn
        self.name = str(name)

    def compute(self, values: np.ndarray) -> np.ndarray:
        result = np.atleast_1d(np.asarray(self._fn(values), dtype=np.float64))
        if result.ndim != 1:
            raise InvalidParameterError("a statistic must return a 1-D vector")
        return result


def make_statistic(name: str, **kwargs) -> Statistic:
    """Construct a built-in statistic from a short name.

    Supported names: ``acf``, ``pacf``, ``moments``, ``quantiles``,
    ``spectrum``, ``ccf`` (requires ``reference``), each forwarding ``kwargs``
    to the corresponding class.
    """
    key = str(name).strip().lower()
    if key == "acf":
        return AcfStatistic(**kwargs)
    if key == "pacf":
        return PacfStatistic(**kwargs)
    if key == "moments":
        return MomentStatistic(**kwargs)
    if key == "quantiles":
        return QuantileStatistic(**kwargs)
    if key == "spectrum":
        return SpectralStatistic(**kwargs)
    if key == "ccf":
        return CrossCorrelationStatistic(**kwargs)
    raise InvalidParameterError(f"unknown statistic {name!r}")
