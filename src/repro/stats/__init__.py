"""Autocorrelation statistics substrate.

Implements the ACF (Equations 1 and 2 of the paper), the PACF via the
Durbin-Levinson recursion (Equation 3), and the incremental aggregate state
used by CAMEO to re-evaluate the ACF in O(L) after every point removal
(Equations 7-11).
"""

from .acf import acf, acf_from_sums, lagged_pearson_acf, stationary_acf
from .pacf import pacf, pacf_from_acf, pacf_from_acf_batched
from .aggregates import ACFAggregateState, LagSums
from .descriptors import (
    AcfStatistic,
    CallableStatistic,
    CompositeStatistic,
    CrossCorrelationStatistic,
    MomentStatistic,
    PacfStatistic,
    QuantileStatistic,
    SpectralStatistic,
    Statistic,
    TumblingAggregateStatistic,
    make_statistic,
)
from .windowed import AggregatedACFState, tumbling_window_aggregate

__all__ = [
    "acf",
    "stationary_acf",
    "lagged_pearson_acf",
    "acf_from_sums",
    "pacf",
    "pacf_from_acf",
    "pacf_from_acf_batched",
    "ACFAggregateState",
    "LagSums",
    "AggregatedACFState",
    "tumbling_window_aggregate",
    "Statistic",
    "AcfStatistic",
    "PacfStatistic",
    "MomentStatistic",
    "QuantileStatistic",
    "SpectralStatistic",
    "CrossCorrelationStatistic",
    "TumblingAggregateStatistic",
    "CompositeStatistic",
    "CallableStatistic",
    "make_statistic",
]
