"""Incremental ACF maintenance through basic aggregates (paper Section 4.2).

The lagged-Pearson ACF (Equation 2) for lag ``l`` only depends on five sums
over the series (Equation 7):

==========  ==================================================
``sx``      ``sum_{t=0}^{n-l-1} x_t``          (head sum)
``sxl``     ``sum_{t=l}^{n-1}   x_t``          (tail sum)
``sx2``     ``sum_{t=0}^{n-l-1} x_t^2``        (head sum of squares)
``sx2l``    ``sum_{t=l}^{n-1}   x_t^2``        (tail sum of squares)
``sxxl``    ``sum_{t=0}^{n-l-1} x_t x_{t+l}``  (lagged dot product)
==========  ==================================================

:class:`ACFAggregateState` stores these sums for every lag ``1..L`` together
with the *current reconstructed series* and updates them in ``O(L)`` per
changed value (Equation 8) or ``O(mL)`` for a batch of ``m`` changed values
(Equation 9).  Batches are applied sequentially, which makes the cross terms
``delta_k * delta_{k+l}`` of Equation 9 fall out exactly without special
casing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_lag
from .acf import acf_from_sums
from .pacf import pacf_from_acf

__all__ = ["LagSums", "ACFAggregateState"]


@dataclass
class LagSums:
    """The five per-lag aggregate vectors (each of shape ``(L,)``)."""

    counts: np.ndarray
    sx: np.ndarray
    sxl: np.ndarray
    sx2: np.ndarray
    sx2l: np.ndarray
    sxxl: np.ndarray

    def copy(self) -> "LagSums":
        """Deep copy of all aggregate vectors."""
        return LagSums(
            counts=self.counts.copy(),
            sx=self.sx.copy(),
            sxl=self.sxl.copy(),
            sx2=self.sx2.copy(),
            sx2l=self.sx2l.copy(),
            sxxl=self.sxxl.copy(),
        )


class ACFAggregateState:
    """Incrementally maintained ACF of a (reconstructed) time series.

    Parameters
    ----------
    values:
        The series whose ACF should be tracked.  A private copy is kept as
        the *current* reconstruction; every applied change mutates it.
    max_lag:
        Number of lags ``L`` of the tracked ACF.

    Notes
    -----
    The class is the work-horse behind CAMEO's ``ExtractAggregates``,
    ``Update`` and ``GetACF`` primitives (Algorithm 1).  It deliberately
    knows nothing about compression: it only answers "what is the ACF of the
    current series?" and "what would it be if these positions changed by
    these deltas?".
    """

    def __init__(self, values, max_lag: int):
        current = as_float_array(values).copy()
        self._n = current.size
        self._max_lag = check_lag(max_lag, self._n)
        self._current = current
        self._lags = np.arange(1, self._max_lag + 1, dtype=np.int64)
        self._sums = self._build_sums(current, self._lags)
        self._preview_scratch = threading.local()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_sums(values: np.ndarray, lags: np.ndarray) -> LagSums:
        n = values.size
        num_lags = lags.size
        counts = (n - lags).astype(np.float64)
        sx = np.empty(num_lags)
        sxl = np.empty(num_lags)
        sx2 = np.empty(num_lags)
        sx2l = np.empty(num_lags)
        sxxl = np.empty(num_lags)
        squares = values * values
        total = values.sum()
        total_sq = squares.sum()
        # Cumulative sums let each lag's head/tail sums be formed in O(1).
        prefix = np.concatenate(([0.0], np.cumsum(values)))
        prefix_sq = np.concatenate(([0.0], np.cumsum(squares)))
        for idx, lag in enumerate(lags):
            overlap = n - lag
            sx[idx] = prefix[overlap]
            sx2[idx] = prefix_sq[overlap]
            sxl[idx] = total - prefix[lag]
            sx2l[idx] = total_sq - prefix_sq[lag]
            sxxl[idx] = float(np.dot(values[:overlap], values[lag:]))
        return LagSums(counts, sx, sxl, sx2, sx2l, sxxl)

    # ------------------------------------------------------------------ #
    # read-only views
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Length of the tracked series."""
        return self._n

    @property
    def max_lag(self) -> int:
        """Number of tracked lags ``L``."""
        return self._max_lag

    @property
    def lags(self) -> np.ndarray:
        """Array of lags ``1..L`` (read-only view)."""
        return self._lags

    @property
    def current(self) -> np.ndarray:
        """Current reconstructed series (do not mutate directly)."""
        return self._current

    @property
    def sums(self) -> LagSums:
        """The per-lag aggregate vectors (live references)."""
        return self._sums

    def copy(self) -> "ACFAggregateState":
        """Independent deep copy of the state."""
        clone = object.__new__(ACFAggregateState)
        clone._n = self._n
        clone._max_lag = self._max_lag
        clone._current = self._current.copy()
        clone._lags = self._lags
        clone._sums = self._sums.copy()
        clone._preview_scratch = threading.local()
        return clone

    # ------------------------------------------------------------------ #
    # ACF / PACF evaluation
    # ------------------------------------------------------------------ #
    def acf(self) -> np.ndarray:
        """ACF (lags ``1..L``) of the current reconstructed series."""
        return self._acf_from(self._sums)

    def pacf(self) -> np.ndarray:
        """PACF of the current reconstructed series.

        Runs the Durbin-Levinson recursion on :meth:`acf` through the
        batched kernel (:func:`repro._kernels.pacf.pacf_from_acf_batched`),
        so scalar evaluations and the compressor's batched ReHeap rows are
        bit-identical.
        """
        return pacf_from_acf(self.acf())

    @staticmethod
    def _acf_from(sums: LagSums) -> np.ndarray:
        counts = sums.counts
        numerator = counts * sums.sxxl - sums.sx * sums.sxl
        var_head = counts * sums.sx2 - sums.sx * sums.sx
        var_tail = counts * sums.sx2l - sums.sxl * sums.sxl
        out = np.zeros_like(numerator)
        valid = (var_head > 0.0) & (var_tail > 0.0)
        denom = np.sqrt(var_head[valid] * var_tail[valid])
        nonzero = denom != 0.0
        result = np.zeros(denom.size)
        result[nonzero] = numerator[valid][nonzero] / denom[nonzero]
        out[valid] = result
        return out

    # ------------------------------------------------------------------ #
    # single / batch updates (Equations 8 and 9)
    # ------------------------------------------------------------------ #
    def _lag_deltas(self, position: int, delta: float,
                    lookup_overrides: dict[int, float] | None) -> tuple[np.ndarray, ...]:
        """Per-lag aggregate deltas for changing ``position`` by ``delta``.

        ``lookup_overrides`` maps positions to values that supersede the
        stored current values (used while previewing a batch without
        mutating the state).
        """
        n = self._n
        lags = self._lags
        current = self._current

        def value_at(index: int) -> float:
            if lookup_overrides is not None and index in lookup_overrides:
                return lookup_overrides[index]
            return float(current[index])

        own = value_at(position)
        head_mask = position <= (n - 1) - lags
        tail_mask = position >= lags

        d_sx = np.where(head_mask, delta, 0.0)
        d_sxl = np.where(tail_mask, delta, 0.0)
        square_term = delta * (2.0 * own + delta)
        d_sx2 = np.where(head_mask, square_term, 0.0)
        d_sx2l = np.where(tail_mask, square_term, 0.0)

        d_sxxl = np.zeros(lags.size)
        if head_mask.any():
            right_idx = position + lags[head_mask]
            right_vals = current[right_idx].astype(np.float64, copy=True)
            if lookup_overrides:
                for offset, idx in enumerate(right_idx):
                    if int(idx) in lookup_overrides:
                        right_vals[offset] = lookup_overrides[int(idx)]
            d_sxxl[head_mask] += delta * right_vals
        if tail_mask.any():
            left_idx = position - lags[tail_mask]
            left_vals = current[left_idx].astype(np.float64, copy=True)
            if lookup_overrides:
                for offset, idx in enumerate(left_idx):
                    if int(idx) in lookup_overrides:
                        left_vals[offset] = lookup_overrides[int(idx)]
            d_sxxl[tail_mask] += delta * left_vals
        return d_sx, d_sxl, d_sx2, d_sx2l, d_sxxl

    def apply_changes(self, positions, deltas) -> None:
        """Apply value changes ``x[p] += d`` and update all aggregates.

        Changes are applied sequentially so that overlapping lag pairs inside
        the batch (the ``delta_k * delta_{k+l}`` cross terms of Equation 9)
        are accounted for exactly.
        """
        positions = np.atleast_1d(np.asarray(positions, dtype=np.int64))
        deltas = np.atleast_1d(np.asarray(deltas, dtype=np.float64))
        if positions.shape != deltas.shape:
            raise ValueError("positions and deltas must have the same shape")
        sums = self._sums
        for position, delta in zip(positions, deltas):
            if delta == 0.0:
                continue
            position = int(position)
            if not 0 <= position < self._n:
                raise IndexError(f"position {position} out of range [0, {self._n})")
            d_sx, d_sxl, d_sx2, d_sx2l, d_sxxl = self._lag_deltas(position, float(delta), None)
            sums.sx += d_sx
            sums.sxl += d_sxl
            sums.sx2 += d_sx2
            sums.sx2l += d_sx2l
            sums.sxxl += d_sxxl
            self._current[position] += delta

    def preview_acf(self, positions, deltas) -> np.ndarray:
        """ACF the series *would* have after the given changes.

        Nothing is mutated; the cost is ``O(m L)`` for ``m`` changed
        positions.
        """
        positions = np.atleast_1d(np.asarray(positions, dtype=np.int64))
        deltas = np.atleast_1d(np.asarray(deltas, dtype=np.float64))
        if positions.shape != deltas.shape:
            raise ValueError("positions and deltas must have the same shape")
        sums = self._sums.copy()
        overrides: dict[int, float] = {}
        for position, delta in zip(positions, deltas):
            if delta == 0.0:
                continue
            position = int(position)
            if not 0 <= position < self._n:
                raise IndexError(f"position {position} out of range [0, {self._n})")
            d_sx, d_sxl, d_sx2, d_sx2l, d_sxxl = self._lag_deltas(
                position, float(delta), overrides)
            sums.sx += d_sx
            sums.sxl += d_sxl
            sums.sx2 += d_sx2
            sums.sx2l += d_sx2l
            sums.sxxl += d_sxxl
            base = overrides.get(position, float(self._current[position]))
            overrides[position] = base + float(delta)
        return self._acf_from(sums)

    def preview_pacf(self, positions, deltas) -> np.ndarray:
        """PACF the series would have after the given changes (no mutation)."""
        return pacf_from_acf(self.preview_acf(positions, deltas))

    # ------------------------------------------------------------------ #
    # contiguous-range fast path (used by the CAMEO inner loop)
    # ------------------------------------------------------------------ #
    def _contiguous_delta_sums(self, start: int, deltas: np.ndarray
                               ) -> tuple[np.ndarray, ...]:
        """Aggregate deltas for changing the contiguous range
        ``[start, start + len(deltas))`` by ``deltas``.

        The closed form uses prefix sums for the head/tail sums and three dot
        products per lag for the lagged dot product, including the exact
        ``delta_k * delta_{k+l}`` cross terms of Equation 9.  All deltas are
        with respect to the *current* values; nothing is mutated.
        """
        m = deltas.size
        n = self._n
        if start < 0 or start + m > n:
            raise IndexError("contiguous range out of bounds")
        lags = self._lags
        current = self._current
        old = current[start:start + m]
        energy = deltas * (2.0 * old + deltas)
        prefix_d = np.empty(m + 1, dtype=np.float64)
        prefix_d[0] = 0.0
        np.cumsum(deltas, out=prefix_d[1:])
        prefix_e = np.empty(m + 1, dtype=np.float64)
        prefix_e[0] = 0.0
        np.cumsum(energy, out=prefix_e[1:])

        # For lag l the head covers positions <= n-1-l, the tail positions >= l.
        head_counts = np.clip(np.minimum(start + m, n - lags) - start, 0, m)
        tail_starts = np.clip(lags - start, 0, m)

        d_sx = prefix_d[head_counts]
        d_sx2 = prefix_e[head_counts]
        d_sxl = prefix_d[m] - prefix_d[tail_starts]
        d_sx2l = prefix_e[m] - prefix_e[tail_starts]

        d_sxxl = self._lagged_dot_deltas(start, deltas, head_counts, tail_starts)
        return d_sx, d_sxl, d_sx2, d_sx2l, d_sxxl

    def _lagged_dot_deltas(self, start: int, deltas: np.ndarray,
                           head_counts: np.ndarray, tail_starts: np.ndarray) -> np.ndarray:
        """Delta of ``sxxl`` for a contiguous change, for every lag.

        Away from the series boundaries the head and tail contributions are
        plain cross-correlations between the delta vector and the current
        values, and the cross term is the autocorrelation of the deltas —
        three ``np.correlate`` calls replace the per-lag Python loop.  Within
        ``L`` points of either boundary the per-lag loop handles the clipped
        ranges exactly.
        """
        m = deltas.size
        n = self._n
        lags = self._lags
        max_lag = self._max_lag
        current = self._current

        if start >= max_lag and start + m + max_lag <= n:
            # Head: sum_k d_k * current[start + k + l]  for l = 1..L.
            head_segment = current[start:start + m + max_lag]
            head_corr = np.correlate(head_segment, deltas, mode="valid")  # length L+1
            head = head_corr[1:max_lag + 1]
            # Tail: sum_k d_k * current[start + k - l]  for l = 1..L.
            tail_segment = current[start - max_lag:start + m]
            tail_corr = np.correlate(tail_segment, deltas, mode="valid")  # length L+1
            tail = tail_corr[:max_lag][::-1]
            # Cross term: sum_k d_k * d_{k+l}.
            cross = np.zeros(max_lag)
            if m > 1:
                auto = np.correlate(deltas, deltas, mode="full")[m:]  # lags 1..m-1
                upto = min(max_lag, m - 1)
                cross[:upto] = auto[:upto]
            return head + tail + cross

        d_sxxl = np.zeros(lags.size)
        for j, lag in enumerate(lags):
            lag = int(lag)
            total = 0.0
            head_count = int(head_counts[j])
            if head_count > 0:
                total += float(np.dot(deltas[:head_count],
                                      current[start + lag:start + lag + head_count]))
            tail_start = int(tail_starts[j])
            if tail_start < m:
                total += float(np.dot(deltas[tail_start:],
                                      current[start + tail_start - lag:start + m - lag]))
            if lag < m:
                total += float(np.dot(deltas[:m - lag], deltas[lag:]))
            d_sxxl[j] = total
        return d_sxxl

    def preview_acf_contiguous(self, start: int, deltas) -> np.ndarray:
        """ACF after changing the contiguous range starting at ``start``.

        Equivalent to :meth:`preview_acf` with ``positions = start ..
        start+len(deltas)-1`` but considerably faster because the update is
        evaluated in closed form instead of point by point.
        """
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return self.acf()
        d_sx, d_sxl, d_sx2, d_sx2l, d_sxxl = self._contiguous_delta_sums(int(start), deltas)
        sums = self._sums
        # Reused across calls (thread-locally: the fine-grained parallel
        # strategy previews from several threads): previewing is the single
        # hottest operation of the CAMEO inner loop, and reallocating five
        # lag vectors per candidate dominates its cost at small L.
        preview = getattr(self._preview_scratch, "sums", None)
        if preview is None:
            preview = LagSums(
                counts=sums.counts,
                sx=np.empty_like(sums.sx),
                sxl=np.empty_like(sums.sxl),
                sx2=np.empty_like(sums.sx2),
                sx2l=np.empty_like(sums.sx2l),
                sxxl=np.empty_like(sums.sxxl),
            )
            self._preview_scratch.sums = preview
        preview.counts = sums.counts
        np.add(sums.sx, d_sx, out=preview.sx)
        np.add(sums.sxl, d_sxl, out=preview.sxl)
        np.add(sums.sx2, d_sx2, out=preview.sx2)
        np.add(sums.sx2l, d_sx2l, out=preview.sx2l)
        np.add(sums.sxxl, d_sxxl, out=preview.sxxl)
        return self._acf_from(preview)

    def apply_contiguous(self, start: int, deltas) -> None:
        """Commit a contiguous-range change (fast equivalent of
        :meth:`apply_changes`)."""
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return
        start = int(start)
        d_sx, d_sxl, d_sx2, d_sx2l, d_sxxl = self._contiguous_delta_sums(start, deltas)
        sums = self._sums
        sums.sx += d_sx
        sums.sxl += d_sxl
        sums.sx2 += d_sx2
        sums.sx2l += d_sx2l
        sums.sxxl += d_sxxl
        self._current[start:start + deltas.size] += deltas

    # ------------------------------------------------------------------ #
    # verification helper
    # ------------------------------------------------------------------ #
    def recompute_acf(self) -> np.ndarray:
        """Recompute the ACF from the current series without the aggregates.

        Exists for testing: the incrementally maintained ACF must match this
        value up to floating-point error.
        """
        sums = self._build_sums(self._current, self._lags)
        return self._acf_from(sums)


# Convenience alias used in a couple of signatures.
def acf_of(values, max_lag: int) -> np.ndarray:
    """One-shot lagged-Pearson ACF via the aggregate machinery."""
    state = ACFAggregateState(values, max_lag)
    return state.acf()


_ = acf_from_sums  # re-exported for API stability; silences unused-import linters
