"""The :class:`Codec` protocol and its :class:`CompressedBlock` result.

The paper evaluates CAMEO against three other compressor families — line
simplification, model-based (PMC/SWING/Sim-Piece/FFT), and lossless
(Gorilla/Chimp) — under a single size/deviation accounting.  Historically
each family exposed its own interface (:class:`~repro.data.timeseries.
IrregularSeries`, :class:`~repro.compressors.base.CompressedModel`, raw
``(bytes, bit_length, count)`` triples), and every consumer re-adapted them.
This module defines the one interface they all share:

* :meth:`Codec.encode` turns a value chunk into a :class:`CompressedBlock`
  that knows its size in bits, whether it is exact, and how it was produced;
* :meth:`Codec.decode` reconstructs the regular values from a block.

Storage segments, streaming chunks, the CLI, and the benchmark harness all
speak this interface; the concrete adapters live in
:mod:`repro.codecs.adapters` and are discovered through
:mod:`repro.codecs.registry`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_array
from ..data.timeseries import BITS_PER_VALUE_RAW
from ..exceptions import CodecMismatchError

__all__ = ["CompressedBlock", "Codec", "ingest_values", "restore_dtype"]

#: Metadata key recording a narrower-than-float64 input dtype.
SOURCE_DTYPE_KEY = "source_dtype"


def ingest_values(values, name: str = "values") -> tuple[np.ndarray, str | None]:
    """Normalise codec input to ``float64``, remembering a narrower dtype.

    Every codec computes on (and stores payloads as) ``float64`` — the XOR
    codecs operate on the 64-bit IEEE bit pattern and the raw codec's
    accounting is 64 bits per value, so the *encoded payloads* are
    inherently float64.  To keep ``encode``/``decode`` round trips
    dtype-preserving, narrower float inputs (``float16``/``float32``, which
    convert to ``float64`` exactly) are remembered here and restored by
    :func:`restore_dtype` on decode.  Wider-than-64-bit floats are *not*
    recorded: casting them to ``float64`` already lost precision, so
    claiming their dtype back would be dishonest.

    Returns
    -------
    (values, source_dtype):
        The validated ``float64`` array and the dtype name to restore on
        decode (``None`` when the input was already ``float64``-like).
    """
    dtype = getattr(values, "dtype", None)
    source_dtype = None
    if (dtype is not None and np.issubdtype(dtype, np.floating)
            and np.dtype(dtype).itemsize < 8):
        source_dtype = np.dtype(dtype).name
    return as_float_array(values, name=name), source_dtype


def restore_dtype(block: "CompressedBlock", values: np.ndarray) -> np.ndarray:
    """Cast a decoded ``float64`` array back to the block's recorded dtype.

    The inverse of :func:`ingest_values`: when the block's metadata carries
    a ``source_dtype``, the reconstruction is cast to it (exact for
    lossless codecs, since narrow-float inputs embed into ``float64``
    without rounding); otherwise the array is returned unchanged.
    """
    source_dtype = block.metadata.get(SOURCE_DTYPE_KEY)
    if source_dtype:
        return values.astype(source_dtype)
    return values


@dataclass
class CompressedBlock:
    """One encoded value chunk plus the accounting every consumer needs.

    Attributes
    ----------
    codec:
        Name of the codec that produced the block.
    payload:
        Codec-specific representation (an :class:`IrregularSeries`, a
        ``(bytes, bit_length, count)`` triple, a
        :class:`~repro.compressors.base.CompressedModel`, a verbatim array).
    length:
        Number of original values the block represents.
    bits:
        Size of the encoded representation in bits.
    lossless:
        Whether decoding reproduces the original values exactly.
    metadata:
        Codec-specific details (error bounds, achieved deviations, ...).
    """

    codec: str
    payload: object
    length: int
    bits: int
    lossless: bool
    metadata: dict = field(default_factory=dict)

    def bits_per_value(self) -> float:
        """Bits of encoded storage per original value.

        Returns
        -------
        float
            ``bits / length`` (a raw float64 value costs 64).
        """
        return self.bits / float(max(self.length, 1))

    def compression_ratio(self) -> float:
        """Raw bits over encoded bits.

        Returns
        -------
        float
            ``(length * 64) / bits`` — how many times smaller the encoded
            form is than storing every value as a raw float64.
        """
        return (self.length * BITS_PER_VALUE_RAW) / float(max(self.bits, 1))


class Codec(ABC):
    """Encode/decode interface every compression method implements.

    Subclasses set :attr:`name` (the registry identifier) and
    :attr:`lossless`, and implement :meth:`encode` / :meth:`decode`.
    Instances are stateless with respect to the data: the same codec object
    may encode any number of independent blocks.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.codecs import get_codec
    >>> codec = get_codec("gorilla")
    >>> block = codec.encode(np.round(np.sin(np.arange(512) / 10.0), 3))
    >>> block.lossless, block.length
    (True, 512)
    >>> np.array_equal(codec.decode(block), np.round(np.sin(np.arange(512) / 10.0), 3))
    True
    """

    #: Registry / metadata identifier.
    name: str = "codec"
    #: Whether decoding is bit-exact.
    lossless: bool = False

    @abstractmethod
    def encode(self, values) -> CompressedBlock:
        """Encode a chunk of values.

        Parameters
        ----------
        values:
            1-D array-like of float values (one regularly sampled chunk).

        Returns
        -------
        CompressedBlock
            The encoded block, carrying its size-in-bits accounting and
            codec-specific metadata.
        """

    @abstractmethod
    def decode(self, block: CompressedBlock) -> np.ndarray:
        """Reconstruct the values of an encoded block.

        Parameters
        ----------
        block:
            A block previously produced by this codec's :meth:`encode`.

        Returns
        -------
        numpy.ndarray
            The reconstructed values (``block.length`` floats); bit-exact
            when :attr:`lossless` is true.

        Raises
        ------
        repro.exceptions.CodecMismatchError
            If ``block`` was encoded by a different codec.
        """

    # ------------------------------------------------------------------ #
    # uniform accounting helpers
    # ------------------------------------------------------------------ #
    def bits(self, values) -> int:
        """Encoded size of ``values`` in bits (one-shot convenience)."""
        return int(self.encode(values).bits)

    def bits_per_value(self, values) -> float:
        """Bits of encoded storage per original value of ``values``."""
        return self.encode(values).bits_per_value()

    def compression_ratio(self, values) -> float:
        """Raw bits over encoded bits for ``values``."""
        return self.encode(values).compression_ratio()

    # ------------------------------------------------------------------ #
    def _check_block(self, block: CompressedBlock) -> None:
        if block.codec != self.name:
            raise CodecMismatchError(
                f"block was encoded with {block.codec!r}, not {self.name!r}")

    #: Backwards-compatible spelling used by the storage layer's subclasses.
    _check_chunk = _check_block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"
