"""Unified codec layer: one :class:`Codec` protocol for every compressor.

The paper compares four compressor families — CAMEO, line simplification,
model-based approximation, and lossless XOR coding — under one
size/deviation accounting.  This package gives them one programmatic
interface to match:

* :mod:`repro.codecs.base` — the :class:`Codec` protocol
  (``encode(values) -> CompressedBlock``, ``decode(block) -> ndarray``) and
  the uniform bits / compression-ratio / metadata accounting;
* :mod:`repro.codecs.registry` — name-based discovery
  (:func:`register_codec`, :func:`get_codec`, :func:`available_codecs`),
  with family/label metadata so consumers can iterate codecs generically;
* :mod:`repro.codecs.adapters` — the built-in adapters for all four
  families;
* :mod:`repro.codecs.serialize` — portable block documents used by the CLI
  and the storage engine's persistence.

The storage engine (:mod:`repro.storage`), the streaming layer
(:mod:`repro.streaming`), the CLI (:mod:`repro.cli`), and the benchmark
harness (:mod:`repro.benchlib`) are all thin consumers of this package.
"""

from .base import Codec, CompressedBlock
from .registry import (
    CodecSpec,
    available_codecs,
    codec_families,
    codec_spec,
    codec_specs,
    get_codec,
    register_codec,
)
from .adapters import (
    CameoCodec,
    ChimpXorCodec,
    FftCodec,
    GorillaXorCodec,
    PmcCodec,
    RawCodec,
    SimPieceCodec,
    SimplifierCodec,
    SwingCodec,
)
from .serialize import (
    block_from_document,
    block_to_document,
    load_block_json,
    save_block_json,
)

__all__ = [
    "Codec",
    "CompressedBlock",
    "CodecSpec",
    "register_codec",
    "get_codec",
    "available_codecs",
    "codec_spec",
    "codec_specs",
    "codec_families",
    "RawCodec",
    "GorillaXorCodec",
    "ChimpXorCodec",
    "CameoCodec",
    "SimplifierCodec",
    "PmcCodec",
    "SwingCodec",
    "SimPieceCodec",
    "FftCodec",
    "block_to_document",
    "block_from_document",
    "save_block_json",
    "load_block_json",
]
