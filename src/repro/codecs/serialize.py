"""(De)serialization of :class:`~repro.codecs.base.CompressedBlock` objects.

Three payload shapes serialize natively, keeping their compression benefit on
disk:

``irregular``
    Retained indices/values of an :class:`~repro.data.timeseries.
    IrregularSeries` (CAMEO and the line simplifiers).
``values``
    A verbatim ``float64`` array (the raw codec and short segments).
``bits``
    The ``(bytes, bit_length, count)`` triple of the XOR codecs
    (hex-encoded; the payload bytes round-trip exactly).

The functional-approximation codecs (PMC, SWING, Sim-Piece, FFT) keep Python
closures as payloads, which are not portable.  :func:`payload_to_document`
refuses them — the storage engine's persistence keeps that strict behaviour —
while :func:`block_to_document` can *materialize* such a block instead: the
document stores the model's reconstruction (``dense``) next to the original
bits accounting, so a CLI ``compress`` → ``decompress`` round trip reproduces
``codec.decode(block)`` exactly even though the on-disk form is not the
model itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

import numpy as np

from ..compressors.base import CompressedModel
from ..data.timeseries import IrregularSeries
from ..exceptions import DecompressionError, StorageError
from .base import CompressedBlock

__all__ = [
    "payload_to_document",
    "payload_from_document",
    "block_to_document",
    "block_from_document",
    "save_block_json",
    "load_block_json",
    "BLOCK_FORMAT",
]

#: Marker stored in every serialized block document.
BLOCK_FORMAT = "repro.codec-block"
_FORMAT_VERSION = 1


def _jsonify(value):
    """Recursively convert numpy scalars/arrays to native JSON types.

    Metadata dictionaries routinely carry ``np.float64`` deviations or small
    arrays; stringifying them (``json.dumps(default=str)``) would silently
    change their type across a save/load round trip, so they are normalized
    explicitly instead.  Genuinely unserializable values still raise.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


# ---------------------------------------------------------------------- #
# payloads
# ---------------------------------------------------------------------- #
def payload_to_document(payload) -> dict:
    """Serialize a natively-persistable block payload to a JSON-able dict.

    Raises :class:`~repro.exceptions.StorageError` for payload types without
    a portable encoded form (the model-based codecs); see
    :func:`block_to_document` for the materializing alternative.
    """
    if isinstance(payload, IrregularSeries):
        return {
            "type": "irregular",
            "indices": payload.indices.tolist(),
            "values": payload.values.tolist(),
            "original_length": payload.original_length,
            "name": payload.name,
            "metadata": payload.metadata,
        }
    if isinstance(payload, np.ndarray):
        return {"type": "values", "values": payload.tolist()}
    if (isinstance(payload, tuple) and len(payload) == 3
            and isinstance(payload[0], (bytes, bytearray))):
        data, bit_length, count = payload
        return {"type": "bits", "data": bytes(data).hex(),
                "bit_length": int(bit_length), "count": int(count)}
    raise StorageError(
        f"payload of type {type(payload).__name__} cannot be persisted; "
        "compact the series with a persistable codec (cameo, a line "
        "simplifier, gorilla, chimp or raw) first")


def payload_from_document(document: dict):
    """Inverse of :func:`payload_to_document` (plus the ``dense`` form)."""
    kind = document.get("type")
    if kind == "irregular":
        return IrregularSeries(
            indices=np.asarray(document["indices"], dtype=np.int64),
            values=np.asarray(document["values"], dtype=np.float64),
            original_length=int(document["original_length"]),
            name=str(document.get("name", "compressed")),
            metadata=dict(document.get("metadata", {})))
    if kind == "values":
        return np.asarray(document["values"], dtype=np.float64)
    if kind == "bits":
        return (bytes.fromhex(document["data"]), int(document["bit_length"]),
                int(document["count"]))
    if kind == "dense":
        values = np.asarray(document["values"], dtype=np.float64)
        return CompressedModel(
            reconstruct=lambda: values.copy(),
            stored_values=int(document.get("stored_values", values.size)),
            original_length=values.size,
            name=str(document.get("name", "model")),
            metadata=dict(document.get("metadata", {})))
    raise StorageError(f"unknown payload type {kind!r} in document")


# ---------------------------------------------------------------------- #
# blocks
# ---------------------------------------------------------------------- #
def block_to_document(block: CompressedBlock, *,
                      materialize: Callable[[], np.ndarray] | None = None) -> dict:
    """Serialize a block (header + payload) to a JSON-able dict.

    ``materialize`` — typically ``lambda: codec.decode(block)`` — enables the
    ``dense`` fallback for payloads without a portable encoded form; without
    it such payloads raise :class:`~repro.exceptions.StorageError`.
    """
    if isinstance(block.payload, CompressedModel):
        if materialize is None:
            # Same refusal as payload_to_document, for a uniform error path.
            payload_document = payload_to_document(block.payload)
        else:
            model = block.payload
            payload_document = {
                "type": "dense",
                "values": np.asarray(materialize(), dtype=np.float64).tolist(),
                "stored_values": int(model.stored_values),
                "name": model.name,
                "metadata": model.metadata,
            }
    else:
        payload_document = payload_to_document(block.payload)
    return _jsonify({
        "format": BLOCK_FORMAT,
        "version": _FORMAT_VERSION,
        "codec": block.codec,
        "length": int(block.length),
        "bits": int(block.bits),
        "lossless": bool(block.lossless),
        "metadata": block.metadata,
        "payload": payload_document,
    })


def block_from_document(document: dict) -> CompressedBlock:
    """Inverse of :func:`block_to_document`."""
    if document.get("format") != BLOCK_FORMAT:
        raise DecompressionError("not a repro.codec-block document")
    if int(document.get("version", 0)) > _FORMAT_VERSION:
        raise DecompressionError(
            f"codec-block version {document.get('version')} is newer than "
            f"supported ({_FORMAT_VERSION})")
    try:
        return CompressedBlock(
            codec=str(document["codec"]),
            payload=payload_from_document(document["payload"]),
            length=int(document["length"]),
            bits=int(document["bits"]),
            lossless=bool(document["lossless"]),
            metadata=dict(document.get("metadata", {})))
    except (KeyError, ValueError, TypeError) as exc:
        raise DecompressionError(f"cannot parse codec-block document: {exc}") from exc


def save_block_json(block: CompressedBlock, path, *,
                    materialize: Callable[[], np.ndarray] | None = None) -> Path:
    """Write the JSON document of ``block`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = block_to_document(block, materialize=materialize)
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


def load_block_json(path) -> CompressedBlock:
    """Read a block document written by :func:`save_block_json`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DecompressionError(f"cannot read codec block from {path}: {exc}") from exc
    return block_from_document(document)
