"""Name-based codec registry (modeled on :mod:`repro.metrics.registry`).

Every compression method of the paper is registered here exactly once, with
enough metadata for downstream consumers to stay generic:

* the storage engine builds segment codecs through :func:`get_codec`;
* the streaming layer accepts any registered codec per sealed chunk;
* the CLI exposes ``--codec NAME`` and ``list-codecs``;
* the benchmark harness derives its method lists from the registered
  families instead of hand-wired tuples.

Names are case-insensitive.  Registration order is preserved (it follows the
paper's presentation order), so family listings are stable.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import InvalidParameterError
from .base import Codec

__all__ = [
    "CodecSpec",
    "register_codec",
    "get_codec",
    "available_codecs",
    "codec_spec",
    "codec_specs",
    "codec_families",
]


@dataclass(frozen=True)
class CodecSpec:
    """Registry entry for one codec.

    Attributes
    ----------
    name:
        Canonical (lowercase) lookup key.
    factory:
        Callable returning a ready :class:`~repro.codecs.base.Codec`;
        keyword arguments of :func:`get_codec` are forwarded to it.
    family:
        Compressor family: ``"raw"``, ``"lossless"``, ``"cameo"``,
        ``"simplify"``, ``"model"``, or ``"custom"``.
    label:
        Display name used in benchmark tables (``"VW"``, ``"SP"``, ...).
    tune:
        Name of the keyword argument the benchmark harness' trial-and-error
        ACF search adjusts (``None`` for methods that bound the statistic
        directly or are lossless).
    description:
        One-line summary shown by the CLI's ``list-codecs``.
    fidelity:
        Default knob settings the fidelity scorecard encodes with
        (:mod:`repro.benchlib.scorecard`).  Recognised keys:

        * ``"epsilon"`` — statistic bound for cameo/simplify codecs
          (``max_lag``/``agg_window`` come from the series itself);
        * ``"error_bound_fraction"`` — absolute error bound as a fraction
          of the series' value range, for model codecs tuned by
          ``error_bound``;
        * any other key — forwarded verbatim to the codec factory.

        Empty for codecs that need no knobs (raw, lossless).
    """

    name: str
    factory: Callable[..., Codec]
    family: str = "custom"
    label: str = ""
    tune: str | None = None
    description: str = ""
    fidelity: dict = field(default_factory=dict)


_REGISTRY: dict[str, CodecSpec] = {}


def register_codec(name: str, factory: Callable[..., Codec], *,
                   family: str = "custom", label: str | None = None,
                   tune: str | None = None, description: str = "",
                   fidelity: dict | None = None,
                   overwrite: bool = False) -> None:
    """Register a codec factory under ``name`` (case-insensitive).

    Parameters
    ----------
    name:
        Lookup key, e.g. ``"gorilla"``.
    factory:
        Callable ``(**kwargs) -> Codec``.
    family, label, tune, description, fidelity:
        See :class:`CodecSpec`.  ``label`` defaults to ``name``; ``fidelity``
        defaults to no knobs.
    overwrite:
        Allow replacing an existing registration.  Defaults to ``False`` to
        protect the built-in codecs from accidental shadowing.
    """
    key = str(name).strip().lower()
    if not key:
        raise InvalidParameterError("codec name must be a non-empty string")
    if not callable(factory):
        raise InvalidParameterError(f"codec {name!r} factory must be callable")
    if key in _REGISTRY and not overwrite:
        raise InvalidParameterError(f"codec {name!r} is already registered")
    _REGISTRY[key] = CodecSpec(name=key, factory=factory, family=str(family),
                               label=str(label) if label is not None else str(name),
                               tune=tune, description=description,
                               fidelity=dict(fidelity) if fidelity else {})


def available_codecs() -> list[str]:
    """Names of all registered codecs.

    Returns
    -------
    list of str
        Canonical (lowercase) codec names, sorted alphabetically.
    """
    return sorted(_REGISTRY)


def codec_spec(name: str) -> CodecSpec:
    """Look up the registry entry for one codec.

    Parameters
    ----------
    name:
        Registered codec name (case-insensitive).

    Returns
    -------
    CodecSpec
        The immutable registry entry (factory, family, label, tune knob).

    Raises
    ------
    repro.exceptions.InvalidParameterError
        If no codec is registered under ``name``; the message lists every
        registered codec and close-match suggestions.
    """
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError as exc:
        raise _unknown_codec_error(name) from exc


def codec_specs(family: str | None = None) -> list[CodecSpec]:
    """All registered specs, optionally restricted to one family.

    Parameters
    ----------
    family:
        When given, only specs whose ``family`` matches exactly.

    Returns
    -------
    list of CodecSpec
        In registration order (the paper's presentation order for the
        built-ins), so derived listings are stable.
    """
    specs = list(_REGISTRY.values())
    if family is None:
        return specs
    return [spec for spec in specs if spec.family == family]


def codec_families() -> list[str]:
    """Distinct codec families.

    Returns
    -------
    list of str
        Family names in first-registration order (``raw``, ``lossless``,
        ``cameo``, ``simplify``, ``model`` for the built-ins).
    """
    seen: dict[str, None] = {}
    for spec in _REGISTRY.values():
        seen.setdefault(spec.family, None)
    return list(seen)


def get_codec(name: str, **kwargs) -> Codec:
    """Construct a registered codec by name.

    Parameters
    ----------
    name:
        Registered codec name (case-insensitive).  Built-ins: ``raw``,
        ``gorilla``, ``chimp``, ``cameo``, ``vw``, ``tps``, ``tpm``,
        ``pipv``, ``pipe``, ``rdp``, ``pmc``, ``swing``, ``simpiece``,
        ``fft``.
    **kwargs:
        Forwarded to the codec's factory (e.g. ``max_lag``/``epsilon`` for
        ``cameo``, ``error_bound`` for the model codecs).

    Returns
    -------
    Codec
        A ready-to-use codec instance.

    Raises
    ------
    repro.exceptions.InvalidParameterError
        For unknown names; the error lists every registered codec (and the
        closest matches, when any).

    Examples
    --------
    >>> from repro.codecs import get_codec
    >>> get_codec("cameo", max_lag=24, epsilon=0.02).name
    'cameo'
    """
    return codec_spec(name).factory(**kwargs)


def _unknown_codec_error(name) -> InvalidParameterError:
    key = str(name).strip().lower()
    message = (f"unknown codec {name!r}; available: "
               f"{', '.join(available_codecs())}")
    close = difflib.get_close_matches(key, available_codecs(), n=3)
    if close:
        message += f" (did you mean: {', '.join(close)}?)"
    return InvalidParameterError(message)
