"""Concrete :class:`~repro.codecs.base.Codec` adapters for every family.

One adapter per compression method the paper studies:

* :class:`RawCodec` — the identity representation (64 bits per value),
* :class:`GorillaXorCodec` / :class:`ChimpXorCodec` — the lossless XOR
  codecs of :mod:`repro.lossless` (payloads stay byte-identical to the
  underlying codecs),
* :class:`CameoCodec` — CAMEO (:class:`repro.core.CameoCompressor`) with a
  per-block statistic bound,
* :class:`SimplifierCodec` — the ACF-constrained line-simplification
  baselines (VW, TPs, TPm, PIPv, PIPe, RDP),
* :class:`PmcCodec` / :class:`SwingCodec` / :class:`SimPieceCodec` /
  :class:`FftCodec` — the functional-approximation baselines.

The built-ins are registered with :func:`repro.codecs.registry.register_codec`
at import time, tagged with their family so consumers (storage, streaming,
CLI, benchmarks) can iterate them generically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._validation import check_positive_int
from ..compressors import FFTCompressor, PoorMansCompressionMean, SimPiece, SwingFilter
from ..compressors.base import CompressedModel, LossyCompressor
from ..core import CameoCompressor
from ..data.timeseries import BITS_PER_VALUE_RAW, IrregularSeries
from ..lossless import ChimpCodec, GorillaCodec
from ..simplify import AcfConstrainedSimplifier, make_simplifier
from .base import SOURCE_DTYPE_KEY, Codec, CompressedBlock, ingest_values, restore_dtype
from .registry import register_codec

__all__ = [
    "RawCodec",
    "GorillaXorCodec",
    "ChimpXorCodec",
    "CameoCodec",
    "SimplifierCodec",
    "PmcCodec",
    "SwingCodec",
    "SimPieceCodec",
    "FftCodec",
]


def _tag_dtype(block: CompressedBlock, source_dtype: str | None) -> CompressedBlock:
    """Record a narrower input dtype on the block so decode can restore it."""
    if source_dtype:
        block.metadata[SOURCE_DTYPE_KEY] = source_dtype
    return block


class RawCodec(Codec):
    """Identity codec: stores the values verbatim at 64 bits each."""

    name = "raw"
    lossless = True

    def encode(self, values) -> CompressedBlock:
        values, source_dtype = ingest_values(values)
        return _tag_dtype(CompressedBlock(codec=self.name, payload=values.copy(),
                                          length=values.size,
                                          bits=values.size * BITS_PER_VALUE_RAW,
                                          lossless=True), source_dtype)

    def decode(self, block: CompressedBlock) -> np.ndarray:
        self._check_block(block)
        return restore_dtype(block, np.asarray(block.payload, dtype=np.float64).copy())


class _XorCodec(Codec):
    """Shared adapter for the bit-level lossless codecs."""

    lossless = True
    _codec_factory: Callable

    def __init__(self) -> None:
        self._codec = self._codec_factory()

    def encode(self, values) -> CompressedBlock:
        values, source_dtype = ingest_values(values)
        payload, bit_length, count = self._codec.encode(values)
        return _tag_dtype(CompressedBlock(codec=self.name,
                                          payload=(payload, bit_length, count),
                                          length=count, bits=bit_length,
                                          lossless=True), source_dtype)

    def decode(self, block: CompressedBlock) -> np.ndarray:
        self._check_block(block)
        payload, bit_length, count = block.payload
        return restore_dtype(block, self._codec.decode(payload, bit_length, count))

    def encode_many(self, matrix) -> list[CompressedBlock]:
        """Encode many same-length float64 series in one stacked kernel pass.

        Used by the batch engine's cross-series fast path; every block is
        byte-identical to :meth:`encode` on the matching row (the rows must
        already be validated float64 series — dtype bookkeeping is the
        caller's job).
        """
        return [
            CompressedBlock(codec=self.name, payload=(payload, bit_length, count),
                            length=count, bits=bit_length, lossless=True)
            for payload, bit_length, count in self._codec.encode_batch(matrix)
        ]


class GorillaXorCodec(_XorCodec):
    """Gorilla XOR compression behind the unified codec interface."""

    name = "gorilla"
    _codec_factory = GorillaCodec


class ChimpXorCodec(_XorCodec):
    """Chimp XOR compression behind the unified codec interface."""

    name = "chimp"
    _codec_factory = ChimpCodec


class _IrregularCodec(Codec):
    """Shared decode/accounting for codecs producing an IrregularSeries."""

    #: Charge 64 bits per retained value plus 32 bits per retained index,
    #: the honest on-disk accounting for an irregular representation.
    store_indices: bool = True

    def decode(self, block: CompressedBlock) -> np.ndarray:
        self._check_block(block)
        if isinstance(block.payload, np.ndarray):
            # Blocks too short for line simplification are kept verbatim.
            return restore_dtype(block, np.asarray(block.payload, dtype=np.float64).copy())
        return restore_dtype(block, block.payload.decompress())

    def _short_block(self, values: np.ndarray) -> CompressedBlock:
        """Verbatim block for chunks too short to simplify (< 4 points)."""
        return CompressedBlock(codec=self.name, payload=values.copy(),
                               length=values.size,
                               bits=values.size * BITS_PER_VALUE_RAW, lossless=True,
                               metadata={"short_segment": True})

    def _block_from_irregular(self, result: IrregularSeries) -> CompressedBlock:
        # Carry the compression run's configuration and statistics into the
        # block so per-chunk settings (blocking, batch_size, stopped_by, ...)
        # survive the chunk boundary and are inspectable downstream; only
        # the bulky reference-statistic vector is dropped.
        metadata = {key: value for key, value in result.metadata.items()
                    if key != "reference_statistic"}
        metadata["kept_points"] = len(result)
        return CompressedBlock(
            codec=self.name, payload=result, length=result.original_length,
            bits=result.bits(store_indices=self.store_indices), lossless=False,
            metadata=metadata)


class CameoCodec(_IrregularCodec):
    """CAMEO behind the unified codec interface: ACF/PACF-bounded per block.

    Parameters are forwarded to :class:`repro.core.CameoCompressor`; every
    encoded block is compressed under the same statistic bound, so the
    deviation guarantee holds per block.
    """

    name = "cameo"

    def __init__(self, max_lag: int = 24, epsilon: float | None = 0.01, **kwargs):
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.epsilon = epsilon
        self.options = dict(kwargs)
        self._agg_window = int(kwargs.get("agg_window", 1))
        self._compressor = CameoCompressor(max_lag, epsilon, **kwargs)

    def encode(self, values) -> CompressedBlock:
        values, source_dtype = ingest_values(values)
        # Blocks shorter than a few aggregation windows cannot track the
        # statistic meaningfully; keep them verbatim (typically only the
        # final, partially filled chunk of a series).
        if values.size < max(4, 3 * self._agg_window):
            return _tag_dtype(self._short_block(values), source_dtype)
        return _tag_dtype(self._block_from_irregular(self.compress(values)),
                          source_dtype)

    def compress(self, values) -> IrregularSeries:
        """The underlying point-retaining compression (no block wrapping)."""
        return self._compressor.compress(values)

    @property
    def compressor(self) -> CameoCompressor:
        """The configured :class:`~repro.core.CameoCompressor` behind this codec."""
        return self._compressor


class SimplifierCodec(_IrregularCodec):
    """ACF-constrained line-simplification baselines (VW, TP, PIP, RDP)."""

    def __init__(self, method: str, max_lag: int = 24, epsilon: float = 0.01, **kwargs):
        self.method = str(method)
        self.name = self.method.lower()
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.epsilon = epsilon
        self._agg_window = int(kwargs.get("agg_window", 1))
        self._simplifier = AcfConstrainedSimplifier(
            make_simplifier(self.method), max_lag, epsilon, **kwargs)

    def encode(self, values) -> CompressedBlock:
        values, source_dtype = ingest_values(values)
        if values.size < max(4, 3 * self._agg_window):
            return _tag_dtype(self._short_block(values), source_dtype)
        return _tag_dtype(self._block_from_irregular(self.compress(values)),
                          source_dtype)

    def compress(self, values) -> IrregularSeries:
        """The underlying point-retaining compression (no block wrapping)."""
        return self._simplifier.compress(values)


class _ModelCodec(Codec):
    """Shared adapter for the functional-approximation baselines.

    The payload keeps the :class:`repro.compressors.base.CompressedModel`
    produced by the baseline, so decoding simply calls its reconstruction.
    """

    def encode(self, values) -> CompressedBlock:
        values, source_dtype = ingest_values(values)
        model = self.compressor().compress(values)
        return _tag_dtype(
            CompressedBlock(codec=self.name, payload=model, length=values.size,
                            bits=model.bits(), lossless=False,
                            metadata={"stored_values": model.stored_values}),
            source_dtype)

    def decode(self, block: CompressedBlock) -> np.ndarray:
        self._check_block(block)
        return restore_dtype(block, block.payload.decompress())

    def model(self, values) -> CompressedModel:
        """The underlying model-based compression (no block wrapping)."""
        return self.compressor().compress(values)

    def compressor(self) -> LossyCompressor:  # pragma: no cover - overridden
        """Construct the underlying :class:`LossyCompressor`."""
        raise NotImplementedError

    def _compressor(self) -> LossyCompressor:
        """Backwards-compatible spelling used by the old storage adapters."""
        return self.compressor()


class PmcCodec(_ModelCodec):
    """Poor Man's Compression (constant segments) as a unified codec."""

    name = "pmc"

    def __init__(self, error_bound: float = 0.01, variant: str = "midrange"):
        self.error_bound = float(error_bound)
        self.variant = variant

    def compressor(self) -> LossyCompressor:
        return PoorMansCompressionMean(self.error_bound, variant=self.variant)


class SwingCodec(_ModelCodec):
    """SWING filter (connected linear segments) as a unified codec."""

    name = "swing"

    def __init__(self, error_bound: float = 0.01):
        self.error_bound = float(error_bound)

    def compressor(self) -> LossyCompressor:
        return SwingFilter(self.error_bound)


class SimPieceCodec(_ModelCodec):
    """Sim-Piece (grouped linear segments) as a unified codec."""

    name = "simpiece"

    def __init__(self, error_bound: float = 0.01):
        self.error_bound = float(error_bound)

    def compressor(self) -> LossyCompressor:
        return SimPiece(self.error_bound)


class FftCodec(_ModelCodec):
    """FFT top-coefficient compression as a unified codec."""

    name = "fft"

    def __init__(self, keep_fraction: float = 0.1):
        self.keep_fraction = float(keep_fraction)

    def compressor(self) -> LossyCompressor:
        return FFTCompressor(self.keep_fraction)


# ---------------------------------------------------------------------- #
# built-in registrations (paper order within each family)
# ---------------------------------------------------------------------- #
#: Display labels of the line-simplification baselines, in the paper's order.
_SIMPLIFIER_LABELS = ("VW", "TPs", "TPm", "PIPv", "PIPe", "RDP")


def _register_builtins() -> None:
    register_codec("raw", RawCodec, family="raw", label="Raw",
                   description="identity representation, 64 bits/value")
    register_codec("gorilla", GorillaXorCodec, family="lossless", label="Gorilla",
                   description="lossless XOR compression (Gorilla)")
    register_codec("chimp", ChimpXorCodec, family="lossless", label="Chimp",
                   description="lossless XOR compression (Chimp)")
    register_codec("cameo", CameoCodec, family="cameo", label="CAMEO",
                   fidelity={"epsilon": 0.05},
                   description="ACF/PACF-bounded line simplification (the paper)")
    for method in _SIMPLIFIER_LABELS:
        register_codec(method, lambda max_lag=24, epsilon=0.01, _m=method, **kw:
                       SimplifierCodec(_m, max_lag, epsilon, **kw),
                       family="simplify", label=method,
                       fidelity={"epsilon": 0.05},
                       description=f"ACF-constrained {method} line simplification")
    register_codec("pmc", PmcCodec, family="model", label="PMC",
                   tune="error_bound", fidelity={"error_bound_fraction": 0.05},
                   description="constant-segment functional approximation")
    register_codec("swing", SwingCodec, family="model", label="SWING",
                   tune="error_bound", fidelity={"error_bound_fraction": 0.05},
                   description="connected linear-segment approximation")
    register_codec("simpiece", SimPieceCodec, family="model", label="SP",
                   tune="error_bound", fidelity={"error_bound_fraction": 0.05},
                   description="grouped linear-segment approximation")
    register_codec("fft", FftCodec, family="model", label="FFT",
                   tune="keep_fraction", fidelity={"keep_fraction": 0.25},
                   description="top-coefficient frequency-domain approximation")


_register_builtins()
