"""Hostile-input policies for the streaming and batch ingestion edge.

Real ingest tiers do not see the clean float64 arrays the codecs were built
on: sensors drop out (NaN runs), gateways deliver out of order, clocks gap,
and mixed payloads arrive as object arrays.  The library's historical answer
— :func:`repro._validation.as_float_array` raising on any non-finite entry —
is the *correct default* (an error-bounded codec must never silently invent
data), but an ingest edge needs explicit, recorded alternatives.

:class:`InputPolicy` names those alternatives per hazard, :func:`sanitize`
applies them, and :class:`SanitizeReport` records exactly what happened so
the decision travels with the data (block metadata, stream reports) and
decode stays self-describing:

=================  =========================  ==================================
hazard             policy knob                actions
=================  =========================  ==================================
NaN runs           ``on_nan``                 ``raise`` | ``skip`` | ``split``
non-finite (inf)   ``on_inf``                 ``raise`` | ``skip``
out-of-order       ``on_out_of_order``        ``raise`` | ``sort``
timestamp gaps     ``on_gap``                 ``raise`` | ``ignore`` | ``split``
dtype mixtures     ``on_dtype``               ``cast`` | ``raise``
=================  =========================  ==================================

``skip`` drops the offending values and records only counts; ``split``
additionally records run positions — :func:`restore_shape` can then rebuild
the original-length series with NaN gaps — and marks segment boundaries so
the streaming layer can seal chunks that never bridge a gap.

Two invariants the tests hold:

* **clean input is untouched** — on finite float64 input with monotonic
  timestamps, :func:`sanitize` returns the *same array object* and a clean
  report, so sanitized runs are bit-identical to unsanitized runs;
* **defaults never mutate** — the default policy raises on every hazard,
  matching the library's historical validation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .exceptions import InvalidParameterError, PolicyViolationError

__all__ = [
    "InputPolicy",
    "SanitizeReport",
    "SanitizeResult",
    "sanitize",
    "restore_shape",
    "SANITIZE_METADATA_KEY",
]

#: Block-metadata key under which a non-clean sanitize report is recorded.
SANITIZE_METADATA_KEY = "sanitize"

_CHOICES = {
    "on_nan": ("raise", "skip", "split"),
    "on_inf": ("raise", "skip"),
    "on_out_of_order": ("raise", "sort"),
    "on_gap": ("raise", "ignore", "split"),
    "on_dtype": ("cast", "raise"),
}


@dataclass(frozen=True)
class InputPolicy:
    """Explicit per-hazard handling decisions for hostile input.

    Parameters
    ----------
    on_nan:
        ``raise`` (default), ``skip`` (drop NaNs, record the count), or
        ``split`` (drop NaNs, record run positions, mark segment
        boundaries so streaming seals around the gap and
        :func:`restore_shape` can reconstruct the original shape).
    on_inf:
        ``raise`` (default) or ``skip`` for ``±inf`` values.
    on_out_of_order:
        ``raise`` (default) or ``sort`` when timestamps are provided and
        not non-decreasing (stable sort, so equal timestamps keep arrival
        order).
    on_gap:
        ``raise`` (default), ``ignore`` (record gap count), or ``split``
        (record + mark segment boundaries) for timestamp deltas exceeding
        :attr:`gap_limit`.
    on_dtype:
        ``cast`` (default: element-wise float conversion of object/string
        arrays, raising :class:`~repro.exceptions.PolicyViolationError`
        only for non-convertible elements) or ``raise`` (reject any
        non-numeric dtype outright).
    gap_limit:
        Absolute timestamp-delta threshold defining a gap.  ``None``
        (default) derives it as 5x the median positive delta — robust for
        near-regular sampling; pass an explicit limit for irregular feeds.
    """

    on_nan: str = "raise"
    on_inf: str = "raise"
    on_out_of_order: str = "raise"
    on_gap: str = "raise"
    on_dtype: str = "cast"
    gap_limit: float | None = None

    def __post_init__(self):
        for knob, choices in _CHOICES.items():
            value = getattr(self, knob)
            if value not in choices:
                raise InvalidParameterError(
                    f"{knob} must be one of {', '.join(choices)}; got {value!r}")
        if self.gap_limit is not None and not float(self.gap_limit) > 0:
            raise InvalidParameterError(
                f"gap_limit must be positive, got {self.gap_limit!r}")

    def as_dict(self) -> dict:
        """JSON-safe record of the non-default knobs (for metadata)."""
        record = {}
        for knob in _CHOICES:
            value = getattr(self, knob)
            if value != InputPolicy.__dataclass_fields__[knob].default:
                record[knob] = value
        if self.gap_limit is not None:
            record["gap_limit"] = float(self.gap_limit)
        return record


@dataclass
class SanitizeReport:
    """What :func:`sanitize` actually did to one input array."""

    original_length: int = 0
    final_length: int = 0
    #: ``(start, length)`` of each dropped NaN run, in post-sort input
    #: coordinates; populated by ``on_nan="split"`` only.
    nan_runs: list[tuple[int, int]] = field(default_factory=list)
    dropped_nan: int = 0
    dropped_inf: int = 0
    sorted: bool = False
    gaps: int = 0
    cast_from: str | None = None
    policy: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when the input needed no intervention at all."""
        return (self.dropped_nan == 0 and self.dropped_inf == 0
                and not self.sorted and self.gaps == 0
                and self.cast_from is None)

    def as_metadata(self) -> dict:
        """Compact JSON-safe form recorded in block metadata (non-clean only)."""
        record: dict = {"original_length": int(self.original_length)}
        if self.policy:
            record["policy"] = dict(self.policy)
        if self.dropped_nan:
            record["dropped_nan"] = int(self.dropped_nan)
        if self.nan_runs:
            record["nan_runs"] = [[int(start), int(length)]
                                  for start, length in self.nan_runs]
        if self.dropped_inf:
            record["dropped_inf"] = int(self.dropped_inf)
        if self.sorted:
            record["sorted"] = True
        if self.gaps:
            record["gaps"] = int(self.gaps)
        if self.cast_from:
            record["cast_from"] = self.cast_from
        return record


@dataclass
class SanitizeResult:
    """Sanitized values plus the report and streaming split points."""

    values: np.ndarray
    report: SanitizeReport
    #: Indices *into* :attr:`values` where a new segment begins (never 0).
    #: The streaming layer seals its buffer at each boundary so no sealed
    #: chunk bridges a NaN run or timestamp gap.
    segment_starts: list[int] = field(default_factory=list)


def _coerce_dtype(values, policy: InputPolicy, name: str,
                  report: SanitizeReport) -> np.ndarray:
    array = values if isinstance(values, np.ndarray) else np.asarray(values)
    if array.dtype.kind in ("f", "i", "u", "b"):
        if array.dtype == np.float64:
            result = array
        else:
            report.cast_from = array.dtype.name
            result = array.astype(np.float64)
    else:
        if policy.on_dtype == "raise":
            raise PolicyViolationError(
                f"{name} has non-numeric dtype {array.dtype!s} and the "
                "input policy forbids casting (on_dtype='raise')")
        try:
            result = np.asarray([float(item) for item in array.ravel()],
                                dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise PolicyViolationError(
                f"{name} mixes non-numeric values that cannot be cast to "
                f"float: {exc}") from exc
        report.cast_from = array.dtype.name
    if result.ndim != 1:
        raise PolicyViolationError(
            f"{name} must be one-dimensional, got shape {result.shape}")
    return result


def _order_and_gaps(values: np.ndarray, timestamps, policy: InputPolicy,
                    name: str, report: SanitizeReport
                    ) -> tuple[np.ndarray, list[int]]:
    """Apply timestamp policies; returns (values, gap segment starts)."""
    stamps = np.asarray(timestamps, dtype=np.float64)
    if stamps.shape != values.shape:
        raise InvalidParameterError(
            f"timestamps must match {name} in shape "
            f"(got {stamps.shape} vs {values.shape})")
    if stamps.size > 1 and np.any(np.diff(stamps) < 0):
        if policy.on_out_of_order == "raise":
            raise PolicyViolationError(
                f"{name} timestamps arrive out of order and the input "
                "policy forbids reordering (on_out_of_order='raise')")
        order = np.argsort(stamps, kind="stable")
        stamps = stamps[order]
        values = values[order]
        report.sorted = True
    gap_starts: list[int] = []
    if stamps.size > 1:
        deltas = np.diff(stamps)
        limit = policy.gap_limit
        if limit is None:
            positive = deltas[deltas > 0]
            limit = 5.0 * float(np.median(positive)) if positive.size else None
        if limit is not None:
            gap_positions = np.flatnonzero(deltas > limit)
            if gap_positions.size:
                if policy.on_gap == "raise":
                    raise PolicyViolationError(
                        f"{name} timestamps contain {gap_positions.size} "
                        f"gap(s) larger than {limit:g} and the input policy "
                        "forbids them (on_gap='raise')")
                report.gaps = int(gap_positions.size)
                if policy.on_gap == "split":
                    gap_starts = [int(position) + 1
                                  for position in gap_positions]
    return values, gap_starts


def _finite_filter(values: np.ndarray, policy: InputPolicy, name: str,
                   report: SanitizeReport
                   ) -> tuple[np.ndarray, list[int], np.ndarray | None]:
    """Apply NaN/inf policies; returns (values, nan starts, drop mask)."""
    nan_mask = np.isnan(values)
    inf_mask = np.isinf(values)
    if not nan_mask.any() and not inf_mask.any():
        return values, [], None
    if nan_mask.any() and policy.on_nan == "raise":
        raise PolicyViolationError(
            f"{name} contains {int(nan_mask.sum())} NaN value(s) and the "
            "input policy forbids them (on_nan='raise')")
    if inf_mask.any() and policy.on_inf == "raise":
        raise PolicyViolationError(
            f"{name} contains {int(inf_mask.sum())} non-finite value(s) and "
            "the input policy forbids them (on_inf='raise')")
    report.dropped_nan = int(nan_mask.sum())
    report.dropped_inf = int(inf_mask.sum())

    drop_mask = nan_mask | inf_mask
    segment_starts: list[int] = []
    if policy.on_nan == "split" and nan_mask.any():
        # Record NaN runs in input coordinates, and where each run ends in
        # the *kept* array so streaming can seal a segment boundary there.
        padded = np.concatenate(([False], nan_mask, [False]))
        edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
        starts, stops = edges[::2], edges[1::2]
        report.nan_runs = [(int(start), int(stop - start))
                           for start, stop in zip(starts, stops)]
        kept_before = np.cumsum(~drop_mask)
        for stop in stops:
            kept = int(kept_before[stop - 1])
            if kept > 0:
                segment_starts.append(kept)
    kept_values = values[~drop_mask]
    return kept_values, segment_starts, drop_mask


def sanitize(values, policy: InputPolicy | None = None, *,
             timestamps=None, name: str = "values") -> SanitizeResult:
    """Apply an input policy to raw values (and optional timestamps).

    Parameters
    ----------
    values:
        Raw input — any array-like, including object arrays when the policy
        allows casting.
    policy:
        The :class:`InputPolicy` to apply; ``None`` uses the all-``raise``
        default (pure validation, no mutation).
    timestamps:
        Optional per-value timestamps enabling the ordering/gap policies.
        Without them, only the value-level policies apply.
    name:
        Name used in error messages.

    Returns
    -------
    SanitizeResult
        Sanitized float64 values, the :class:`SanitizeReport`, and segment
        boundaries for the streaming layer.  Clean input is returned as the
        same array object with a clean report (bit-identity guaranteed).

    Raises
    ------
    PolicyViolationError
        When a hazard occurs and its policy knob says ``raise``.
    """
    if policy is None:
        policy = InputPolicy()
    report = SanitizeReport(policy=policy.as_dict())
    array = _coerce_dtype(values, policy, name, report)
    report.original_length = int(array.size)

    gap_starts: list[int] = []
    if timestamps is not None:
        array, gap_starts = _order_and_gaps(array, timestamps, policy, name,
                                            report)

    array, nan_starts, drop_mask = _finite_filter(array, policy, name, report)
    if drop_mask is not None and gap_starts:
        # Gap boundaries were found pre-drop: remap them onto the kept array.
        kept_before = np.cumsum(~drop_mask)
        gap_starts = [int(kept_before[start - 1]) for start in gap_starts]
    segment_starts = sorted({start for start in gap_starts + nan_starts
                             if 0 < start < array.size})

    report.final_length = int(array.size)
    return SanitizeResult(values=array, report=report,
                          segment_starts=segment_starts)


def restore_shape(values: np.ndarray, metadata: dict) -> np.ndarray:
    """Rebuild the original-length series from split-mode sanitize metadata.

    The inverse of ``on_nan="split"``: dropped NaN runs recorded in
    ``metadata["nan_runs"]`` are reinserted as NaN, restoring the original
    length and positions.  Metadata without recorded runs (``skip`` mode
    records only counts) returns the values unchanged.
    """
    record = metadata.get(SANITIZE_METADATA_KEY, metadata)
    runs = record.get("nan_runs")
    if not runs:
        return np.asarray(values, dtype=np.float64)
    original_length = int(record["original_length"])
    restored = np.empty(original_length, dtype=np.float64)
    mask = np.zeros(original_length, dtype=bool)
    for start, length in runs:
        mask[int(start):int(start) + int(length)] = True
    values = np.asarray(values, dtype=np.float64)
    if int((~mask).sum()) != values.size:
        raise InvalidParameterError(
            f"cannot restore shape: {values.size} values for "
            f"{int((~mask).sum())} non-NaN positions")
    restored[mask] = np.nan
    restored[~mask] = values
    return restored
