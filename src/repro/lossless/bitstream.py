"""Bit-level input/output used by the Gorilla and Chimp codecs.

Both codecs emit variable-length bit patterns, so the writer packs bits MSB
first into a byte array and the reader consumes them the same way.  The
implementations favour clarity over raw speed — the codecs are baselines,
not the contribution — but still handle multi-bit writes in chunks.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodecError

__all__ = ["BitWriter", "BitReader", "float_to_bits", "bits_to_float"]


def float_to_bits(value: float) -> int:
    """Reinterpret a double as its 64-bit integer pattern."""
    return int(np.float64(value).view(np.uint64))


def bits_to_float(bits: int) -> float:
    """Reinterpret a 64-bit integer pattern as a double."""
    return float(np.uint64(bits & 0xFFFFFFFFFFFFFFFF).view(np.float64))


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self):
        self._bytes = bytearray()
        self._free_bits = 0     # unused bits remaining in the last byte
        self._total_bits = 0    # bits written so far

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (alias of ``len``)."""
        return self._total_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if self._free_bits == 0:
            self._bytes.append(0)
            self._free_bits = 8
        if bit:
            self._bytes[-1] |= 1 << (self._free_bits - 1)
        self._free_bits -= 1
        self._total_bits += 1

    def write_bits(self, value: int, width: int) -> None:
        """Append the ``width`` least-significant bits of ``value`` MSB first."""
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        """Snapshot of the packed bytes (last byte zero-padded)."""
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit consumer over a byte buffer."""

    def __init__(self, data: bytes, bit_length: int | None = None):
        self._data = bytes(data)
        self._limit = bit_length if bit_length is not None else len(self._data) * 8
        self._position = 0

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._limit - self._position

    def read_bit(self) -> int:
        """Read a single bit."""
        if self._position >= self._limit:
            raise CodecError("attempt to read past the end of the bit stream")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0 or width > 64:
            raise CodecError(f"bit width must be in [0, 64], got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value
