"""Bit-level input/output used by the Gorilla and Chimp codecs.

Both codecs emit variable-length bit patterns, so the writer packs bits MSB
first and the reader consumes them the same way.  Since the block-kernel
rewrite, multi-bit writes really are handled as up-to-64-bit word chunks:
:class:`BitWriter` shifts whole fields into an integer accumulator and
flushes full 64-bit words (O(1) per call, no per-bit loop), and
:class:`BitReader` fetches at most two words per read.  Whole arrays of
fields can be packed/unpacked in vectorized NumPy passes via
``write_bits_array``/``read_bits_array``.

The byte layout is unchanged from the original per-bit implementation
(MSB-first, final byte zero-padded), so payloads remain byte-identical; the
original code is preserved in :mod:`repro._kernels.reference` as the
cross-check ground truth.
"""

from __future__ import annotations

import numpy as np

from .._kernels.bitpack import BlockBitReader, BlockBitWriter

__all__ = ["BitWriter", "BitReader", "float_to_bits", "bits_to_float"]


def float_to_bits(value: float) -> int:
    """Reinterpret a double as its 64-bit integer pattern."""
    return int(np.float64(value).view(np.uint64))


def bits_to_float(bits: int) -> float:
    """Reinterpret a 64-bit integer pattern as a double."""
    return float(np.uint64(bits & 0xFFFFFFFFFFFFFFFF).view(np.float64))


#: Block-wise MSB-first bit buffer (see :mod:`repro._kernels.bitpack`).
BitWriter = BlockBitWriter

#: Block-wise MSB-first bit consumer (see :mod:`repro._kernels.bitpack`).
BitReader = BlockBitReader
