"""Chimp lossless floating-point compression (Liakos et al., PVLDB 2022).

Chimp refines Gorilla's XOR scheme with a two-bit flag per value and a
quantised leading-zero table, which shortens the encoding of values whose
XOR has few trailing zeros (common in real sensor data):

====  =========================================================
flag  meaning
====  =========================================================
00    XOR is zero (value identical to its predecessor)
01    reuse the previous leading-zero count, store centre bits up to the end
10    new leading-zero count, store centre bits up to the end
11    new leading-zero count + 6-bit centre length, store centre bits
====  =========================================================

This implementation follows the published reference behaviour: flags ``01``
and ``10`` store ``64 - leading`` bits (no trailing-zero suppression), flag
``11`` stores only the significant centre when the XOR has at least 6
trailing zeros.  The codec is exactly invertible.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import CodecError
from .bitstream import BitReader, BitWriter, bits_to_float, float_to_bits

__all__ = ["ChimpCodec"]

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Quantisation of leading-zero counts used by Chimp (3-bit codes).
_LEADING_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]
_LEADING_REPRESENTATION = {}
for _code, _value in enumerate(_LEADING_ROUND):
    _LEADING_REPRESENTATION[_code] = _value


def _round_leading(leading: int) -> tuple[int, int]:
    """Quantise a leading-zero count; returns ``(code, rounded_value)``."""
    code = 0
    for index, threshold in enumerate(_LEADING_ROUND):
        if leading >= threshold:
            code = index
    return code, _LEADING_ROUND[code]


def _leading_zeros(value: int) -> int:
    if value == 0:
        return 64
    return 64 - value.bit_length()


def _trailing_zeros(value: int) -> int:
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class ChimpCodec:
    """Chimp128-style XOR codec (single previous value variant)."""

    name = "Chimp"

    def encode(self, values) -> tuple[bytes, int, int]:
        """Encode ``values``; returns ``(payload, bit_length, count)``."""
        values = as_float_array(values)
        writer = BitWriter()
        previous_bits = float_to_bits(values[0])
        writer.write_bits(previous_bits, 64)
        previous_leading_code = -1

        for value in values[1:]:
            current_bits = float_to_bits(value)
            xor = (current_bits ^ previous_bits) & _MASK64
            if xor == 0:
                writer.write_bits(0b00, 2)
                previous_leading_code = -1
            else:
                leading = _leading_zeros(xor)
                trailing = _trailing_zeros(xor)
                leading_code, leading_rounded = _round_leading(leading)
                if trailing > 6:
                    # Flag 11: store centre bits only.
                    centre = 64 - leading_rounded - trailing
                    writer.write_bits(0b11, 2)
                    writer.write_bits(leading_code, 3)
                    writer.write_bits(centre, 6)
                    writer.write_bits(xor >> trailing, centre)
                    previous_leading_code = -1
                elif leading_code == previous_leading_code:
                    # Flag 01: reuse the previous leading-zero count.
                    writer.write_bits(0b01, 2)
                    writer.write_bits(xor, 64 - leading_rounded)
                else:
                    # Flag 10: new leading-zero count, store to the end.
                    writer.write_bits(0b10, 2)
                    writer.write_bits(leading_code, 3)
                    writer.write_bits(xor, 64 - leading_rounded)
                    previous_leading_code = leading_code
            previous_bits = current_bits
        return writer.to_bytes(), writer.bit_length, values.size

    def decode(self, payload: bytes, bit_length: int, count: int) -> np.ndarray:
        """Decode ``count`` values from an encoded payload."""
        if count <= 0:
            raise CodecError("count must be positive")
        reader = BitReader(payload, bit_length)
        values = np.empty(count, dtype=np.float64)
        previous_bits = reader.read_bits(64)
        values[0] = bits_to_float(previous_bits)
        previous_leading_rounded = 0

        for index in range(1, count):
            flag = reader.read_bits(2)
            if flag == 0b00:
                xor = 0
            elif flag == 0b11:
                leading_code = reader.read_bits(3)
                leading_rounded = _LEADING_REPRESENTATION[leading_code]
                centre = reader.read_bits(6)
                trailing = 64 - leading_rounded - centre
                xor = reader.read_bits(centre) << trailing
            elif flag == 0b10:
                leading_code = reader.read_bits(3)
                leading_rounded = _LEADING_REPRESENTATION[leading_code]
                xor = reader.read_bits(64 - leading_rounded)
                previous_leading_rounded = leading_rounded
            else:  # 0b01 — reuse previous leading count
                xor = reader.read_bits(64 - previous_leading_rounded)
            previous_bits = (previous_bits ^ xor) & _MASK64
            values[index] = bits_to_float(previous_bits)
        return values

    # ------------------------------------------------------------------ #
    def bits_per_value(self, values) -> float:
        """Convenience: encode and report the bits/value metric (Table 2)."""
        _payload, bit_length, count = self.encode(values)
        return bit_length / float(count)
