"""Chimp lossless floating-point compression (Liakos et al., PVLDB 2022).

Chimp refines Gorilla's XOR scheme with a two-bit flag per value and a
quantised leading-zero table, which shortens the encoding of values whose
XOR has few trailing zeros (common in real sensor data):

====  =========================================================
flag  meaning
====  =========================================================
00    XOR is zero (value identical to its predecessor)
01    reuse the previous leading-zero count, store centre bits up to the end
10    new leading-zero count, store centre bits up to the end
11    new leading-zero count + 6-bit centre length, store centre bits
====  =========================================================

This implementation follows the published reference behaviour: flags ``01``
and ``10`` store ``64 - leading`` bits (no trailing-zero suppression), flag
``11`` stores only the significant centre when the XOR has at least 6
trailing zeros.  The codec is exactly invertible.

Like the Gorilla module, encoding routes through :mod:`repro._kernels` —
vectorized XOR/leading/trailing-zero preparation, a sequential Python loop
only for the flag decisions, and one block pack at the end — and decoding
reads word chunks in O(1) per field.  Payloads are byte-identical to the
original per-bit implementation
(:func:`repro._kernels.reference.reference_chimp_encode`).
"""

from __future__ import annotations

import numpy as np

from .._kernels.bitops import clz64, ctz64, xor_stream
from .._kernels.bitpack import pack_bits, pack_field_streams, payload_words, words_to_bytes
from ..exceptions import CodecError

__all__ = ["ChimpCodec"]

#: Quantisation of leading-zero counts used by Chimp (3-bit codes).
_LEADING_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]

#: Vectorized leading-count quantisation: code and rounded value per count.
_ROUND_CODE = np.zeros(65, dtype=np.int64)
_ROUND_VALUE = np.zeros(65, dtype=np.int64)
for _count in range(65):
    _c = 0
    for _index, _threshold in enumerate(_LEADING_ROUND):
        if _count >= _threshold:
            _c = _index
    _ROUND_CODE[_count] = _c
    _ROUND_VALUE[_count] = _LEADING_ROUND[_c]


def _chimp_field_stream(first_word: int, xors: list, trailing_all: list,
                        codes_all: list, rounded_all: list) -> tuple[list, list]:
    """The sequential flag-decision pass: ``(fields, widths)`` of one series.

    Shared verbatim by :meth:`ChimpCodec.encode` and
    :meth:`ChimpCodec.encode_batch`, so the stacked batch path produces
    byte-identical payloads by construction.
    """
    fields = [first_word]
    widths = [64]
    append_field = fields.append
    append_width = widths.append
    previous_leading_code = -1

    for index, xor in enumerate(xors):
        if xor == 0:
            append_field(0b00)
            append_width(2)
            previous_leading_code = -1
            continue
        trailing = trailing_all[index]
        leading_code = codes_all[index]
        leading_rounded = rounded_all[index]
        if trailing > 6:
            # Flag 11: store centre bits only.
            centre = 64 - leading_rounded - trailing
            append_field(0b11)
            append_width(2)
            append_field(leading_code)
            append_width(3)
            append_field(centre)
            append_width(6)
            append_field(xor >> trailing)
            append_width(centre)
            previous_leading_code = -1
        elif leading_code == previous_leading_code:
            # Flag 01: reuse the previous leading-zero count.
            append_field(0b01)
            append_width(2)
            append_field(xor)
            append_width(64 - leading_rounded)
        else:
            # Flag 10: new leading-zero count, store to the end.
            append_field(0b10)
            append_width(2)
            append_field(leading_code)
            append_width(3)
            append_field(xor)
            append_width(64 - leading_rounded)
            previous_leading_code = leading_code
    return fields, widths


class ChimpCodec:
    """Chimp128-style XOR codec (single previous value variant)."""

    name = "Chimp"

    def encode(self, values) -> tuple[bytes, int, int]:
        """Encode ``values``; returns ``(payload, bit_length, count)``."""
        bits, xor_array = xor_stream(values)
        leading_all = clz64(xor_array)
        fields, widths = _chimp_field_stream(
            int(bits[0]), xor_array.tolist(), ctz64(xor_array).tolist(),
            _ROUND_CODE[leading_all].tolist(), _ROUND_VALUE[leading_all].tolist())
        words, bit_length = pack_bits(np.asarray(fields, dtype=np.uint64),
                                      np.asarray(widths, dtype=np.int64))
        return words_to_bytes(words, bit_length), bit_length, bits.size

    def encode_batch(self, matrix) -> list[tuple[bytes, int, int]]:
        """Encode many same-length series through one stacked kernel pass.

        See :meth:`repro.lossless.gorilla.GorillaCodec.encode_batch`: the
        XOR/zero-count/table-lookup preparation runs as 2-D NumPy passes
        and a single :func:`repro._kernels.bitpack.pack_bits` call packs
        every series' fields; each returned triple is byte-identical to
        :meth:`encode` on that row.
        """
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] == 0:
            raise CodecError("encode_batch expects a (num_series, length) matrix")
        bits = matrix.view(np.uint64)
        xors = bits[:, 1:] ^ bits[:, :-1]
        leading = clz64(xors)
        return pack_field_streams(
            _chimp_field_stream, bits, xors.tolist(), ctz64(xors).tolist(),
            _ROUND_CODE[leading].tolist(), _ROUND_VALUE[leading].tolist())

    def decode(self, payload: bytes, bit_length: int, count: int) -> np.ndarray:
        """Decode ``count`` values from an encoded payload."""
        if count <= 0:
            raise CodecError("count must be positive")
        words = payload_words(payload)
        limit = min(bit_length, len(payload) * 8)
        if 64 > limit:
            raise CodecError("attempt to read past the end of the bit stream")
        decoded = [0] * count
        previous = words[0]
        decoded[0] = previous
        position = 64
        previous_leading_rounded = 0
        leading_table = _LEADING_ROUND

        for index in range(1, count):
            if position + 2 > limit:
                raise CodecError("attempt to read past the end of the bit stream")
            word_index = position >> 6
            available = 64 - (position & 63)
            if available >= 2:
                flag = (words[word_index] >> (available - 2)) & 0b11
            else:
                flag = (((words[word_index] & 1) << 1)
                        | (words[word_index + 1] >> 63))
            position += 2

            if flag == 0b00:
                decoded[index] = previous
                continue
            if flag == 0b11:
                if position + 9 > limit:
                    raise CodecError("attempt to read past the end of the bit stream")
                word_index = position >> 6
                available = 64 - (position & 63)
                if available >= 9:
                    header = (words[word_index] >> (available - 9)) & 0x1FF
                else:
                    low = 9 - available
                    header = (((words[word_index] & ((1 << available) - 1)) << low)
                              | (words[word_index + 1] >> (64 - low)))
                position += 9
                leading_rounded = leading_table[header >> 6]
                width = header & 0x3F
                shift = 64 - leading_rounded - width
            elif flag == 0b10:
                if position + 3 > limit:
                    raise CodecError("attempt to read past the end of the bit stream")
                word_index = position >> 6
                available = 64 - (position & 63)
                if available >= 3:
                    code = (words[word_index] >> (available - 3)) & 0b111
                else:
                    low = 3 - available
                    code = (((words[word_index] & ((1 << available) - 1)) << low)
                            | (words[word_index + 1] >> (64 - low)))
                position += 3
                previous_leading_rounded = leading_table[code]
                width = 64 - previous_leading_rounded
                shift = 0
            else:  # 0b01 — reuse previous leading count
                width = 64 - previous_leading_rounded
                shift = 0

            if position + width > limit:
                raise CodecError("attempt to read past the end of the bit stream")
            word_index = position >> 6
            available = 64 - (position & 63)
            if width <= available:
                xor = (words[word_index] >> (available - width)) & ((1 << width) - 1)
            else:
                low = width - available
                xor = (((words[word_index] & ((1 << available) - 1)) << low)
                       | (words[word_index + 1] >> (64 - low)))
            position += width
            previous ^= xor << shift
            decoded[index] = previous

        return np.array(decoded, dtype=np.uint64).view(np.float64)

    # ------------------------------------------------------------------ #
    def bits_per_value(self, values) -> float:
        """Convenience: encode and report the bits/value metric (Table 2)."""
        _payload, bit_length, count = self.encode(values)
        return bit_length / float(count)
