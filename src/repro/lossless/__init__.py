"""Lossless floating-point codecs (Gorilla, Chimp) and bit-level IO."""

from .bitstream import BitReader, BitWriter, bits_to_float, float_to_bits
from .chimp import ChimpCodec
from .gorilla import GorillaCodec

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_float",
    "float_to_bits",
    "GorillaCodec",
    "ChimpCodec",
]
