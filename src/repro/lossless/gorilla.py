"""Gorilla lossless floating-point compression (Pelkonen et al., PVLDB 2015).

Gorilla XORs each value with its predecessor and encodes the XOR result with
a three-way control code:

* ``0``        — the XOR is zero (identical value), one bit total;
* ``10``       — the meaningful bits fit inside the previous leading/trailing
                 zero window, only those bits are stored;
* ``11``       — a new window: 5 bits of leading-zero count, 6 bits of
                 meaningful-bit length, then the meaningful bits.

The first value is stored verbatim (64 bits).  The decoder reverses the
process exactly, so the codec is lossless bit-for-bit.

The implementation routes through :mod:`repro._kernels`: the XOR stream and
its leading/trailing-zero counts are computed in vectorized NumPy passes, the
per-value Python work is reduced to the (inherently sequential) control-code
branch, and the resulting fields are packed in one block operation.  Decoding
walks a word buffer with O(1) chunk reads per field instead of per-bit loops.
Payloads are byte-identical to the original per-bit implementation
(:func:`repro._kernels.reference.reference_gorilla_encode`).
"""

from __future__ import annotations

import numpy as np

from .._kernels.bitops import clz64, ctz64, xor_stream
from .._kernels.bitpack import pack_bits, pack_field_streams, payload_words, words_to_bytes
from ..exceptions import CodecError

__all__ = ["GorillaCodec"]


def _gorilla_field_stream(first_word: int, xors: list, leading_all: list,
                          trailing_all: list) -> tuple[list, list]:
    """The sequential control-code pass: ``(fields, widths)`` of one series.

    Shared verbatim by :meth:`GorillaCodec.encode` and
    :meth:`GorillaCodec.encode_batch`, so the stacked batch path produces
    byte-identical payloads by construction.
    """
    fields = [first_word]
    widths = [64]
    append_field = fields.append
    append_width = widths.append
    previous_leading = 65   # force a new window on the first XOR
    previous_trailing = 65

    for index, xor in enumerate(xors):
        if xor == 0:
            append_field(0)
            append_width(1)
            continue
        leading = leading_all[index]
        trailing = trailing_all[index]
        if leading >= previous_leading and trailing >= previous_trailing:
            # Fits into the previous window: control bits '10'.
            append_field(0b10)
            append_width(2)
            append_field(xor >> previous_trailing)
            append_width(64 - previous_leading - previous_trailing)
        else:
            meaningful = 64 - leading - trailing
            append_field(0b11)
            append_width(2)
            append_field(leading)
            append_width(5)
            append_field(meaningful - 1)
            append_width(6)
            append_field(xor >> trailing)
            append_width(meaningful)
            previous_leading = leading
            previous_trailing = trailing
    return fields, widths


class GorillaCodec:
    """XOR-based lossless codec for 64-bit floating point series."""

    name = "Gorilla"

    def encode(self, values) -> tuple[bytes, int, int]:
        """Encode ``values``; returns ``(payload, bit_length, count)``."""
        bits, xor_array = xor_stream(values)
        fields, widths = _gorilla_field_stream(
            int(bits[0]), xor_array.tolist(),
            np.minimum(clz64(xor_array), 31).tolist(), ctz64(xor_array).tolist())
        words, bit_length = pack_bits(np.asarray(fields, dtype=np.uint64),
                                      np.asarray(widths, dtype=np.int64))
        return words_to_bytes(words, bit_length), bit_length, bits.size

    def encode_batch(self, matrix) -> list[tuple[bytes, int, int]]:
        """Encode many same-length series through one stacked kernel pass.

        ``matrix`` is a ``(num_series, length)`` float64 array.  The XOR
        stream and leading/trailing-zero preparation run as single 2-D
        NumPy passes and every series' variable-width fields are packed by
        **one** :func:`repro._kernels.bitpack.pack_bits` call (each series
        zero-padded to a 64-bit word boundary so the word stream splits
        per series), amortizing the per-call NumPy dispatch that dominates
        at small lengths.  Each returned ``(payload, bit_length, count)``
        triple is byte-identical to :meth:`encode` on that row.
        """
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] == 0:
            raise CodecError("encode_batch expects a (num_series, length) matrix")
        bits = matrix.view(np.uint64)
        xors = bits[:, 1:] ^ bits[:, :-1]
        leading_rows = np.minimum(clz64(xors), 31).tolist()
        trailing_rows = ctz64(xors).tolist()
        xor_rows = xors.tolist()
        return pack_field_streams(
            _gorilla_field_stream, bits, xor_rows, leading_rows, trailing_rows)

    def decode(self, payload: bytes, bit_length: int, count: int) -> np.ndarray:
        """Decode ``count`` values from an encoded payload."""
        if count <= 0:
            raise CodecError("count must be positive")
        words = payload_words(payload)
        limit = min(bit_length, len(payload) * 8)
        decoded = [0] * count
        position = 0
        # The decoder is inherently sequential (each field's width depends on
        # the flags before it), so the chunk reads are inlined: every field
        # costs a couple of shifts instead of a per-bit loop.
        if 64 > limit:
            raise CodecError("attempt to read past the end of the bit stream")
        previous = words[0]
        position = 64
        decoded[0] = previous
        leading = 0
        trailing = 0

        for index in range(1, count):
            if position >= limit:
                raise CodecError("attempt to read past the end of the bit stream")
            bit = (words[position >> 6] >> (63 - (position & 63))) & 1
            position += 1
            if bit == 0:
                decoded[index] = previous
                continue
            if position >= limit:
                raise CodecError("attempt to read past the end of the bit stream")
            bit = (words[position >> 6] >> (63 - (position & 63))) & 1
            position += 1
            if bit == 0:
                width = 64 - leading - trailing
            else:
                # 5 bits of leading-zero count + 6 bits of length, read as
                # one 11-bit header.
                if position + 11 > limit:
                    raise CodecError("attempt to read past the end of the bit stream")
                word_index = position >> 6
                available = 64 - (position & 63)
                if available >= 11:
                    header = (words[word_index] >> (available - 11)) & 0x7FF
                else:
                    low = 11 - available
                    header = (((words[word_index] & ((1 << available) - 1)) << low)
                              | (words[word_index + 1] >> (64 - low)))
                position += 11
                leading = header >> 6
                width = (header & 0x3F) + 1
                trailing = 64 - leading - width
            if position + width > limit:
                raise CodecError("attempt to read past the end of the bit stream")
            word_index = position >> 6
            available = 64 - (position & 63)
            if width <= available:
                xor = (words[word_index] >> (available - width)) & ((1 << width) - 1)
            else:
                low = width - available
                xor = (((words[word_index] & ((1 << available) - 1)) << low)
                       | (words[word_index + 1] >> (64 - low)))
            position += width
            previous ^= xor << trailing
            decoded[index] = previous

        return np.array(decoded, dtype=np.uint64).view(np.float64)

    # ------------------------------------------------------------------ #
    def bits_per_value(self, values) -> float:
        """Convenience: encode and report the bits/value metric (Table 2)."""
        _payload, bit_length, count = self.encode(values)
        return bit_length / float(count)
