"""Gorilla lossless floating-point compression (Pelkonen et al., PVLDB 2015).

Gorilla XORs each value with its predecessor and encodes the XOR result with
a three-way control code:

* ``0``        — the XOR is zero (identical value), one bit total;
* ``10``       — the meaningful bits fit inside the previous leading/trailing
                 zero window, only those bits are stored;
* ``11``       — a new window: 5 bits of leading-zero count, 6 bits of
                 meaningful-bit length, then the meaningful bits.

The first value is stored verbatim (64 bits).  The decoder reverses the
process exactly, so the codec is lossless bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import CodecError
from .bitstream import BitReader, BitWriter, bits_to_float, float_to_bits

__all__ = ["GorillaCodec"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _leading_zeros(value: int) -> int:
    if value == 0:
        return 64
    return 64 - value.bit_length()


def _trailing_zeros(value: int) -> int:
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class GorillaCodec:
    """XOR-based lossless codec for 64-bit floating point series."""

    name = "Gorilla"

    def encode(self, values) -> tuple[bytes, int, int]:
        """Encode ``values``; returns ``(payload, bit_length, count)``."""
        values = as_float_array(values)
        writer = BitWriter()
        previous_bits = float_to_bits(values[0])
        writer.write_bits(previous_bits, 64)
        previous_leading = 65   # force a new window on the first XOR
        previous_trailing = 65

        for value in values[1:]:
            current_bits = float_to_bits(value)
            xor = (current_bits ^ previous_bits) & _MASK64
            if xor == 0:
                writer.write_bit(0)
            else:
                writer.write_bit(1)
                leading = min(_leading_zeros(xor), 31)
                trailing = _trailing_zeros(xor)
                if leading >= previous_leading and trailing >= previous_trailing:
                    # Fits into the previous window: control bit 0.
                    writer.write_bit(0)
                    window = 64 - previous_leading - previous_trailing
                    writer.write_bits(xor >> previous_trailing, window)
                else:
                    meaningful = 64 - leading - trailing
                    writer.write_bit(1)
                    writer.write_bits(leading, 5)
                    writer.write_bits(meaningful - 1, 6)
                    writer.write_bits(xor >> trailing, meaningful)
                    previous_leading = leading
                    previous_trailing = trailing
            previous_bits = current_bits
        return writer.to_bytes(), writer.bit_length, values.size

    def decode(self, payload: bytes, bit_length: int, count: int) -> np.ndarray:
        """Decode ``count`` values from an encoded payload."""
        if count <= 0:
            raise CodecError("count must be positive")
        reader = BitReader(payload, bit_length)
        values = np.empty(count, dtype=np.float64)
        previous_bits = reader.read_bits(64)
        values[0] = bits_to_float(previous_bits)
        leading = 0
        trailing = 0
        for index in range(1, count):
            if reader.read_bit() == 0:
                values[index] = bits_to_float(previous_bits)
                continue
            if reader.read_bit() == 0:
                window = 64 - leading - trailing
                xor = reader.read_bits(window) << trailing
            else:
                leading = reader.read_bits(5)
                meaningful = reader.read_bits(6) + 1
                trailing = 64 - leading - meaningful
                xor = reader.read_bits(meaningful) << trailing
            previous_bits = (previous_bits ^ xor) & _MASK64
            values[index] = bits_to_float(previous_bits)
        return values

    # ------------------------------------------------------------------ #
    def bits_per_value(self, values) -> float:
        """Convenience: encode and report the bits/value metric (Table 2)."""
        _payload, bit_length, count = self.encode(values)
        return bit_length / float(count)
