"""Time-series features in the spirit of the ``tsfeatures`` R package.

The Figure 1 experiment correlates the *deviation* of several statistical
features (measured between the original and the reconstructed series) with
the impact on forecasting accuracy.  This module computes the features the
paper lists — trend strength, linearity, curvature, nonlinearity, ACF1,
ACF10, PACF5 — plus the reconstruction-error metrics (NRMSE, PSNR), and a
helper that returns the per-feature deviation for a pair of series.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import ModelError
from ..metrics import nrmse as nrmse_metric
from ..metrics import psnr as psnr_metric
from ..stats.acf import acf
from ..stats.pacf import pacf
from ..forecasting.stl import decompose

__all__ = ["extract_features", "feature_deviations", "FEATURE_NAMES"]

FEATURE_NAMES = (
    "trend_strength",
    "seasonal_strength",
    "linearity",
    "curvature",
    "nonlinearity",
    "acf1",
    "acf10",
    "pacf5",
)


def _orthogonal_poly_coefficients(trend: np.ndarray) -> tuple[float, float]:
    """Linearity and curvature: coefficients of an orthogonal quadratic fit."""
    n = trend.size
    t = np.arange(n, dtype=np.float64)
    t = (t - t.mean()) / (t.std() or 1.0)
    design = np.column_stack([np.ones(n), t, t * t - float(np.mean(t * t))])
    # Orthogonalise the quadratic column against the linear one (they are
    # already centred); a plain least squares fit is adequate here.
    solution, _res, _rank, _sv = np.linalg.lstsq(design, trend, rcond=None)
    return float(solution[1]), float(solution[2])


def _nonlinearity(values: np.ndarray) -> float:
    """Teräsvirta-style nonlinearity score (scaled F statistic).

    Regress the series on its first two lags, then test whether squared and
    cubed lag terms explain additional variance.  The returned value is the
    scaled test statistic used by ``tsfeatures``.
    """
    n = values.size
    if n < 10:
        return 0.0
    y = values[2:]
    lag1 = values[1:-1]
    lag2 = values[:-2]
    base = np.column_stack([np.ones_like(y), lag1, lag2])
    extended = np.column_stack([base, lag1 ** 2, lag1 * lag2, lag2 ** 2,
                                lag1 ** 3, lag1 ** 2 * lag2, lag1 * lag2 ** 2, lag2 ** 3])
    base_fit, _r, _k, _s = np.linalg.lstsq(base, y, rcond=None)
    extended_fit, _r2, _k2, _s2 = np.linalg.lstsq(extended, y, rcond=None)
    sse_base = float(np.sum((y - base @ base_fit) ** 2))
    sse_extended = float(np.sum((y - extended @ extended_fit) ** 2))
    if sse_base <= 0.0:
        return 0.0
    statistic = y.size * np.log(max(sse_base, 1e-300) / max(sse_extended, 1e-300))
    return float(statistic / y.size * 10.0)


def extract_features(values, *, period: int | None = None, max_lag: int = 10) -> dict:
    """Compute the Figure-1 feature set for one series.

    Parameters
    ----------
    values:
        Input series.
    period:
        Seasonal period used by the trend/seasonal-strength decomposition;
        ``None`` (or a period that does not fit twice) skips the seasonal
        strength and derives the trend from a long moving average instead.
    max_lag:
        Number of lags used for the ACF-family features (>= 10 recommended).
    """
    values = as_float_array(values)
    max_lag = max(int(max_lag), 10)
    effective_lag = min(max_lag, values.size - 2)
    acf_values = acf(values, effective_lag)
    pacf_values = pacf(values, min(effective_lag, 5))

    features: dict[str, float] = {
        "acf1": float(acf_values[0]),
        "acf10": float(np.sum(acf_values[: min(10, acf_values.size)] ** 2)),
        "pacf5": float(np.sum(pacf_values[: min(5, pacf_values.size)] ** 2)),
        "nonlinearity": _nonlinearity(values),
    }

    trend = None
    if period is not None and period >= 2 and values.size >= 2 * period:
        try:
            decomposition = decompose(values, period)
            features["trend_strength"] = decomposition.trend_strength()
            features["seasonal_strength"] = decomposition.seasonal_strength()
            trend = decomposition.trend
        except ModelError:
            trend = None
    if trend is None:
        window = max(values.size // 10, 3)
        kernel = np.ones(window) / window
        trend = np.convolve(np.pad(values, (window // 2, window // 2), mode="edge"),
                            kernel, mode="valid")[: values.size]
        remainder = values - trend
        denominator = float(np.var(values))
        features.setdefault("trend_strength",
                            float(max(0.0, 1.0 - np.var(remainder) / denominator))
                            if denominator else 0.0)
        features.setdefault("seasonal_strength", 0.0)

    linearity, curvature = _orthogonal_poly_coefficients(trend)
    features["linearity"] = linearity
    features["curvature"] = curvature
    return features


def feature_deviations(original, reconstructed, *, period: int | None = None,
                       max_lag: int = 10) -> dict:
    """Absolute per-feature deviation between a series and its reconstruction.

    Also includes the two reconstruction-error metrics the paper compares the
    features against: NRMSE and PSNR (the PSNR is negated so that *larger*
    always means *worse*, making correlation signs comparable).
    """
    original = as_float_array(original)
    reconstructed = as_float_array(reconstructed)
    features_a = extract_features(original, period=period, max_lag=max_lag)
    features_b = extract_features(reconstructed, period=period, max_lag=max_lag)
    deviations = {name: abs(features_a[name] - features_b[name]) for name in features_a}
    deviations["nrmse"] = nrmse_metric(original, reconstructed)
    psnr_value = psnr_metric(original, reconstructed)
    deviations["psnr"] = 0.0 if np.isinf(psnr_value) else -psnr_value
    return deviations
