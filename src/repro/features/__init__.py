"""tsfeatures-style statistical features of time series."""

from .extractor import FEATURE_NAMES, extract_features, feature_deviations

__all__ = ["FEATURE_NAMES", "extract_features", "feature_deviations"]
