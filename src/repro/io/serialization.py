"""Serialization of compressed representations.

Line-simplification results (:class:`repro.data.timeseries.IrregularSeries`)
are persisted either as compact ``.npz`` archives or as JSON documents
(useful for inspection and cross-language interchange).  A round trip through
either format reproduces the representation exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..data.timeseries import IrregularSeries
from ..exceptions import DecompressionError

__all__ = [
    "save_irregular_npz",
    "load_irregular_npz",
    "irregular_to_json",
    "irregular_from_json",
    "save_irregular_json",
    "load_irregular_json",
]


def save_irregular_npz(series: IrregularSeries, path) -> Path:
    """Persist an irregular series as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        indices=series.indices,
        values=series.values,
        original_length=np.asarray([series.original_length], dtype=np.int64),
        name=np.asarray([series.name]),
        metadata=np.asarray([json.dumps(series.metadata, default=str)]),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_irregular_npz(path) -> IrregularSeries:
    """Load an irregular series written by :func:`save_irregular_npz`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"][0]))
            return IrregularSeries(
                indices=archive["indices"],
                values=archive["values"],
                original_length=int(archive["original_length"][0]),
                name=str(archive["name"][0]),
                metadata=metadata,
            )
    except (OSError, KeyError, ValueError) as exc:
        raise DecompressionError(f"cannot load irregular series from {path}: {exc}") from exc


def irregular_to_json(series: IrregularSeries) -> str:
    """Serialize an irregular series to a JSON string."""
    document = {
        "format": "repro.irregular-series",
        "version": 1,
        "name": series.name,
        "original_length": series.original_length,
        "indices": series.indices.tolist(),
        "values": series.values.tolist(),
        "metadata": series.metadata,
    }
    return json.dumps(document, default=str)


def irregular_from_json(text: str) -> IrregularSeries:
    """Deserialize an irregular series from :func:`irregular_to_json` output."""
    try:
        document = json.loads(text)
        if document.get("format") != "repro.irregular-series":
            raise ValueError("not a repro.irregular-series document")
        return IrregularSeries(
            indices=np.asarray(document["indices"], dtype=np.int64),
            values=np.asarray(document["values"], dtype=np.float64),
            original_length=int(document["original_length"]),
            name=str(document.get("name", "compressed")),
            metadata=dict(document.get("metadata", {})),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise DecompressionError(f"cannot parse irregular series JSON: {exc}") from exc


def save_irregular_json(series: IrregularSeries, path) -> Path:
    """Write the JSON representation to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(irregular_to_json(series), encoding="utf-8")
    return path


def load_irregular_json(path) -> IrregularSeries:
    """Read a JSON representation from ``path``."""
    path = Path(path)
    try:
        return irregular_from_json(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DecompressionError(f"cannot read {path}: {exc}") from exc
