"""Persistence helpers for compressed representations."""

from .serialization import (
    irregular_from_json,
    irregular_to_json,
    load_irregular_json,
    load_irregular_npz,
    save_irregular_json,
    save_irregular_npz,
)

__all__ = [
    "save_irregular_npz",
    "load_irregular_npz",
    "irregular_to_json",
    "irregular_from_json",
    "save_irregular_json",
    "load_irregular_json",
]
