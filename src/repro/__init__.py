"""CAMEO: autocorrelation-preserving lossy time series compression.

Reproduction of "CAMEO: Autocorrelation-Preserving Line Simplification for
Lossy Time Series Compression" (EDBT 2026).  The top-level package re-exports
the most frequently used entry points; the subpackages contain the full
system:

``repro.core``          CAMEO compressor, blocking, parallel strategies
``repro.codecs``        unified codec protocol + registry for every method
``repro.stats``         ACF/PACF and incremental aggregate maintenance
``repro.metrics``       quality measures (MAE, NRMSE, mSMAPE, ...)
``repro.simplify``      VW / TP / PIP / RDP baselines + ACF adapter
``repro.compressors``   PMC, SWING, Sim-Piece, FFT baselines
``repro.lossless``      Gorilla and Chimp codecs
``repro.forecasting``   ETS, STL, ARIMA-lite, DHR, MLP, Box-Cox
``repro.anomaly``       Matrix Profile, irregular MP, UCR scoring
``repro.features``      tsfeatures-style feature extraction
``repro.data``          synthetic datasets and containers
``repro.io``            serialization of compressed representations
``repro.storage``       compression-aware segment store + query engine
``repro.streaming``     chunked streaming CAMEO, online ACF, drift monitor
``repro.engine``        multi-series batch engine (serial/thread/process)

Quickstart
----------
>>> import numpy as np
>>> from repro import cameo_compress
>>> series = np.sin(np.arange(1000) * 2 * np.pi / 50) + 0.1
>>> compressed = cameo_compress(series, max_lag=50, epsilon=0.02)
>>> reconstruction = compressed.decompress()
>>> compressed.compression_ratio() > 2
True
"""

from .codecs import Codec, CompressedBlock, available_codecs, get_codec, register_codec
from .core import CameoCompressor, CoarseGrainedCameo, FineGrainedCameo, cameo_compress
from .engine import BatchEngine, BatchReport, BatchResult, compress_batch
from .data import IrregularSeries, TimeSeries, dataset_names, load_dataset
from .exceptions import (
    CodecError,
    CompressionError,
    ConstraintViolationError,
    DatasetError,
    DecompressionError,
    InvalidParameterError,
    InvalidSeriesError,
    ModelError,
    ReproError,
)
from .metrics import mae, msmape, nrmse, psnr, rmse
from .simplify import AcfConstrainedSimplifier, make_simplifier
from .stats import Statistic, acf, make_statistic, pacf

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CameoCompressor",
    "cameo_compress",
    "Codec",
    "CompressedBlock",
    "get_codec",
    "register_codec",
    "available_codecs",
    "FineGrainedCameo",
    "CoarseGrainedCameo",
    "BatchEngine",
    "compress_batch",
    "BatchReport",
    "BatchResult",
    "TimeSeries",
    "IrregularSeries",
    "load_dataset",
    "dataset_names",
    "acf",
    "pacf",
    "Statistic",
    "make_statistic",
    "mae",
    "rmse",
    "nrmse",
    "msmape",
    "psnr",
    "AcfConstrainedSimplifier",
    "make_simplifier",
    "ReproError",
    "InvalidSeriesError",
    "InvalidParameterError",
    "CompressionError",
    "ConstraintViolationError",
    "DecompressionError",
    "CodecError",
    "ModelError",
    "DatasetError",
]
