"""Command-line interface for the CAMEO reproduction library.

Six subcommands cover the typical workflow on CSV data:

``compress``
    Compress a single-column CSV (or one column of a wider CSV) with any
    registered codec (``--codec``, default CAMEO).  CAMEO writes the
    compressed representation as irregular-series JSON or ``.npz``; every
    other codec writes a portable codec-block JSON document (``.json``
    outputs only).

``compress-batch``
    Compress a whole fleet of CSVs (glob patterns and/or directories)
    through the batch engine: ``--backend serial|thread|process``,
    ``--workers N``, any registered ``--codec``.  Writes one codec-block
    JSON document per input into ``--output-dir`` and prints the aggregate
    throughput report; a failing series is reported and skipped, the rest
    of the batch completes.  Fault-handling knobs: ``--timeout`` (per-chunk
    seconds), ``--retries``, ``--on-degrade degrade|serial|error``; input
    policies ``--on-nan`` / ``--on-inf`` admit hostile CSVs.  Exit code 0
    when everything compressed, 3 on partial failure, 4 when nothing did.

``decompress``
    Reconstruct the regular series from a compressed representation
    (either format) and write it back to CSV.

``analyze``
    Print the dataset summary, the ACF deviation and compression ratio a
    given bound would achieve, and the bits/value comparison against the
    Gorilla/Chimp lossless codecs — a quick "should I compress this lossily?"
    report.  ``--codec`` adds any registered codec to the comparison.

``store``
    Crash-consistent durable time series store (``save`` / ``append`` /
    ``load`` / ``fsck``): ingest CSV columns into WAL-backed, checksummed,
    codec-compressed segment files and read them back.  ``store fsck``
    runs the recovery scan and exits 0 on a clean store, 4 when corruption
    was found (quarantined segments / truncated WAL tails).

``list-codecs``
    Enumerate every registered codec with its family and description.

``scorecard``
    Regenerate the statistical-fidelity scorecard: every registered codec
    over every bundled corpus series, scored by every registered fidelity
    metric.  Fully offline and deterministic; writes ``SCORECARD.json``
    (``--output``) and optionally the rendered markdown (``--markdown``).

Example
-------
::

    python -m repro.cli compress readings.csv --column value --max-lag 24 \
        --epsilon 0.01 --output readings.cameo.json
    python -m repro.cli compress readings.csv --codec gorilla \
        --output readings.gorilla.json
    python -m repro.cli compress-batch "sensors/*.csv" --codec gorilla \
        --backend process --workers 4 --output-dir compressed/
    python -m repro.cli compress readings.csv --codec pmc \
        --codec-arg error_bound=0.5 --output readings.pmc.json
    python -m repro.cli decompress readings.cameo.json --output restored.csv
    python -m repro.cli analyze readings.csv --column value --max-lag 24
    python -m repro.cli list-codecs
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path

import numpy as np

from .codecs import (
    available_codecs,
    codec_spec,
    codec_specs,
    get_codec,
)
from .codecs.serialize import BLOCK_FORMAT, block_from_document, save_block_json
from .core import CameoCompressor
from .data.timeseries import IrregularSeries
from .exceptions import ReproError
from .io import load_irregular_json, load_irregular_npz, save_irregular_json, save_irregular_npz
from .metrics import get_metric
from .stats import acf, tumbling_window_aggregate

__all__ = ["main", "build_parser"]


def _read_csv_column(path: Path, column: str | None) -> np.ndarray:
    """Read one numeric column from a CSV file (header optional)."""
    with open(path, newline="", encoding="utf-8") as handle:
        sample = handle.read(4096)
        handle.seek(0)
        has_header = False
        try:
            has_header = csv.Sniffer().has_header(sample)
        except csv.Error:
            pass
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise ReproError(f"{path} contains no data")
    header = rows[0] if has_header else None
    data_rows = rows[1:] if has_header else rows
    if column is None:
        index = len(rows[0]) - 1 if header is None else len(header) - 1
    elif header is not None and column in header:
        index = header.index(column)
    else:
        try:
            index = int(column)
        except ValueError as exc:
            raise ReproError(
                f"column {column!r} not found in header {header}") from exc
    try:
        return np.asarray([float(row[index]) for row in data_rows], dtype=np.float64)
    except (ValueError, IndexError) as exc:
        raise ReproError(f"cannot parse column {column!r} of {path}: {exc}") from exc


def _write_csv(path: Path, values: np.ndarray, column_name: str = "value") -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["index", column_name])
        for index, value in enumerate(values):
            writer.writerow([index, repr(float(value))])


def _load_compressed(path: Path) -> IrregularSeries:
    if path.suffix == ".npz":
        return load_irregular_npz(path)
    return load_irregular_json(path)


# --------------------------------------------------------------------------- #
# codec option plumbing
# --------------------------------------------------------------------------- #
def _parse_codec_args(pairs: list[str]) -> dict:
    """Parse repeated ``--codec-arg key=value`` flags into typed kwargs."""
    options: dict = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ReproError(
                f"--codec-arg expects key=value, got {pair!r}")
        options[key] = _parse_codec_value(raw.strip())
    return options


def _parse_codec_value(raw: str):
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _codec_options_from_flags(args: argparse.Namespace, family: str) -> dict:
    """Fold the common CLI flags into codec options where they apply."""
    options: dict = {}
    if family in ("cameo", "simplify"):
        options.update(max_lag=args.max_lag, epsilon=args.epsilon,
                       metric=args.metric, agg_window=args.agg_window)
    if family == "cameo":
        options.update(blocking=args.blocking,
                       statistic=getattr(args, "statistic", "acf"),
                       target_ratio=getattr(args, "target_ratio", None))
    options.update(_parse_codec_args(getattr(args, "codec_arg", [])))
    return options


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_compress(args: argparse.Namespace) -> int:
    values = _read_csv_column(Path(args.input), args.column)
    spec = codec_spec(args.codec)
    if spec.family == "cameo":
        return _compress_cameo(args, values)

    codec = get_codec(spec.name, **_codec_options_from_flags(args, spec.family))
    block = codec.encode(values)
    output = (Path(args.output) if args.output
              else Path(args.input).with_suffix(f".{spec.name}.json"))
    if output.suffix == ".npz":
        raise ReproError(
            f"codec {spec.name!r} writes codec-block JSON documents; "
            "use a .json output path (.npz is reserved for the CAMEO "
            "irregular-series format)")
    save_block_json(block, output, materialize=lambda: codec.decode(block))
    kind = "lossless" if block.lossless else "lossy"
    print(f"encoded {values.size} values with {spec.name} ({kind}): "
          f"{block.bits_per_value():.2f} bits/value, "
          f"ratio {block.compression_ratio():.2f}x")
    print(f"wrote {output}")
    return 0


def _compress_cameo(args: argparse.Namespace, values: np.ndarray) -> int:
    options = _codec_options_from_flags(args, "cameo")
    compressor = CameoCompressor(options.pop("max_lag"), options.pop("epsilon"),
                                 **options)
    result = compressor.compress(values)
    output = Path(args.output) if args.output else Path(args.input).with_suffix(".cameo.json")
    if output.suffix == ".npz":
        save_irregular_npz(result, output)
    else:
        save_irregular_json(result, output)
    from repro._kernels import describe_tiers
    print(f"compressed {values.size} -> {len(result)} points "
          f"(ratio {result.compression_ratio():.2f}x, "
          f"deviation {result.metadata.get('achieved_deviation', 0.0):.6f})")
    print(f"kernel tier: {describe_tiers()}")
    print(f"wrote {output}")
    return 0


def _expand_batch_inputs(patterns: list[str]) -> list[Path]:
    """Resolve glob patterns / directories / files into a CSV file list."""
    import glob as globlib

    paths: list[Path] = []
    seen: set[Path] = set()
    for pattern in patterns:
        candidate = Path(pattern)
        if candidate.is_dir():
            matches = sorted(candidate.glob("*.csv"))
        elif candidate.is_file():
            matches = [candidate]
        else:
            matches = sorted(Path(match) for match in globlib.glob(pattern))
        for match in matches:
            if match.is_file() and match not in seen:
                seen.add(match)
                paths.append(match)
    return paths


def _unique_series_names(paths: list[Path]) -> list[str]:
    """Collision-free series names (they become output filenames).

    Two inputs with the same stem from different directories must not
    overwrite each other's document: colliding stems are disambiguated with
    their parent directory name, and numbered as a last resort.
    """
    stems = [path.stem for path in paths]
    counts: dict[str, int] = {}
    for stem in stems:
        counts[stem] = counts.get(stem, 0) + 1
    names: list[str] = []
    used: set[str] = set()
    for path, stem in zip(paths, stems):
        name = stem if counts[stem] == 1 else f"{path.parent.name}-{stem}"
        if not name or name in used:
            base = name or stem or "series"
            suffix = 2
            while f"{base}-{suffix}" in used:
                suffix += 1
            name = f"{base}-{suffix}"
        used.add(name)
        names.append(name)
    return names


def _cmd_compress_batch(args: argparse.Namespace) -> int:
    from .engine import compress_batch
    from .engine.backends import install_signal_cleanup
    from .sanitize import InputPolicy

    # A SIGTERM/SIGHUP mid-batch must not leak the shared-memory segment.
    install_signal_cleanup()
    paths = _expand_batch_inputs(args.inputs)
    if not paths:
        raise ReproError(f"no input files matched {args.inputs!r}")
    spec = codec_spec(args.codec)
    options = _codec_options_from_flags(args, spec.family)

    series: list[np.ndarray] = []
    names: list[str] = []
    read_failures: list[tuple[str, str]] = []
    unique_names = _unique_series_names(paths)
    for path, name in zip(paths, unique_names):
        try:
            values = _read_csv_column(path, args.column)
        except ReproError as exc:
            read_failures.append((name, str(exc)))
            continue
        series.append(values)
        names.append(name)

    policy = None
    if args.on_nan != "raise" or args.on_inf != "raise":
        policy = InputPolicy(on_nan=args.on_nan, on_inf=args.on_inf)
    result = compress_batch(series, codec=spec.name, names=names,
                            codec_options=options, backend=args.backend,
                            workers=args.workers,
                            fastpath=not args.no_fastpath,
                            timeout=args.timeout, retries=args.retries,
                            on_degrade=args.on_degrade, policy=policy)

    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    codec = get_codec(spec.name, **options)
    failed = len(read_failures)
    for name, message in read_failures:
        print(f"  FAILED {name}: {message}")
    for outcome in result:
        if not outcome.ok:
            failed += 1
            print(f"  FAILED {outcome.name}: {outcome.error_type}: {outcome.error}")
            continue
        block = outcome.block
        destination = output_dir / f"{outcome.name}.{spec.name}.json"
        save_block_json(block, destination,
                        materialize=lambda block=block: codec.decode(block))

    report = result.report
    print(f"compressed {report.series - report.failed}/{report.series + len(read_failures)} "
          f"series with {spec.name} on the {report.backend} backend "
          f"({report.workers} worker{'s' if report.workers != 1 else ''})")
    print(f"  {report.total_points} points -> {report.bits_per_value:.2f} bits/value "
          f"(ratio {report.compression_ratio:.2f}x)")
    print(f"  wall {report.wall_seconds:.2f} s, cpu {report.cpu_seconds:.2f} s, "
          f"{report.points_per_sec:.0f} points/s, "
          f"{report.fastpath_series} series via cross-series fast paths")
    recovery = (report.retries or report.timeouts or report.pool_rebuilds
                or report.quarantined_chunks or report.degraded_chunks
                or report.sanitized_series)
    if recovery:
        print(f"  recovery: {report.retries} retries, {report.timeouts} timeouts, "
              f"{report.pool_rebuilds} pool rebuilds, "
              f"{report.quarantined_chunks} quarantined chunks, "
              f"{report.degraded_series} series degraded, "
              f"{report.sanitized_series} series sanitized")
    succeeded = report.series - report.failed
    print(f"wrote {succeeded} codec-block documents to {output_dir}")
    if failed == 0:
        return 0
    return 4 if succeeded == 0 else 3


def _cmd_decompress(args: argparse.Namespace) -> int:
    path = Path(args.input)
    block = None
    if path.suffix != ".npz":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            document = None
        if isinstance(document, dict) and document.get("format") == BLOCK_FORMAT:
            block = block_from_document(document)

    if block is not None:
        reconstruction = get_codec(block.codec).decode(block)
        source = f"{block.codec} block ({block.bits_per_value():.2f} bits/value)"
    else:
        compressed = _load_compressed(path)
        reconstruction = compressed.decompress()
        source = f"{len(compressed)} retained"
    output = Path(args.output) if args.output else Path(args.input).with_suffix(".restored.csv")
    _write_csv(output, reconstruction)
    print(f"reconstructed {reconstruction.size} points from {source}")
    print(f"wrote {output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    values = _read_csv_column(Path(args.input), args.column)
    max_lag = min(args.max_lag, values.size // (2 * max(args.agg_window, 1)) or 1)
    tracked = values if args.agg_window <= 1 else tumbling_window_aggregate(
        values, args.agg_window)
    max_lag = max(1, min(max_lag, tracked.size - 2))

    print(f"points          : {values.size}")
    print(f"value range     : [{values.min():.4g}, {values.max():.4g}]")
    print(f"ACF lags tracked: {max_lag}"
          + (f" on {args.agg_window}-point windows" if args.agg_window > 1 else ""))
    acf_values = acf(tracked, max_lag)
    print(f"ACF1            : {acf_values[0]:.3f}   "
          f"strongest lag: {int(np.argmax(np.abs(acf_values))) + 1}")

    for name in ("gorilla", "chimp"):
        spec = codec_spec(name)
        codec = get_codec(name)
        print(f"{spec.label:<16}: {codec.bits_per_value(values):.2f} bits/value (lossless)")

    if args.codec and codec_spec(args.codec).family not in ("cameo", "lossless"):
        spec = codec_spec(args.codec)
        codec = get_codec(spec.name, **_codec_options_from_flags(args, spec.family))
        block = codec.encode(values)
        kind = "lossless" if block.lossless else "lossy"
        print(f"{spec.name:<16}: {block.bits_per_value():.2f} bits/value ({kind}, "
              f"ratio {block.compression_ratio():.2f}x)")

    compressor = CameoCompressor(max_lag, args.epsilon, metric=args.metric,
                                 agg_window=args.agg_window, blocking=args.blocking)
    result = compressor.compress(values)
    reconstruction = result.decompress()
    candidate = reconstruction if args.agg_window <= 1 else tumbling_window_aggregate(
        reconstruction, args.agg_window)
    deviation = float(get_metric(args.metric)(acf(tracked, max_lag), acf(candidate, max_lag)))
    print(f"CAMEO eps={args.epsilon:<7g}: {result.bits_per_value():.2f} bits/value, "
          f"ratio {result.compression_ratio():.2f}x, ACF deviation {deviation:.6f}")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from .benchlib.scorecard import (
        build_scorecard,
        render_markdown,
        write_scorecard,
    )
    from .fidelity import available_fidelity_metrics

    document = build_scorecard(codecs=args.codec or None,
                               metrics=args.fidelity_metric or None)
    output = Path(args.output)
    write_scorecard(document, output)
    cells = len(document["results"])
    print(f"scored {len(document['codecs'])} codecs x "
          f"{len(document['corpus'])} series x "
          f"{len(document['metrics'])} fidelity metrics ({cells} cells)")
    print(f"fidelity metrics: {', '.join(available_fidelity_metrics())}")
    print(f"wrote {output}")
    if args.markdown:
        markdown = Path(args.markdown)
        markdown.write_text(render_markdown(document), encoding="utf-8")
        print(f"wrote {markdown}")
    return 0


def _cmd_store_save(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    values = _read_csv_column(Path(args.input), args.column)
    store = DurableStore.open(Path(args.directory), create=True,
                              fsync_policy=args.fsync)
    try:
        if args.series not in store:
            options = _parse_codec_args(args.codec_arg)
            store.create_series(args.series, codec=args.codec,
                                segment_size=args.segment_size,
                                codec_options=options or None)
        store.append(args.series, values)
        print(f"saved {values.size} values into series {args.series!r} "
              f"of {args.directory} (length now {store.length(args.series)})")
    finally:
        store.close()
    return 0


def _cmd_store_append(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    values = _read_csv_column(Path(args.input), args.column)
    store = DurableStore.open(Path(args.directory), fsync_policy=args.fsync)
    try:
        store.append(args.series, values)
        print(f"appended {values.size} values to series {args.series!r} "
              f"(length now {store.length(args.series)})")
    finally:
        store.close()
    return 0


def _cmd_store_load(args: argparse.Namespace) -> int:
    from .storage import DurableStore

    store = DurableStore.open(Path(args.directory))
    try:
        if args.series is None:
            names = store.list_series()
            print(f"{args.directory}: {len(names)} series")
            for name in names:
                info = store.info(name)
                holes = store.holes(name)
                line = (f"  {name}: {info.points} values, codec {info.codec}, "
                        f"{info.segments} segments, "
                        f"{info.bits_per_value:.2f} bits/value")
                if holes:
                    line += f", {len(holes)} quarantined hole(s)"
                print(line)
            if not store.recovery.clean:
                print("recovery notes:")
                print(store.recovery.summary())
            return 0
        values = store.read(args.series, args.start, args.stop)
        if args.output:
            _write_csv(Path(args.output), values, column_name=args.series)
            print(f"wrote {values.size} values to {args.output}")
        else:
            for value in values:
                print(value)
    finally:
        store.close()
    return 0


def _cmd_store_fsck(args: argparse.Namespace) -> int:
    from .storage import fsck

    report = fsck(Path(args.directory), fsync_policy=args.fsync)
    print(report.summary())
    return 0 if report.clean else 4


def _cmd_serve(args: argparse.Namespace) -> int:
    from .exceptions import StorageError
    from .service import (CompressionService, ServiceConfig,
                          install_signal_handlers)

    config = ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, drain_timeout=args.drain_timeout,
        codec=args.codec, chunk_size=args.chunk_size,
        default_deadline=args.default_deadline,
        store=args.store, spool_fsync=args.fsync)
    try:
        service = CompressionService(config)
    except StorageError as exc:
        print(f"error: cannot open store: {exc}", file=sys.stderr)
        return 4
    try:
        service.start()
    except OSError as exc:
        print(f"error: cannot bind {config.host}:{config.port}: {exc}",
              file=sys.stderr)
        return 4
    install_signal_handlers(service)
    print(f"serving on {config.host}:{service.port} "
          f"(store: {config.store or 'none'}, workers: {config.workers}, "
          f"queue depth: {config.queue_depth}); SIGTERM drains gracefully",
          flush=True)
    report = service.serve_forever()
    print(f"drained: reason={report.reason} clean={report.clean} "
          f"shed={report.shed_jobs} aborted={report.aborted}", flush=True)
    return 1 if report.aborted else 0


def _cmd_list_codecs(_args: argparse.Namespace) -> int:
    specs = codec_specs()
    name_width = max(len(spec.name) for spec in specs)
    family_width = max(len(spec.family) for spec in specs)
    print(f"{len(specs)} registered codecs "
          "(use with compress/analyze --codec NAME [--codec-arg k=v])")
    for spec in specs:
        print(f"  {spec.name:<{name_width}}  {spec.family:<{family_width}}  "
              f"{spec.description}")
    from repro._kernels import describe_tiers
    print(f"kernel tier: {describe_tiers()}")
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CAMEO autocorrelation-preserving compression")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, *, default_codec: str | None) -> None:
        sub.add_argument("input", help="input file")
        sub.add_argument("--column", default=None,
                         help="CSV column name or index (default: last column)")
        sub.add_argument("--codec", default=default_codec,
                         help="registered codec to use (see list-codecs; "
                              f"default {default_codec})")
        sub.add_argument("--codec-arg", action="append", default=[], metavar="K=V",
                         help="extra codec option, repeatable "
                              "(e.g. --codec-arg error_bound=0.5)")
        sub.add_argument("--max-lag", type=int, default=24,
                         help="number of ACF lags to preserve (default 24)")
        sub.add_argument("--epsilon", type=float, default=0.01,
                         help="maximum ACF deviation (default 0.01)")
        sub.add_argument("--metric", default="mae",
                         help="deviation measure: mae, cheb, rmse, ... (default mae)")
        sub.add_argument("--agg-window", type=int, default=1,
                         help="tumbling-window size for the on-aggregates variant")
        sub.add_argument("--blocking", default="5logn",
                         help="blocking neighbourhood (default 5logn)")

    compress = subparsers.add_parser("compress",
                                     help="compress a CSV column with a registered codec")
    add_common(compress, default_codec="cameo")
    compress.add_argument("--statistic", choices=("acf", "pacf"), default="acf")
    compress.add_argument("--target-ratio", type=float, default=None,
                          help="compression-centric mode: stop at this ratio")
    compress.add_argument("--output", default=None,
                          help="output path (default <input>.<codec>.json; "
                               ".npz is supported for the cameo codec only)")
    compress.set_defaults(func=_cmd_compress)

    batch = subparsers.add_parser(
        "compress-batch",
        help="compress many CSVs through the batch engine")
    batch.add_argument("inputs", nargs="+",
                       help="CSV files, glob patterns, or directories")
    batch.add_argument("--column", default=None,
                       help="CSV column name or index (default: last column)")
    batch.add_argument("--codec", default="cameo",
                       help="registered codec to use (see list-codecs)")
    batch.add_argument("--codec-arg", action="append", default=[], metavar="K=V",
                       help="extra codec option, repeatable")
    batch.add_argument("--backend", default="serial",
                       choices=("serial", "thread", "process"),
                       help="execution backend (default serial)")
    batch.add_argument("--workers", type=int, default=None,
                       help="parallel workers (default: CPU count)")
    batch.add_argument("--no-fastpath", action="store_true",
                       help="disable the cross-series batched fast paths")
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-chunk timeout in seconds (default: none)")
    batch.add_argument("--retries", type=int, default=1,
                       help="chunk retry budget before quarantine (default 1)")
    batch.add_argument("--on-degrade", default="degrade",
                       choices=("degrade", "serial", "error"),
                       help="what happens to a quarantined chunk: walk the "
                            "process->thread->serial ladder, go straight to "
                            "serial, or record errors (default degrade)")
    batch.add_argument("--on-nan", default="raise",
                       choices=("raise", "skip", "split"),
                       help="input policy for NaN values (default raise)")
    batch.add_argument("--on-inf", default="raise",
                       choices=("raise", "skip"),
                       help="input policy for non-finite values (default raise)")
    batch.add_argument("--output-dir", default="compressed",
                       help="directory for the codec-block documents "
                            "(default ./compressed)")
    batch.add_argument("--max-lag", type=int, default=24)
    batch.add_argument("--epsilon", type=float, default=0.01)
    batch.add_argument("--metric", default="mae")
    batch.add_argument("--agg-window", type=int, default=1)
    batch.add_argument("--blocking", default="5logn")
    batch.add_argument("--statistic", choices=("acf", "pacf"), default="acf")
    batch.add_argument("--target-ratio", type=float, default=None)
    batch.set_defaults(func=_cmd_compress_batch)

    decompress = subparsers.add_parser("decompress",
                                       help="reconstruct a compressed representation")
    decompress.add_argument("input", help="compressed .json or .npz file")
    decompress.add_argument("--output", default=None, help="output CSV path")
    decompress.set_defaults(func=_cmd_decompress)

    analyze = subparsers.add_parser("analyze",
                                    help="report compressibility of a CSV column")
    add_common(analyze, default_codec=None)
    analyze.set_defaults(func=_cmd_analyze)

    list_codecs = subparsers.add_parser("list-codecs",
                                        help="list every registered codec")
    list_codecs.set_defaults(func=_cmd_list_codecs)

    store = subparsers.add_parser(
        "store",
        help="crash-consistent durable time series store (WAL + checksums)")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def add_store_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("directory", help="durable store directory")
        sub.add_argument("--fsync", default="always",
                         choices=("always", "interval", "never"),
                         help="WAL fsync policy (default always)")

    store_save = store_sub.add_parser(
        "save", help="ingest a CSV column into a series (store and series "
                     "are created when missing)")
    add_store_dir(store_save)
    store_save.add_argument("--input", required=True, help="CSV file to ingest")
    store_save.add_argument("--series", required=True, help="target series name")
    store_save.add_argument("--column", default=None,
                            help="CSV column name or index (default: last)")
    store_save.add_argument("--codec", default="cameo",
                            help="codec for a newly created series "
                                 "(default cameo)")
    store_save.add_argument("--codec-arg", action="append", default=[],
                            metavar="K=V", help="codec option, repeatable")
    store_save.add_argument("--segment-size", type=int, default=None,
                            help="values per sealed segment for a new series")
    store_save.set_defaults(func=_cmd_store_save)

    store_append = store_sub.add_parser(
        "append", help="append a CSV column to an existing series")
    add_store_dir(store_append)
    store_append.add_argument("--input", required=True, help="CSV file")
    store_append.add_argument("--series", required=True, help="series name")
    store_append.add_argument("--column", default=None,
                              help="CSV column name or index (default: last)")
    store_append.set_defaults(func=_cmd_store_append)

    store_load = store_sub.add_parser(
        "load", help="read a series back out (or summarize the store)")
    add_store_dir(store_load)
    store_load.add_argument("--series", default=None,
                            help="series to read (default: summarize all)")
    store_load.add_argument("--output", default=None,
                            help="CSV output path (default: print values)")
    store_load.add_argument("--start", type=int, default=0,
                            help="first position to read (default 0)")
    store_load.add_argument("--stop", type=int, default=None,
                            help="one past the last position (default: end)")
    store_load.set_defaults(func=_cmd_store_load)

    store_fsck = store_sub.add_parser(
        "fsck", help="recovery scan: verify checksums, quarantine corrupt "
                     "segments, replay the WAL (exit 0 clean, 4 corruption)")
    add_store_dir(store_fsck)
    store_fsck.set_defaults(func=_cmd_store_fsck)

    serve = subparsers.add_parser(
        "serve",
        help="run the crash-tolerant compression service (exit 0 after a "
             "clean drain, 4 when the bind or store open fails)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks a free one (default 8765)")
    serve.add_argument("--workers", type=int, default=2,
                       help="job-executor threads (default 2)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue cap (default 64)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds queued jobs get to finish on SIGTERM "
                            "before the rest is shed (default 10)")
    serve.add_argument("--store", default=None,
                       help="durable store directory enabling /ingest "
                            "spooling and idempotency (default: none)")
    serve.add_argument("--fsync", default="always",
                       choices=("always", "interval", "never"),
                       help="spool WAL fsync policy (default always)")
    serve.add_argument("--codec", default="gorilla",
                       help="default codec for requests (default gorilla)")
    serve.add_argument("--chunk-size", type=int, default=256,
                       help="values per sealed ingest chunk (default 256)")
    serve.add_argument("--default-deadline", type=float, default=30.0,
                       help="request budget in seconds when the client "
                            "sends no X-Deadline-Ms (default 30)")
    serve.set_defaults(func=_cmd_serve)

    scorecard = subparsers.add_parser(
        "scorecard",
        help="regenerate the statistical-fidelity scorecard (offline)")
    scorecard.add_argument("--output", default="SCORECARD.json",
                           help="scorecard JSON path (default SCORECARD.json)")
    scorecard.add_argument("--codec", action="append", default=[],
                           help="restrict to this codec, repeatable "
                                "(default: every registered codec)")
    scorecard.add_argument("--fidelity-metric", action="append", default=[],
                           help="restrict to this fidelity metric, repeatable "
                                "(default: every registered metric)")
    scorecard.add_argument("--markdown", default=None, metavar="PATH",
                           help="also write the rendered markdown tables")
    scorecard.set_defaults(func=_cmd_scorecard)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
