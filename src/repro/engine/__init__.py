"""Multi-series batch-compression engine (fleet-scale throughput).

The paper's evaluation — and every production deployment of Gorilla-style
per-series codecs — compresses *many* independent series; the scaling unit
is series per second across a fleet, not one series' latency.  This package
provides that layer:

* :class:`~repro.engine.engine.BatchEngine` /
  :func:`~repro.engine.engine.compress_batch` — N series × any registered
  codec on a ``serial`` / ``thread`` / ``process`` backend, with size-aware
  chunking, shared-memory input transport, per-series error isolation, and
  an aggregate :class:`~repro.engine.report.BatchReport`;
* cross-series batched fast paths — stacked XOR encode
  (:meth:`GorillaCodec.encode_batch`) and lock-step CAMEO
  (:mod:`repro.engine.cameo_batch`) — whose results are byte-/kept-set-
  identical to per-series runs;
* fault-tolerant supervision (:mod:`repro.engine.supervisor`) — per-chunk
  timeouts, bounded retry, ``BrokenProcessPool`` recovery, and a
  ``process → thread → serial`` degradation ladder, so a batch always
  terminates with per-series outcomes and never leaks a shared-memory
  segment.

See ``docs/architecture.md`` ("The batch engine") for the data flow and
``docs/robustness.md`` for the failure semantics.
"""

from .cameo_batch import lockstep_compress, lockstep_eligible
from .chunking import plan_chunks
from .engine import BatchEngine, compress_batch
from .report import BatchReport, BatchResult, SeriesOutcome
from .supervisor import SupervisorPolicy, SupervisorStats

__all__ = [
    "BatchEngine",
    "compress_batch",
    "BatchReport",
    "BatchResult",
    "SeriesOutcome",
    "SupervisorPolicy",
    "SupervisorStats",
    "plan_chunks",
    "lockstep_compress",
    "lockstep_eligible",
]
