"""The batch-compression engine facade.

:class:`BatchEngine` takes N series — a list/iterator of arrays, ``(name,
values)`` pairs, :class:`~repro.data.timeseries.TimeSeries` objects, a
mapping, or a whole :class:`~repro.storage.store.TimeSeriesStore` — plus any
registered codec name, and runs them to completion on the chosen backend:

* size-aware chunking (:mod:`repro.engine.chunking`) keeps a giant series
  from straggling behind a pile of tiny ones;
* the ``process`` backend ships inputs through shared memory and returns
  serialized codec-block documents (no float pickling);
* eligible sub-batches take the cross-series fast paths (stacked XOR
  encode, lock-step CAMEO) — results stay byte-/kept-set-identical to
  per-series runs;
* every series is error-isolated: one poisoned input yields an error
  outcome, the rest of the batch completes;
* the :class:`~repro.engine.report.BatchReport` aggregates points/sec,
  encoded bits, and wall/CPU time.

Example
-------
>>> import numpy as np
>>> from repro.engine import compress_batch
>>> batch = [np.round(np.sin(np.arange(200) / 7.0), 3) for _ in range(8)]
>>> result = compress_batch(batch, codec="gorilla")
>>> len(result), result.report.series, result.report.failed
(8, 8, 0)
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..codecs import codec_spec
from ..data.timeseries import TimeSeries
from ..exceptions import InvalidParameterError
from .backends import (
    BACKENDS,
    resolve_workers,
    run_process,
    run_serial,
    run_thread,
)
from .chunking import DEFAULT_OVERSUBSCRIBE, plan_chunks
from .report import BatchReport, BatchResult, SeriesOutcome

__all__ = ["BatchEngine", "compress_batch"]


def _normalize_source(source, names) -> tuple[list, list[str]]:
    """Turn any supported batch source into ``(series_list, names)``."""
    # A storage engine: read every (or the named) series.
    if hasattr(source, "list_series") and hasattr(source, "read"):
        wanted = list(names) if names is not None else source.list_series()
        return [source.read(name) for name in wanted], [str(name) for name in wanted]
    if isinstance(source, dict):
        if names is not None:
            raise InvalidParameterError(
                "names only applies to unnamed sequence sources")
        return list(source.values()), [str(key) for key in source.keys()]

    series_list: list = []
    series_names: list[str] = []
    for position, item in enumerate(source):
        if isinstance(item, TimeSeries):
            series_list.append(item.values)
            series_names.append(item.name)
        elif (isinstance(item, tuple) and len(item) == 2
                and isinstance(item[0], str)):
            series_list.append(item[1])
            series_names.append(item[0])
        else:
            series_list.append(item)
            series_names.append(f"series-{position}")
    if names is not None:
        names = list(names)
        if len(names) != len(series_list):
            raise InvalidParameterError(
                f"{len(names)} names for {len(series_list)} series")
        series_names = [str(name) for name in names]
    return series_list, series_names


class BatchEngine:
    """Fleet-scale batch compression over any registered codec.

    Parameters
    ----------
    codec:
        Registered codec name (see :func:`repro.codecs.available_codecs`).
    codec_options:
        Keyword arguments for the codec factory (e.g. ``max_lag``,
        ``epsilon`` for CAMEO).
    backend:
        ``"serial"`` (default), ``"thread"``, or ``"process"``.
    workers:
        Parallel workers for the thread/process backends (defaults to the
        CPU count; ignored by ``serial``).
    fastpath:
        Enable the cross-series batched fast paths (stacked XOR encode,
        lock-step CAMEO).  Results are identical either way; the switch
        exists for benchmarking and bisection.
    oversubscribe:
        Chunks planned per worker (see :func:`repro.engine.chunking.plan_chunks`).
    """

    def __init__(self, codec: str = "cameo", *, codec_options: dict | None = None,
                 backend: str = "serial", workers: int | None = None,
                 fastpath: bool = True,
                 oversubscribe: int = DEFAULT_OVERSUBSCRIBE):
        spec = codec_spec(codec)  # validates the name early
        self.codec = spec.name
        self.codec_options = dict(codec_options or {})
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}")
        self.backend = backend
        self.workers = resolve_workers(backend, workers)
        self.fastpath = bool(fastpath)
        self.oversubscribe = int(oversubscribe)

    # ------------------------------------------------------------------ #
    def compress(self, source, *, names=None) -> BatchResult:
        """Compress every series of ``source``; outcomes in input order."""
        series_list, series_names = _normalize_source(source, names)
        sizes = []
        for item in series_list:
            try:
                sizes.append(int(np.asarray(item).size))
            except Exception:
                sizes.append(1)
        chunks = plan_chunks(sizes, self.workers,
                             oversubscribe=self.oversubscribe)

        wall_start = time.perf_counter()
        cpu_start = self._cpu_seconds()
        if self.backend == "serial":
            outcomes = run_serial(chunks, series_list, series_names,
                                  self.codec, self.codec_options,
                                  self.fastpath)
        elif self.backend == "thread":
            outcomes = run_thread(chunks, series_list, series_names,
                                  self.codec, self.codec_options,
                                  self.fastpath, self.workers)
        else:
            outcomes = run_process(chunks, series_list, series_names,
                                   self.codec, self.codec_options,
                                   self.fastpath, self.workers)
        wall = time.perf_counter() - wall_start
        cpu = self._cpu_seconds() - cpu_start

        outcomes.sort(key=lambda outcome: outcome.index)
        report = BatchReport(codec=self.codec, backend=self.backend,
                             workers=self.workers, chunks=len(chunks),
                             wall_seconds=wall, cpu_seconds=cpu)
        for outcome in outcomes:
            report.series += 1
            if outcome.ok:
                report.total_points += int(outcome.block.length)
                report.encoded_bits += int(outcome.block.bits)
                if outcome.fastpath:
                    report.fastpath_series += 1
            else:
                report.failed += 1
        return BatchResult(outcomes=outcomes, report=report)

    @staticmethod
    def _cpu_seconds() -> float:
        """CPU seconds of this process *and* its (reaped) children."""
        times = os.times()
        return times.user + times.system + times.children_user + times.children_system

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchEngine(codec={self.codec!r}, backend={self.backend!r}, "
                f"workers={self.workers})")


def compress_batch(source, codec: str = "cameo", *, names=None,
                   codec_options: dict | None = None, backend: str = "serial",
                   workers: int | None = None, fastpath: bool = True
                   ) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchEngine`.

    Parameters
    ----------
    source:
        Arrays, an iterator, ``(name, values)`` pairs,
        :class:`~repro.data.timeseries.TimeSeries` objects, a mapping, or a
        :class:`~repro.storage.store.TimeSeriesStore`.
    codec, codec_options:
        Registered codec name and its factory options.
    names:
        Optional per-series names (sequence sources), or the subset of
        store series to read.
    backend, workers, fastpath:
        See :class:`BatchEngine`.

    Returns
    -------
    BatchResult
        Ordered per-series outcomes plus the aggregate
        :class:`~repro.engine.report.BatchReport`.
    """
    engine = BatchEngine(codec, codec_options=codec_options, backend=backend,
                         workers=workers, fastpath=fastpath)
    return engine.compress(source, names=names)
