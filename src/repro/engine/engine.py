"""The batch-compression engine facade.

:class:`BatchEngine` takes N series — a list/iterator of arrays, ``(name,
values)`` pairs, :class:`~repro.data.timeseries.TimeSeries` objects, a
mapping, or a whole :class:`~repro.storage.store.TimeSeriesStore` — plus any
registered codec name, and runs them to completion on the chosen backend:

* size-aware chunking (:mod:`repro.engine.chunking`) keeps a giant series
  from straggling behind a pile of tiny ones;
* the ``process`` backend ships inputs through shared memory and returns
  serialized codec-block documents (no float pickling);
* eligible sub-batches take the cross-series fast paths (stacked XOR
  encode, lock-step CAMEO) — results stay byte-/kept-set-identical to
  per-series runs;
* every series is error-isolated: one poisoned input yields an error
  outcome, the rest of the batch completes;
* the :class:`~repro.engine.report.BatchReport` aggregates points/sec,
  encoded bits, and wall/CPU time.

Example
-------
>>> import numpy as np
>>> from repro.engine import compress_batch
>>> batch = [np.round(np.sin(np.arange(200) / 7.0), 3) for _ in range(8)]
>>> result = compress_batch(batch, codec="gorilla")
>>> len(result), result.report.series, result.report.failed
(8, 8, 0)
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from ..codecs import codec_spec
from ..data.timeseries import TimeSeries
from ..exceptions import InvalidParameterError
from ..sanitize import SANITIZE_METADATA_KEY, InputPolicy, sanitize
from .backends import BACKENDS, resolve_workers
from .chunking import DEFAULT_OVERSUBSCRIBE, plan_chunks
from .report import BatchReport, BatchResult, SeriesOutcome
from .supervisor import SupervisorPolicy, run_supervised

__all__ = ["BatchEngine", "compress_batch"]


def _normalize_source(source, names) -> tuple[list, list[str]]:
    """Turn any supported batch source into ``(series_list, names)``."""
    # A storage engine: read every (or the named) series.
    if hasattr(source, "list_series") and hasattr(source, "read"):
        wanted = list(names) if names is not None else source.list_series()
        return [source.read(name) for name in wanted], [str(name) for name in wanted]
    if isinstance(source, dict):
        if names is not None:
            raise InvalidParameterError(
                "names only applies to unnamed sequence sources")
        return list(source.values()), [str(key) for key in source.keys()]

    series_list: list = []
    series_names: list[str] = []
    for position, item in enumerate(source):
        if isinstance(item, TimeSeries):
            series_list.append(item.values)
            series_names.append(item.name)
        elif (isinstance(item, tuple) and len(item) == 2
                and isinstance(item[0], str)):
            series_list.append(item[1])
            series_names.append(item[0])
        else:
            series_list.append(item)
            series_names.append(f"series-{position}")
    if names is not None:
        names = list(names)
        if len(names) != len(series_list):
            raise InvalidParameterError(
                f"{len(names)} names for {len(series_list)} series")
        series_names = [str(name) for name in names]
    return series_list, series_names


class BatchEngine:
    """Fleet-scale batch compression over any registered codec.

    Parameters
    ----------
    codec:
        Registered codec name (see :func:`repro.codecs.available_codecs`).
    codec_options:
        Keyword arguments for the codec factory (e.g. ``max_lag``,
        ``epsilon`` for CAMEO).
    backend:
        ``"serial"`` (default), ``"thread"``, or ``"process"``.
    workers:
        Parallel workers for the thread/process backends (defaults to the
        CPU count; ignored by ``serial``).
    fastpath:
        Enable the cross-series batched fast paths (stacked XOR encode,
        lock-step CAMEO).  Results are identical either way; the switch
        exists for benchmarking and bisection.
    oversubscribe:
        Chunks planned per worker (see :func:`repro.engine.chunking.plan_chunks`).
    timeout:
        Per-chunk wall-clock budget in seconds (``None`` = unbounded).  A
        chunk that exceeds it is retried, then quarantined; on the process
        backend the hung pool is killed and rebuilt.
    retries:
        Chunk-level retry budget before a chunk is quarantined.
    backoff:
        Base sleep between chunk retries (exponential).
    on_degrade:
        What happens to a quarantined chunk: ``"degrade"`` (default — walk
        the ``process → thread → serial`` ladder), ``"serial"`` (straight
        to the serial guard), or ``"error"`` (record error outcomes).
    policy:
        Optional :class:`~repro.sanitize.InputPolicy` applied to every
        series before chunk planning.  Policy rejections become per-series
        error outcomes; modified inputs record their
        :class:`~repro.sanitize.SanitizeReport` in block metadata so decode
        stays self-describing.  ``None`` (default) skips sanitization
        entirely — clean-input runs are bit-identical with or without it.
    """

    def __init__(self, codec: str = "cameo", *, codec_options: dict | None = None,
                 backend: str = "serial", workers: int | None = None,
                 fastpath: bool = True,
                 oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
                 timeout: float | None = None, retries: int = 1,
                 backoff: float = 0.05, on_degrade: str = "degrade",
                 policy: InputPolicy | None = None):
        spec = codec_spec(codec)  # validates the name early
        self.codec = spec.name
        self.codec_options = dict(codec_options or {})
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}")
        self.backend = backend
        self.workers = resolve_workers(backend, workers)
        self.fastpath = bool(fastpath)
        self.oversubscribe = int(oversubscribe)
        self.supervisor_policy = SupervisorPolicy(
            timeout=timeout, retries=int(retries), backoff=float(backoff),
            on_degrade=on_degrade)
        if policy is not None and not isinstance(policy, InputPolicy):
            raise InvalidParameterError(
                f"policy must be an InputPolicy or None, got {type(policy).__name__}")
        self.policy = policy

    # ------------------------------------------------------------------ #
    def _sanitize_inputs(self, series_list, series_names
                         ) -> tuple[dict[int, SeriesOutcome], dict[int, dict]]:
        """Apply the input policy in place; returns (pre-errors, metadata)."""
        pre_errors: dict[int, SeriesOutcome] = {}
        sanitize_meta: dict[int, dict] = {}
        for index, item in enumerate(series_list):
            try:
                result = sanitize(item, self.policy, name=series_names[index])
            except Exception as exc:
                try:
                    length = int(np.asarray(item).size)
                except Exception:
                    length = 0
                pre_errors[index] = SeriesOutcome(
                    index=index, name=series_names[index], length=length,
                    error=str(exc), error_type=type(exc).__name__)
            else:
                series_list[index] = result.values
                if not result.report.clean:
                    sanitize_meta[index] = result.report.as_metadata()
        return pre_errors, sanitize_meta

    def compress(self, source, *, names=None,
                 deadline: float | None = None) -> BatchResult:
        """Compress every series of ``source``; outcomes in input order.

        ``deadline`` is an optional wall-clock budget in seconds for this
        call.  The supervisor clamps every chunk wait to the remaining
        budget and writes chunks abandoned at expiry off as
        :class:`~repro.exceptions.DeadlineExceededError` outcomes — the
        call still returns a full :class:`BatchResult`, with whatever
        completed in time reported per series.
        """
        policy = self.supervisor_policy
        if deadline is not None:
            if not float(deadline) > 0:
                raise InvalidParameterError(
                    f"deadline must be positive or None, got {deadline!r}")
            policy = dataclasses.replace(
                policy, deadline=time.monotonic() + float(deadline))
        series_list, series_names = _normalize_source(source, names)
        pre_errors: dict[int, SeriesOutcome] = {}
        sanitize_meta: dict[int, dict] = {}
        if self.policy is not None:
            pre_errors, sanitize_meta = self._sanitize_inputs(series_list,
                                                              series_names)
        good = [index for index in range(len(series_list))
                if index not in pre_errors]
        sizes = []
        for index in good:
            try:
                sizes.append(int(np.asarray(series_list[index]).size))
            except Exception:
                sizes.append(1)
        chunks = [[good[position] for position in chunk]
                  for chunk in plan_chunks(sizes, self.workers,
                                           oversubscribe=self.oversubscribe)]

        wall_start = time.perf_counter()
        cpu_start = self._cpu_seconds()
        outcomes, stats = run_supervised(
            self.backend, chunks, series_list, series_names, self.codec,
            self.codec_options, self.fastpath, self.workers,
            policy=policy)
        wall = time.perf_counter() - wall_start
        cpu = self._cpu_seconds() - cpu_start

        outcomes.extend(pre_errors.values())
        outcomes.sort(key=lambda outcome: outcome.index)
        for index, record in sanitize_meta.items():
            block = outcomes[index].block
            if block is not None:
                block.metadata[SANITIZE_METADATA_KEY] = record
        report = BatchReport(codec=self.codec, backend=self.backend,
                             workers=self.workers, chunks=len(chunks),
                             wall_seconds=wall, cpu_seconds=cpu,
                             retries=stats.retries, timeouts=stats.timeouts,
                             pool_rebuilds=stats.pool_rebuilds,
                             quarantined_chunks=stats.quarantined_chunks,
                             degraded_chunks=stats.degraded_chunks,
                             degraded_series=stats.degraded_series,
                             sanitized_series=len(sanitize_meta))
        for outcome in outcomes:
            report.series += 1
            if outcome.ok:
                report.total_points += int(outcome.block.length)
                report.encoded_bits += int(outcome.block.bits)
                if outcome.fastpath:
                    report.fastpath_series += 1
            else:
                report.failed += 1
        return BatchResult(outcomes=outcomes, report=report)

    @staticmethod
    def _cpu_seconds() -> float:
        """CPU seconds of this process *and* its (reaped) children."""
        times = os.times()
        return times.user + times.system + times.children_user + times.children_system

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchEngine(codec={self.codec!r}, backend={self.backend!r}, "
                f"workers={self.workers})")


def compress_batch(source, codec: str = "cameo", *, names=None,
                   codec_options: dict | None = None, backend: str = "serial",
                   workers: int | None = None, fastpath: bool = True,
                   timeout: float | None = None, retries: int = 1,
                   on_degrade: str = "degrade",
                   policy: InputPolicy | None = None,
                   deadline: float | None = None) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchEngine`.

    Parameters
    ----------
    source:
        Arrays, an iterator, ``(name, values)`` pairs,
        :class:`~repro.data.timeseries.TimeSeries` objects, a mapping, or a
        :class:`~repro.storage.store.TimeSeriesStore`.
    codec, codec_options:
        Registered codec name and its factory options.
    names:
        Optional per-series names (sequence sources), or the subset of
        store series to read.
    backend, workers, fastpath, timeout, retries, on_degrade, policy:
        See :class:`BatchEngine`.
    deadline:
        Optional wall-clock budget in seconds for this call (see
        :meth:`BatchEngine.compress`).

    Returns
    -------
    BatchResult
        Ordered per-series outcomes plus the aggregate
        :class:`~repro.engine.report.BatchReport`.
    """
    engine = BatchEngine(codec, codec_options=codec_options, backend=backend,
                         workers=workers, fastpath=fastpath, timeout=timeout,
                         retries=retries, on_degrade=on_degrade, policy=policy)
    return engine.compress(source, names=names, deadline=deadline)
