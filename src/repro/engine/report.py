"""Result containers for the batch-compression engine.

A batch run produces one :class:`SeriesOutcome` per input series — either a
:class:`~repro.codecs.base.CompressedBlock` or a recorded error (one failing
series never kills the batch) — plus an aggregate :class:`BatchReport` with
the fleet-level numbers the ROADMAP cares about: total points/second,
per-codec encoded bits, wall and CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codecs.base import CompressedBlock
from ..data.timeseries import BITS_PER_VALUE_RAW
from ..exceptions import ReproError

__all__ = ["SeriesOutcome", "BatchReport", "BatchResult"]


@dataclass
class SeriesOutcome:
    """Outcome of compressing one series of a batch.

    Exactly one of :attr:`block` / :attr:`error` is set.  ``index`` is the
    position of the series in the batch input, so ordered collection holds
    regardless of which backend or chunk produced the outcome.
    """

    index: int
    name: str
    length: int
    block: CompressedBlock | None = None
    error: str | None = None
    error_type: str | None = None
    fastpath: str | None = None
    #: Set when the supervisor produced this outcome on a lower backend rung
    #: than the engine was asked for (``"thread"`` or ``"serial"``).
    degraded_to: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the series was compressed successfully."""
        return self.block is not None

    def unwrap(self) -> CompressedBlock:
        """The compressed block, raising the recorded error if there is none."""
        if self.block is None:
            raise ReproError(
                f"series {self.name!r} (index {self.index}) failed: "
                f"{self.error_type}: {self.error}")
        return self.block


@dataclass
class BatchReport:
    """Aggregate accounting over one engine run."""

    codec: str
    backend: str
    workers: int
    series: int = 0
    failed: int = 0
    total_points: int = 0
    encoded_bits: int = 0
    chunks: int = 0
    fastpath_series: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    # Supervisor accounting (see repro.engine.supervisor.SupervisorStats).
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined_chunks: int = 0
    degraded_chunks: int = 0
    degraded_series: int = 0
    #: Series whose input was modified by the input policy (dropped values,
    #: reordering, casts) before compression.
    sanitized_series: int = 0

    @property
    def points_per_sec(self) -> float:
        """Successfully compressed raw points per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_points / self.wall_seconds

    @property
    def bits_per_value(self) -> float:
        """Encoded bits per successfully compressed raw value."""
        return self.encoded_bits / float(max(self.total_points, 1))

    @property
    def compression_ratio(self) -> float:
        """Raw float64 bits over encoded bits, across the whole batch."""
        return (self.total_points * BITS_PER_VALUE_RAW) / float(max(self.encoded_bits, 1))

    def as_dict(self) -> dict:
        return {
            "codec": self.codec,
            "backend": self.backend,
            "workers": self.workers,
            "series": self.series,
            "failed": self.failed,
            "total_points": self.total_points,
            "encoded_bits": self.encoded_bits,
            "chunks": self.chunks,
            "fastpath_series": self.fastpath_series,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined_chunks": self.quarantined_chunks,
            "degraded_chunks": self.degraded_chunks,
            "degraded_series": self.degraded_series,
            "sanitized_series": self.sanitized_series,
            "points_per_sec": self.points_per_sec,
            "bits_per_value": self.bits_per_value,
            "compression_ratio": self.compression_ratio,
        }


@dataclass
class BatchResult:
    """Everything a batch run returns: ordered outcomes plus the report."""

    outcomes: list[SeriesOutcome] = field(default_factory=list)
    report: BatchReport | None = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> SeriesOutcome:
        return self.outcomes[index]

    def blocks(self) -> list[CompressedBlock]:
        """Blocks of every successful series, in input order (raises on errors)."""
        return [outcome.unwrap() for outcome in self.outcomes]

    def errors(self) -> list[SeriesOutcome]:
        """The failed outcomes, in input order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]
