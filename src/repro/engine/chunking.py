"""Size-aware work chunking for the batch engine.

Naive round-robin assignment makes one million-point series straggle behind
a pile of ten-thousand-point ones: the worker that drew the giant finishes
long after the rest idle out.  :func:`plan_chunks` balances instead by
longest-processing-time (LPT) greedy assignment on the per-series point
counts — series are placed, largest first, into the currently lightest
chunk — with enough chunks per worker that late imbalances can still be
smoothed by work stealing from the task queue.
"""

from __future__ import annotations

import numpy as np

__all__ = ["plan_chunks"]

#: Chunks created per worker: oversubscription lets the executor's task queue
#: absorb per-chunk cost estimation error (point count is a proxy, not a
#: perfect predictor of compression time).
DEFAULT_OVERSUBSCRIBE = 4

#: Soft floor on series per chunk: the cross-series fast paths stack series
#: *within* a chunk, so oversubscription must not shatter a batch into
#: single-series chunks.  Parallelism still wins the tie — the floor only
#: binds once the batch exceeds ``workers * MIN_SERIES_PER_CHUNK`` series;
#: below that, worker utilisation (up to ``workers``x) beats the fast
#: paths' ~1.5-3x stacking gain, so small batches may still get chunks too
#: small to stack.
MIN_SERIES_PER_CHUNK = 8


def plan_chunks(sizes, workers: int, *,
                oversubscribe: int = DEFAULT_OVERSUBSCRIBE) -> list[list[int]]:
    """Partition series indices into balanced chunks.

    Parameters
    ----------
    sizes:
        Per-series point counts, in batch input order.
    workers:
        Parallel workers the chunks will be distributed over; ``workers <= 1``
        returns a single chunk (one sequential pass maximizes the
        cross-series fast path's stacking opportunities).
    oversubscribe:
        Target chunks per worker.

    Returns
    -------
    list of list of int
        Chunks of series indices.  Every index appears exactly once; chunks
        are ordered by descending estimated load (so the heaviest work is
        dispatched first), and indices within a chunk stay in input order
        (deterministic, and keeps same-length runs together for the
        cross-series fast paths).
    """
    sizes = np.asarray(list(sizes), dtype=np.int64)
    count = int(sizes.size)
    if count == 0:
        return []
    if workers <= 1:
        return [list(range(count))]
    workers = max(1, int(workers))
    num_chunks = min(count, workers * max(1, int(oversubscribe)),
                     max(workers, count // MIN_SERIES_PER_CHUNK))
    loads = np.zeros(num_chunks, dtype=np.int64)
    members: list[list[int]] = [[] for _ in range(num_chunks)]
    # Largest first; ties broken by input order (stable argsort) so the plan
    # is deterministic for equal-length batches.
    order = np.argsort(-sizes, kind="stable")
    for index in order.tolist():
        target = int(np.argmin(loads))
        members[target].append(index)
        loads[target] += max(int(sizes[index]), 1)
    chunks = [(int(loads[i]), sorted(members[i])) for i in range(num_chunks)
              if members[i]]
    chunks.sort(key=lambda entry: (-entry[0], entry[1]))
    return [indices for _load, indices in chunks]
