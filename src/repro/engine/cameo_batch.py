"""Lock-step CAMEO: many short series advanced through one shared kernel.

A CAMEO run on a short series (small ``T·L``) spends most of its time in
NumPy *dispatch*, not NumPy *work*: every greedy iteration issues one
ReHeap's worth of small kernel calls whose fixed per-call overhead dwarfs
the arithmetic.  Different series are completely independent, so the batch
engine advances many of them **in lock step**: each round, every active
series runs exactly one iteration of the sequential loop (pop → decide →
commit) and contributes its ReHeap evaluation request; all requests are then
evaluated by one stacked
:func:`repro.core.impact.multi_state_contiguous_acf` call — one ``(ΣT, L)``
kernel invocation instead of one per series.

Bit-exactness: the per-series control flow below mirrors
:meth:`repro.core.compressor.CameoCompressor._run` operation for operation
(for the configurations :func:`lockstep_eligible` admits), and the stacked
kernel, the batched Durbin-Levinson transform, and the row-wise metric are
all bit-identical per row to their per-series counterparts.  Kept-point sets
therefore match the sequential per-series runs exactly — asserted by
``tests/engine/`` and the perf harness.
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import as_float_array
from ..core.blocking import resolve_blocking_hops
from ..core.compressor import CameoCompressor, CompressionStats
from ..core.heap import make_heap
from ..core.impact import (
    StackedStateLayout,
    multi_state_contiguous_acf,
    resolve_rowwise_metric,
    segment_interpolation_deltas,
    segment_interpolation_deltas_batched,
)
from ..core.neighbors import NeighborList
from ..core.tracker import StatisticTracker
from ..data.timeseries import IrregularSeries
from ..stats.descriptors import Statistic
from ..stats.pacf import pacf_from_acf_batched

__all__ = ["LOCKSTEP_MAX_CELLS", "LOCKSTEP_GROUP_SIZE", "lockstep_eligible",
           "lockstep_compress"]

#: ``n * max_lag`` ceiling under which a series counts as "short" (dispatch
#: bound): larger runs spend their time inside the kernels, where stacking
#: buys nothing and only grows the working set.  Measured crossover: ~1.3x
#: at 2k cells, ~1.05x at 4k, parity beyond (see docs/performance.md).
LOCKSTEP_MAX_CELLS = 1 << 12

#: Series advanced per lock-step group; bounds the stacked kernel's row count
#: (and with it the peak temporary size) while still amortizing dispatch.
LOCKSTEP_GROUP_SIZE = 16


def lockstep_eligible(compressor: CameoCompressor, n: int, *,
                      max_cells: int = LOCKSTEP_MAX_CELLS) -> bool:
    """Whether one series of length ``n`` may join a lock-step group.

    The lock-step driver reproduces the sequential loop for the common
    configuration: a named statistic (the incremental tracker), raw series
    (``agg_window == 1``) and the paper's ``on_violation="stop"`` policy.
    Everything else — aggregated statistics, skip/drain mode, custom
    ``Statistic`` objects, long series — falls back to the per-series path.
    """
    if isinstance(compressor.statistic, Statistic):
        return False
    if compressor.agg_window != 1 or compressor.on_violation != "stop":
        return False
    if n < 4 or n <= compressor.min_keep:
        return False
    effective_lag = min(compressor.max_lag, n - 1)
    return n * effective_lag <= max_cells


class _LockstepSeries:
    """One series' loop state inside a lock-step group.

    Mirrors the sequential ``CameoCompressor._run`` (``on_violation="stop"``
    path) exactly; only the ReHeap *evaluation* is deferred to the shared
    stacked kernel via :meth:`advance` / :meth:`complete`.
    """

    __slots__ = (
        "compressor", "name", "values", "n", "tracker", "neighbours", "heap",
        "hops", "metric", "speculate", "spec_peek", "state_version",
        "key_version", "spec_version", "spec_deviation", "member_scratch",
        "stats", "kept", "max_removable", "target_kept", "epsilon",
        "fresh_hits", "spec_hits", "preview_evals", "batch_size", "done",
        "pending", "start_time", "slot",
    )

    def __init__(self, compressor: CameoCompressor, values: np.ndarray,
                 name: str, metric, *, validated: bool = False):
        self.compressor = compressor
        self.name = name
        if not validated:
            values = as_float_array(values, name="series")
        self.values = values
        self.start_time = time.perf_counter()
        n = self.n = values.size
        effective_lag = compressor._effective_max_lag(n)
        self.tracker = StatisticTracker(values, effective_lag,
                                        statistic=compressor.statistic,
                                        agg_window=1, agg=compressor.agg)
        self.hops = resolve_blocking_hops(compressor.blocking, n)
        self.metric = metric
        self.neighbours = NeighborList(n)
        self.heap = make_heap(n)
        positions, impacts = self.tracker.initial_impacts(metric)
        self.heap.heapify(positions, impacts)

        batch_size = self.batch_size = compressor._resolve_batch_size()
        self.speculate = batch_size > 1
        if self.speculate:
            self.state_version = 0
            self.key_version = np.zeros(n, dtype=np.int64)
            self.spec_version = np.full(n, -1, dtype=np.int64)
            self.spec_deviation = np.empty(n, dtype=np.float64)
            self.member_scratch = np.zeros(n, dtype=bool)
            self.spec_peek = batch_size - 1
        else:
            self.spec_peek = 0
            self.state_version = 0
            self.key_version = self.spec_version = self.spec_deviation = None
            self.member_scratch = None

        self.stats = CompressionStats(kept_points=n)
        self.kept = n
        self.max_removable = n - max(compressor.min_keep, 2)
        self.target_kept = None
        if compressor.target_ratio is not None:
            self.target_kept = max(int(np.ceil(n / compressor.target_ratio)),
                                   compressor.min_keep, 2)
        self.epsilon = compressor.epsilon
        self.fresh_hits = self.spec_hits = self.preview_evals = 0
        self.done = False
        self.pending = None

    # ------------------------------------------------------------------ #
    def advance(self):
        """Run sequential iterations until a ReHeap request is produced.

        Returns ``(lengths, positions, deltas)`` for the stacked kernel, or
        ``None`` when the series finished (``self.done`` is then set).
        Iterations whose ReHeap would be empty continue immediately, exactly
        like the sequential loop's no-op refresh.
        """
        tracker = self.tracker
        neighbours = self.neighbours
        heap = self.heap
        metric = self.metric
        stats = self.stats
        epsilon = self.epsilon
        speculate = self.speculate
        current_values = tracker.current_values
        left_of = neighbours.left_of
        right_of = neighbours.right_of

        while True:
            if not heap:
                self._finish()
                return None
            candidate, key = heap.pop()
            stats.iterations += 1
            change_start, change_deltas = segment_interpolation_deltas(
                current_values, left_of(candidate), right_of(candidate))
            if change_deltas.size == 0:
                deviation = stats.achieved_deviation
            elif speculate and self.key_version[candidate] == self.state_version:
                deviation = key
                self.fresh_hits += 1
            elif speculate and self.spec_version[candidate] == self.state_version:
                deviation = float(self.spec_deviation[candidate])
                self.spec_hits += 1
            else:
                new_statistic = tracker.preview(change_start, change_deltas)
                deviation = tracker.deviation(metric, new_statistic)
                self.preview_evals += 1

            if epsilon is not None and deviation >= epsilon:
                stats.stopped_by = "error-bound"
                self._finish()
                return None

            if change_deltas.size:
                tracker.apply(change_start, change_deltas)
            neighbours.remove(candidate)
            self.kept -= 1
            stats.removed_points += 1
            stats.achieved_deviation = deviation
            if speculate:
                self.state_version += 1

            if stats.removed_points >= self.max_removable:
                stats.stopped_by = "min-keep"
                self._finish()
                return None
            if self.target_kept is not None and self.kept <= self.target_kept:
                stats.stopped_by = "target-ratio"
                self._finish()
                return None

            # Build the ReHeap request (the evaluation itself is stacked).
            candidates = neighbours.hops_array(candidate, self.hops)
            if candidates.size:
                candidates = candidates[heap.contains_mask(candidates)]
            spec_items = None
            if self.spec_peek and len(heap):
                peeked, _peek_keys = heap.peek_many(self.spec_peek)
                if candidates.size:
                    member = self.member_scratch
                    member[candidates] = True
                    peeked = peeked[~member[peeked]]
                    member[candidates] = False
                if peeked.size:
                    spec_items = peeked
            if candidates.size == 0 and spec_items is None:
                continue
            if spec_items is None:
                combined = candidates
            elif candidates.size == 0:
                combined = spec_items
            else:
                combined = np.concatenate((candidates, spec_items))
            lefts, rights = neighbours.gaps_of(combined)
            _starts, lengths, positions, deltas = segment_interpolation_deltas_batched(
                current_values, lefts, rights)
            self.pending = (candidates, spec_items)
            return lengths, positions, deltas

    def complete(self, impacts: np.ndarray) -> None:
        """Write one stacked evaluation back (mirrors ``_reheap_neighbours``)."""
        candidates, spec_items = self.pending
        self.pending = None
        refreshed = int(candidates.size)
        if refreshed:
            self.heap.update_many(candidates, impacts[:refreshed])
            if self.speculate:
                self.key_version[candidates] = self.state_version
        if spec_items is not None:
            self.spec_deviation[spec_items] = impacts[refreshed:]
            self.spec_version[spec_items] = self.state_version
        self.stats.reheap_updates += refreshed

    # ------------------------------------------------------------------ #
    def _finish(self) -> None:
        stats = self.stats
        stats.kept_points = self.kept
        if self.speculate:
            stats.extra["preview_reuse"] = {
                "fresh_key_hits": self.fresh_hits,
                "speculative_hits": self.spec_hits,
                "scalar_previews": self.preview_evals,
            }
        stats.extra["batch_size"] = self.batch_size
        self.done = True

    def result(self) -> IrregularSeries:
        """The finished series' retained points (as ``compress()`` returns)."""
        self.stats.elapsed_seconds = time.perf_counter() - self.start_time
        return self.compressor._build_result(
            self.values, self.neighbours.alive_mask(), self.name, self.stats,
            self.tracker)


def _rowwise_deviation_multi(metric, reference_rows: np.ndarray,
                             stat_rows: np.ndarray) -> np.ndarray:
    """Per-row ``D(reference_row, stat_row)`` with per-row references.

    Same arithmetic as :meth:`repro.core.impact.ResolvedMetric.rowwise`
    (``overwrite=True``), with the broadcast reference replaced by the
    per-series reference row — elementwise per row, so each row matches the
    per-series evaluation bit for bit.
    """
    kind = metric.kind
    if kind == "callable":
        fn = metric.fn
        return np.array([fn(reference, row)
                         for reference, row in zip(reference_rows, stat_rows)],
                        dtype=np.float64)
    diff = np.subtract(stat_rows, reference_rows, out=stat_rows)
    if kind == "mae":
        return np.mean(np.abs(diff, out=diff), axis=1)
    if kind == "cheb":
        return np.max(np.abs(diff, out=diff), axis=1)
    if kind == "mse":
        return np.mean(np.multiply(diff, diff, out=diff), axis=1)
    return np.sqrt(np.mean(np.multiply(diff, diff, out=diff), axis=1))


def _stacked_impacts(runners, requests, metric, statistic: str,
                     layout: StackedStateLayout) -> list[np.ndarray]:
    """Evaluate every runner's pending ReHeap request in one kernel pass."""
    states = [runner.tracker.state for runner in runners]
    slots = np.fromiter((runner.slot for runner in runners), dtype=np.int64,
                        count=len(runners))
    acf_rows = multi_state_contiguous_acf(
        states, [request[0] for request in requests],
        [request[1] for request in requests],
        [request[2] for request in requests], layout=layout, slots=slots)
    if statistic == "pacf":
        stat_rows = pacf_from_acf_batched(acf_rows)
    else:
        stat_rows = acf_rows
    counts = [request[0].size for request in requests]
    reference_rows = np.concatenate(
        [np.broadcast_to(runner.tracker.reference, (count, stat_rows.shape[1]))
         for runner, count in zip(runners, counts)])
    impacts = _rowwise_deviation_multi(metric, reference_rows, stat_rows)
    split_at = np.cumsum(counts[:-1])
    return np.split(impacts, split_at)


def lockstep_compress(compressor: CameoCompressor, series_list, names=None,
                      *, validated: bool = False) -> list[IrregularSeries]:
    """Compress many series in lock step; results identical to per-series runs.

    Parameters
    ----------
    compressor:
        The shared configuration; every series must satisfy
        :func:`lockstep_eligible` for it.
    series_list:
        Float arrays (validated per series).
    names:
        Optional per-series names (defaults to ``"series"``, like
        ``compress()`` on a plain array).
    validated:
        Set when every series is already a validated, contiguous float64
        array (the engine's chunk worker validates during dtype ingest);
        skips the redundant per-series NaN/shape scan.

    Returns
    -------
    list of IrregularSeries
        Per-series results in input order, each bit-identical (kept-point
        sets, run statistics, reference statistic) to
        ``compressor.compress(series)`` — only ``elapsed_seconds`` differs,
        since lock-step wall time is interleaved.
    """
    if names is None:
        names = ["series"] * len(series_list)
    metric = resolve_rowwise_metric(compressor.metric)
    statistic = str(compressor.statistic).lower()
    runners = [_LockstepSeries(compressor, values, name, metric,
                               validated=validated)
               for values, name in zip(series_list, names)]
    for slot, runner in enumerate(runners):
        runner.slot = slot
    # One shared buffer layout per group: kernel calls gather rows instead of
    # re-concatenating every state's vectors each round.
    layout = StackedStateLayout([runner.tracker.state for runner in runners])
    active = list(runners)
    while active:
        requesters = []
        requests = []
        for runner in active:
            request = runner.advance()
            if request is not None:
                requesters.append(runner)
                requests.append(request)
        if requesters:
            for runner, impacts in zip(
                    requesters, _stacked_impacts(requesters, requests, metric,
                                                 statistic, layout)):
                runner.complete(impacts)
        active = [runner for runner in active if not runner.done]
    return [runner.result() for runner in runners]
