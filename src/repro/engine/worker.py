"""Chunk encoding shared by every engine backend.

:func:`encode_chunk` compresses one work chunk of series with per-series
error isolation and routes eligible subsets through the cross-series fast
paths (stacked XOR encode, lock-step CAMEO).  :func:`process_chunk_task` is
the module-level process-pool entry: it attaches the parent's shared-memory
block, builds zero-copy array views, encodes, and returns *serialized*
codec-block documents — so float payloads never travel through pickle in
either direction.
"""

from __future__ import annotations

import numpy as np

from .. import faultinject
from ..codecs import codec_spec, get_codec
from ..codecs.base import SOURCE_DTYPE_KEY, Codec, ingest_values
from ..codecs.serialize import block_to_document
from .cameo_batch import LOCKSTEP_GROUP_SIZE, lockstep_compress, lockstep_eligible
from .report import SeriesOutcome

__all__ = ["encode_chunk", "process_chunk_task", "XOR_STACK_MAX_LENGTH"]

#: Series-length ceiling for the stacked XOR fast path.  Stacking amortizes
#: per-call NumPy dispatch, which dominates only for short series; beyond
#: this length the sequential control-code loop dominates and the batched
#: 2-D preparation costs more than it saves (measured: ~1.9x at length 64,
#: parity at 256, a slowdown at 1024).
XOR_STACK_MAX_LENGTH = 256


def _error_outcome(index: int, name: str, length: int, exc: BaseException
                   ) -> SeriesOutcome:
    return SeriesOutcome(index=index, name=name, length=length,
                         error=str(exc), error_type=type(exc).__name__)


def _series_length(series) -> int:
    try:
        return int(np.asarray(series).size)
    except Exception:  # pragma: no cover - exotic inputs
        return 0


def encode_chunk(series_list, names, indices, codec_name: str,
                 codec_options: dict | None, *, use_fastpath: bool = True,
                 codec: Codec | None = None) -> list[SeriesOutcome]:
    """Compress one chunk of series; one outcome per input, in chunk order.

    A failing series (NaN values, empty array, codec error, ...) yields an
    error outcome; the rest of the chunk still completes.
    """
    # Chunk-level injection site: fires *before* per-series isolation, so
    # whatever happens here (crash, hang, raise) is the supervisor's problem.
    faultinject.fire("chunk", indices=list(indices))
    spec = codec_spec(codec_name)
    if codec is None:
        codec = get_codec(spec.name, **(codec_options or {}))
    count = len(series_list)
    outcomes: dict[int, SeriesOutcome] = {}
    pending = list(range(count))

    if use_fastpath and count > 1:
        if spec.family == "lossless":
            pending = _xor_fastpath(series_list, names, indices, codec,
                                    outcomes, pending)
        elif spec.name == "cameo":
            pending = _cameo_fastpath(series_list, names, indices, codec,
                                      outcomes, pending)

    for position in pending:
        index, name = indices[position], names[position]
        series = series_list[position]
        try:
            # Per-series injection site: an InjectedFault here must become
            # one error outcome while the rest of the chunk completes.
            faultinject.fire("encode", index=index)
            block = codec.encode(series)
        except Exception as exc:
            outcomes[position] = _error_outcome(index, name,
                                                _series_length(series), exc)
        else:
            outcomes[position] = SeriesOutcome(index=index, name=name,
                                               length=int(block.length),
                                               block=block)
    return [outcomes[position] for position in range(count)]


def _validated(series_list, names, indices, outcomes, pending):
    """Validate pending series; failures become error outcomes in place."""
    good: list[tuple[int, np.ndarray, str | None]] = []
    for position in pending:
        try:
            values, source_dtype = ingest_values(series_list[position],
                                                 name="series")
        except Exception as exc:
            outcomes[position] = _error_outcome(
                indices[position], names[position],
                _series_length(series_list[position]), exc)
        else:
            good.append((position, values, source_dtype))
    return good


def _xor_fastpath(series_list, names, indices, codec, outcomes, pending):
    """Stack same-length series through the XOR codecs' batched encode."""
    good = _validated(series_list, names, indices, outcomes, pending)
    by_length: dict[int, list[tuple[int, np.ndarray, str | None]]] = {}
    for entry in good:
        by_length.setdefault(entry[1].size, []).append(entry)
    remaining: list[int] = []
    for length, group in sorted(by_length.items()):
        if len(group) < 2 or length > XOR_STACK_MAX_LENGTH:
            remaining.extend(position for position, _v, _d in group)
            continue
        matrix = np.vstack([values for _p, values, _d in group])
        try:
            blocks = codec.encode_many(matrix)
        except Exception:
            # Unexpected batch failure: per-series path preserves isolation.
            remaining.extend(position for position, _v, _d in group)
            continue
        for (position, _values, source_dtype), block in zip(group, blocks):
            if source_dtype:
                block.metadata[SOURCE_DTYPE_KEY] = source_dtype
            outcomes[position] = SeriesOutcome(
                index=indices[position], name=names[position],
                length=int(block.length), block=block, fastpath="xor-stacked")
    remaining.sort()
    return remaining


def _cameo_fastpath(series_list, names, indices, codec, outcomes, pending):
    """Run short eligible series through the lock-step CAMEO driver.

    Series are grouped by their *effective* lag (``min(max_lag, n - 1)``):
    all states of a lock-step group must track the same lag count, so one
    undersized series must never drag a whole group back to the per-series
    path.
    """
    compressor = codec.compressor
    good = _validated(series_list, names, indices, outcomes, pending)
    by_lag: dict[int, list[tuple[int, np.ndarray, str | None]]] = {}
    remaining: list[int] = []
    for position, values, source_dtype in good:
        if lockstep_eligible(compressor, values.size):
            effective_lag = min(compressor.max_lag, values.size - 1)
            by_lag.setdefault(effective_lag, []).append(
                (position, values, source_dtype))
        else:
            remaining.append(position)
    for _lag, eligible in sorted(by_lag.items()):
        for lo in range(0, len(eligible), LOCKSTEP_GROUP_SIZE):
            group = eligible[lo:lo + LOCKSTEP_GROUP_SIZE]
            if len(group) < 2:
                remaining.extend(position for position, _v, _d in group)
                continue
            try:
                results = lockstep_compress(
                    compressor, [values for _p, values, _d in group],
                    validated=True)
            except Exception:
                # Unexpected lock-step failure: fall back to per-series runs.
                remaining.extend(position for position, _v, _d in group)
                continue
            for (position, _values, source_dtype), result in zip(group, results):
                block = codec._block_from_irregular(result)
                if source_dtype:
                    block.metadata[SOURCE_DTYPE_KEY] = source_dtype
                outcomes[position] = SeriesOutcome(
                    index=indices[position], name=names[position],
                    length=int(block.length), block=block,
                    fastpath="cameo-lockstep")
    remaining.sort()
    return remaining


# --------------------------------------------------------------------- #
# process-pool entry
# --------------------------------------------------------------------- #
def process_chunk_task(task: tuple) -> list[tuple]:
    """Encode one chunk from shared memory (runs in a worker process).

    ``task`` is ``(shm_name, entries, codec_name, codec_options,
    use_fastpath)`` with one ``(index, name, offset, length, dtype)`` entry
    per series.  Returns one ``(index, name, length, document, error,
    error_type, fastpath)`` tuple per series, where ``document`` is the
    portable codec-block form (model codecs are materialized) — compact and
    picklable, so the raw float arrays never cross the process boundary.
    """
    from multiprocessing import shared_memory

    shm_name, entries, codec_name, codec_options, use_fastpath = task
    # Attaching registers the segment with the (shared) resource tracker; the
    # registration set is idempotent and the parent's ``unlink`` unregisters
    # it once, so no extra bookkeeping is needed here.
    shm = shared_memory.SharedMemory(name=shm_name)
    series_list: list = []
    outcomes: list = []
    try:
        names = []
        indices = []
        for index, name, offset, length, dtype in entries:
            series_list.append(np.ndarray((length,), dtype=np.dtype(dtype),
                                          buffer=shm.buf, offset=offset))
            names.append(name)
            indices.append(index)
        codec = get_codec(codec_name, **(codec_options or {}))
        outcomes = encode_chunk(series_list, names, indices, codec_name,
                                codec_options, use_fastpath=use_fastpath,
                                codec=codec)
        payload = []
        for outcome in outcomes:
            if outcome.block is None:
                payload.append((outcome.index, outcome.name, outcome.length,
                                None, outcome.error, outcome.error_type,
                                outcome.fastpath))
            else:
                block = outcome.block
                document = block_to_document(
                    block, materialize=lambda block=block: codec.decode(block))
                payload.append((outcome.index, outcome.name, outcome.length,
                                document, None, None, outcome.fastpath))
        return payload
    finally:
        # Drop every view into the segment before closing it.
        series_list.clear()
        outcomes = None  # noqa: F841 - release block references
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - view alive/closed
            pass
