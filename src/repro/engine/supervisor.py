"""Fault-tolerant chunk supervision for the batch engine.

PR 5's backends assumed a polite world: one hung worker stalled the batch
forever, one crashed worker killed every chunk via ``BrokenProcessPool``,
and a single chunk-level exception on the thread backend abandoned the rest
of the run.  This module replaces the bare ``pool.map`` with *supervised
per-chunk futures* so a batch **always terminates with per-series
outcomes**:

* **per-chunk timeouts** — a chunk that exceeds ``timeout`` seconds is
  abandoned (thread backend) or its pool is killed and rebuilt (process
  backend) and the chunk is retried or written off as
  :class:`~repro.exceptions.ChunkTimeoutError` outcomes;
* **bounded retry with exponential backoff** — chunk-level failures are
  retried up to ``retries`` times (``backoff * 2**attempt`` sleep between
  attempts) before the chunk is given up;
* **``BrokenProcessPool`` recovery** — a worker crash breaks every pending
  future; the supervisor rebuilds the pool, re-submits the surviving
  chunks (harvesting any results that completed before the crash), and
  charges the failed attempt only to the suspect chunk it was waiting on;
* **graceful degradation** — a chunk that exhausts its in-tier attempts is
  quarantined and walked down the backend ladder (``process → thread →
  serial``) according to ``on_degrade``; per-series error isolation inside
  :func:`repro.engine.worker.encode_chunk` then guarantees the chunk's
  series yield outcomes even when the fault is a poisoned series itself.

One deliberate asymmetry: a chunk whose *last* failure is a timeout never
falls through to the untimed serial rung — a genuinely hung computation
would hang the whole engine there.  Hangs stop at the thread rung (which
still enforces the timeout) and become timeout outcomes.

Every decision is counted in :class:`SupervisorStats`, which
:class:`~repro.engine.engine.BatchEngine` folds into the
:class:`~repro.engine.report.BatchReport`.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from .. import faultinject
from ..codecs.serialize import block_from_document
from ..exceptions import (
    ChunkTimeoutError,
    DeadlineExceededError,
    InvalidParameterError,
    ReproError,
)
from .backends import (
    BACKENDS,
    build_shared_input,
    preferred_context,
    release_segment,
    segment_residue,
)
from .report import SeriesOutcome
from .worker import encode_chunk, process_chunk_task

__all__ = ["SupervisorPolicy", "SupervisorStats", "run_supervised"]

#: Recognised degradation modes.
ON_DEGRADE = ("degrade", "serial", "error")


@dataclass(frozen=True)
class SupervisorPolicy:
    """Fault-handling knobs for one engine run.

    Parameters
    ----------
    timeout:
        Per-chunk wall-clock budget in seconds (``None`` = unbounded, the
        historical behaviour).  Enforced on the thread and process tiers;
        the serial tier runs untimed by construction.
    retries:
        Chunk-level retry budget *within* a tier before the chunk is
        quarantined.
    backoff:
        Base sleep between retries; attempt *k* sleeps ``backoff * 2**k``.
    on_degrade:
        What to do with a quarantined chunk: ``degrade`` (default — walk
        the ladder ``process → thread → serial``), ``serial`` (skip the
        thread rung, go straight to the serial guard), or ``error``
        (record error outcomes immediately).
    deadline:
        Absolute ``time.monotonic()`` instant after which no further work
        may start (``None`` = unbounded).  Every tier clamps its future
        waits to the remaining budget, skips retries once the budget is
        gone, and records :class:`~repro.exceptions.DeadlineExceededError`
        outcomes for chunks abandoned at expiry — so a request-level
        deadline bounds the whole run regardless of per-chunk ``timeout``.
    """

    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05
    on_degrade: str = "degrade"
    deadline: float | None = None

    def __post_init__(self):
        if self.timeout is not None and not float(self.timeout) > 0:
            raise InvalidParameterError(
                f"timeout must be positive or None, got {self.timeout!r}")
        if self.deadline is not None:
            try:
                float(self.deadline)
            except (TypeError, ValueError):
                raise InvalidParameterError(
                    f"deadline must be a monotonic instant or None, "
                    f"got {self.deadline!r}") from None
        if int(self.retries) < 0:
            raise InvalidParameterError(
                f"retries must be >= 0, got {self.retries!r}")
        if float(self.backoff) < 0:
            raise InvalidParameterError(
                f"backoff must be >= 0, got {self.backoff!r}")
        if self.on_degrade not in ON_DEGRADE:
            raise InvalidParameterError(
                f"on_degrade must be one of {', '.join(ON_DEGRADE)}; "
                f"got {self.on_degrade!r}")


@dataclass
class SupervisorStats:
    """Accounting of every recovery decision taken during one run."""

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined_chunks: int = 0
    degraded_chunks: int = 0
    degraded_series: int = 0


@dataclass
class _Job:
    """Everything needed to (re-)encode any chunk of the batch."""

    series: list
    names: list[str]
    codec_name: str
    codec_options: dict | None
    use_fastpath: bool


def _encode(job: _Job, chunk: list[int]) -> list[SeriesOutcome]:
    return encode_chunk(
        [job.series[index] for index in chunk],
        [job.names[index] for index in chunk], chunk, job.codec_name,
        job.codec_options, use_fastpath=job.use_fastpath)


def _series_length(series) -> int:
    try:
        return int(np.asarray(series).size)
    except Exception:  # pragma: no cover - exotic inputs
        return 0


def _error_outcomes(job: _Job, chunk: list[int], exc: BaseException,
                    degraded_to: str | None = None) -> list[SeriesOutcome]:
    return [SeriesOutcome(index=index, name=job.names[index],
                          length=_series_length(job.series[index]),
                          error=str(exc), error_type=type(exc).__name__,
                          degraded_to=degraded_to)
            for index in chunk]


def _payload_to_outcomes(payload) -> list[SeriesOutcome]:
    outcomes: list[SeriesOutcome] = []
    for index, name, length, document, error, error_type, fastpath in payload:
        if document is None:
            outcomes.append(SeriesOutcome(index=index, name=name,
                                          length=length, error=error,
                                          error_type=error_type))
        else:
            outcomes.append(SeriesOutcome(index=index, name=name,
                                          length=length,
                                          block=block_from_document(document),
                                          fastpath=fastpath))
    return outcomes


def _sleep_backoff(policy: SupervisorPolicy, attempt: int) -> None:
    if policy.backoff > 0:
        sleep = policy.backoff * (2 ** max(attempt - 1, 0))
        remaining = _remaining(policy)
        if remaining is not None:
            sleep = min(sleep, max(remaining, 0.0))
        time.sleep(sleep)


# --------------------------------------------------------------------- #
# deadline accounting
# --------------------------------------------------------------------- #
def _remaining(policy: SupervisorPolicy) -> float | None:
    """Seconds left in the run budget, or ``None`` when unbounded."""
    if policy.deadline is None:
        return None
    return policy.deadline - time.monotonic()


def _expired(policy: SupervisorPolicy) -> bool:
    remaining = _remaining(policy)
    return remaining is not None and remaining <= 0


def _wait_timeout(policy: SupervisorPolicy) -> float | None:
    """The effective future-wait timeout: per-chunk cap ∧ remaining budget."""
    remaining = _remaining(policy)
    if remaining is None:
        return policy.timeout
    remaining = max(remaining, 0.0)
    if policy.timeout is None:
        return remaining
    return min(policy.timeout, remaining)


def _deadline_outcomes(job: _Job, chunk: list[int],
                       degraded_to: str | None = None
                       ) -> list[SeriesOutcome]:
    error = DeadlineExceededError(
        f"run deadline expired before the chunk of {len(chunk)} series "
        f"completed")
    return _error_outcomes(job, chunk, error, degraded_to=degraded_to)


def _timeout_failure(policy: SupervisorPolicy, chunk_size: int,
                     where: str) -> ChunkTimeoutError:
    """The right error for a future wait that ran out of time."""
    if _expired(policy):
        return DeadlineExceededError(
            f"chunk of {chunk_size} series abandoned on the {where}: the "
            f"run deadline expired")
    return ChunkTimeoutError(
        f"chunk of {chunk_size} series exceeded the {policy.timeout:g}s "
        f"timeout on the {where}")


# --------------------------------------------------------------------- #
# serial tier
# --------------------------------------------------------------------- #
def _serial_chunk(job: _Job, chunk: list[int], policy: SupervisorPolicy,
                  stats: SupervisorStats, *,
                  degraded_to: str | None = None) -> list[SeriesOutcome]:
    """One chunk in-process, with chunk-level retry then error outcomes."""
    failure: BaseException | None = None
    for attempt in range(policy.retries + 1):
        if _expired(policy):
            stats.timeouts += 1
            return _deadline_outcomes(job, chunk, degraded_to=degraded_to)
        if attempt:
            stats.retries += 1
            _sleep_backoff(policy, attempt)
        try:
            outcomes = _encode(job, chunk)
        except Exception as exc:
            failure = exc
            continue
        for outcome in outcomes:
            outcome.degraded_to = degraded_to
        return outcomes
    # Serial is the bottom of the ladder: exhaustion means quarantine
    # straight to error outcomes.
    stats.quarantined_chunks += 1
    return _error_outcomes(job, chunk, failure, degraded_to=degraded_to)


def _run_serial(job: _Job, chunks, policy, stats) -> list[SeriesOutcome]:
    outcomes: list[SeriesOutcome] = []
    for chunk in chunks:
        outcomes.extend(_serial_chunk(job, chunk, policy, stats))
    return outcomes


# --------------------------------------------------------------------- #
# degradation ladder
# --------------------------------------------------------------------- #
def _degrade_chunk(job: _Job, chunk: list[int], policy: SupervisorPolicy,
                   stats: SupervisorStats, failure: BaseException,
                   ladder: tuple[str, ...]) -> list[SeriesOutcome]:
    """Walk one quarantined chunk down the backend ladder."""
    stats.quarantined_chunks += 1
    if policy.on_degrade == "error" or not ladder:
        return _error_outcomes(job, chunk, failure)
    stats.degraded_chunks += 1
    stats.degraded_series += len(chunk)
    if _expired(policy):
        stats.timeouts += 1
        return _deadline_outcomes(job, chunk)

    if policy.on_degrade == "degrade" and "thread" in ladder:
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            outcomes = pool.submit(_encode, job, chunk).result(
                timeout=_wait_timeout(policy))
        except FutureTimeoutError:
            stats.timeouts += 1
            failure = _timeout_failure(policy, len(chunk),
                                       "degraded thread rung")
        except Exception as exc:
            failure = exc
        else:
            for outcome in outcomes:
                outcome.degraded_to = "thread"
            return outcomes
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # The untimed serial rung would hang forever on a genuinely stuck
    # chunk, so timeouts stop here and become timeout outcomes.
    if isinstance(failure, ChunkTimeoutError):
        return _error_outcomes(job, chunk, failure)
    try:
        outcomes = _encode(job, chunk)
    except Exception as exc:
        return _error_outcomes(job, chunk, exc, degraded_to="serial")
    for outcome in outcomes:
        outcome.degraded_to = "serial"
    return outcomes


# --------------------------------------------------------------------- #
# thread tier
# --------------------------------------------------------------------- #
def _run_thread(job: _Job, chunks, workers: int, policy: SupervisorPolicy,
                stats: SupervisorStats) -> list[SeriesOutcome]:
    count = len(chunks)
    results: dict[int, list[SeriesOutcome]] = {}
    attempts = [0] * count
    pool = ThreadPoolExecutor(max_workers=workers)
    try:
        inflight = {cid: pool.submit(_encode, job, chunks[cid])
                    for cid in range(count)}
        queue = deque(range(count))
        while queue:
            cid = queue.popleft()
            try:
                results[cid] = inflight[cid].result(
                    timeout=_wait_timeout(policy))
                continue
            except FutureTimeoutError:
                stats.timeouts += 1
                failure: BaseException = _timeout_failure(
                    policy, len(chunks[cid]), "thread backend")
                if _expired(policy):
                    # The budget is gone: no retry, no degrade — record
                    # deadline outcomes and let the abandoned task die with
                    # the pool shutdown below.
                    results[cid] = _error_outcomes(job, chunks[cid], failure)
                    continue
            except Exception as exc:
                failure = exc
            attempts[cid] += 1
            if attempts[cid] <= policy.retries and not _expired(policy):
                stats.retries += 1
                _sleep_backoff(policy, attempts[cid])
                inflight[cid] = pool.submit(_encode, job, chunks[cid])
                queue.append(cid)
            else:
                results[cid] = _degrade_chunk(job, chunks[cid], policy,
                                              stats, failure,
                                              ladder=("serial",))
    finally:
        # wait=False: an abandoned (timed-out) task must not block return.
        pool.shutdown(wait=False, cancel_futures=True)
    return [outcome for cid in range(count) for outcome in results[cid]]


# --------------------------------------------------------------------- #
# process tier
# --------------------------------------------------------------------- #
class _ProcessPoolBox:
    """A rebuildable process pool (crash and hang recovery)."""

    def __init__(self, workers: int):
        self.workers = workers
        self.pool = self._make()

    def _make(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=preferred_context())

    def submit(self, fn, *args):
        try:
            return self.pool.submit(fn, *args)
        except BrokenExecutor:  # pragma: no cover - broke between waits
            self.rebuild(kill=False)
            return self.pool.submit(fn, *args)

    def rebuild(self, *, kill: bool) -> None:
        """Replace the pool; ``kill`` terminates hung workers first.

        ``ProcessPoolExecutor`` has no public "kill one worker", so a hang
        costs the whole pool: terminate every worker (SIGTERM reaps a
        sleeping or wedged child) and start fresh.  A crash-broken pool has
        already reaped its workers, so a plain shutdown suffices.
        """
        old = self.pool
        processes = list(getattr(old, "_processes", {}).values()) if kill else []
        try:
            old.shutdown(wait=not kill, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown of a broken pool
            pass
        for process in processes:
            if process.is_alive():
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - already reaped
                    pass
        self.pool = self._make()

    def shutdown(self) -> None:
        self.pool.shutdown(wait=False, cancel_futures=True)


def _run_process(job: _Job, chunks, workers: int, policy: SupervisorPolicy,
                 stats: SupervisorStats) -> list[SeriesOutcome]:
    # Series that cannot travel through shared memory (non-numeric dtypes,
    # empty arrays) are encoded in the parent — they would fail validation
    # anyway, and the error outcome must still be recorded per series.
    shareable: list[list[int]] = []
    parent_side: list[int] = []
    for chunk in chunks:
        kept = []
        for index in chunk:
            array = np.asarray(job.series[index])
            if array.dtype.kind in ("f", "i", "u") and array.ndim == 1 \
                    and array.size:
                kept.append(index)
            else:
                parent_side.append(index)
        if kept:
            shareable.append(kept)

    outcomes: list[SeriesOutcome] = []
    if parent_side:
        outcomes.extend(_serial_chunk(job, parent_side, policy, stats))
    if not shareable:
        return outcomes

    shm, manifest = build_shared_input(job.series, shareable)
    try:
        faultinject.fire("manifest", manifest=manifest)
        tasks = [(shm.name,
                  [(index, job.names[index], *manifest[index])
                   for index in chunk],
                  job.codec_name, job.codec_options, job.use_fastpath)
                 for chunk in shareable]
        outcomes.extend(
            _supervise_process_chunks(job, shareable, tasks, workers,
                                      policy, stats))
    finally:
        release_segment(shm)
    leaked = segment_residue(shm.name)
    if leaked:  # pragma: no cover - the release above is idempotent
        raise ReproError(f"shared-memory segment leaked: {leaked}")
    return outcomes


def _supervise_process_chunks(job, chunks, tasks, workers, policy, stats
                              ) -> list[SeriesOutcome]:
    count = len(chunks)
    results: dict[int, list[SeriesOutcome]] = {}
    attempts = [0] * count
    box = _ProcessPoolBox(workers)
    try:
        inflight = {cid: box.submit(process_chunk_task, tasks[cid])
                    for cid in range(count)}
        queue = deque(range(count))
        deadline_reaped = False
        while queue:
            cid = queue.popleft()
            if cid in results:
                continue
            if _expired(policy):
                # Reaped futures raise CancelledError (a BaseException) on
                # .result(); harvest finished chunks, write the rest off.
                future = inflight[cid]
                if future.done() and not future.cancelled():
                    try:
                        results[cid] = _payload_to_outcomes(
                            future.result(timeout=0))
                        continue
                    except Exception:
                        pass
                stats.timeouts += 1
                results[cid] = _deadline_outcomes(job, chunks[cid])
                continue
            try:
                payload = inflight[cid].result(timeout=_wait_timeout(policy))
                results[cid] = _payload_to_outcomes(payload)
                continue
            except FutureTimeoutError:
                stats.timeouts += 1
                failure: BaseException = _timeout_failure(
                    policy, len(chunks[cid]), "process backend")
                if _expired(policy):
                    # Budget gone: record deadline outcomes and reap the
                    # workers still grinding (once) instead of resubmitting.
                    results[cid] = _error_outcomes(job, chunks[cid], failure)
                    if not deadline_reaped:
                        deadline_reaped = True
                        stats.pool_rebuilds += 1
                        box.rebuild(kill=True)
                    continue
                stats.pool_rebuilds += 1
                box.rebuild(kill=True)
                _resubmit_pending(box, tasks, inflight, results, skip=cid)
            except BrokenProcessPool as exc:
                # The suspect is the chunk we were waiting on: charge the
                # failed attempt to it alone, resubmit everyone else free.
                failure = exc
                stats.pool_rebuilds += 1
                box.rebuild(kill=False)
                _resubmit_pending(box, tasks, inflight, results, skip=cid)
            except Exception as exc:
                failure = exc
            attempts[cid] += 1
            if attempts[cid] <= policy.retries and not _expired(policy):
                stats.retries += 1
                _sleep_backoff(policy, attempts[cid])
                inflight[cid] = box.submit(process_chunk_task, tasks[cid])
                queue.append(cid)
            else:
                results[cid] = _degrade_chunk(job, chunks[cid], policy,
                                              stats, failure,
                                              ladder=("thread", "serial"))
    finally:
        box.shutdown()
    return [outcome for cid in range(count) for outcome in results[cid]]


def _resubmit_pending(box: _ProcessPoolBox, tasks, inflight, results,
                      skip: int) -> None:
    """After a rebuild: harvest finished chunks, resubmit the rest.

    Results that completed before the pool broke are kept (no recompute);
    chunks whose futures died with the pool are resubmitted without
    touching their attempt counters — only the suspect (``skip``) pays.
    """
    for cid, future in list(inflight.items()):
        if cid in results or cid == skip:
            continue
        if future.done():
            try:
                results[cid] = _payload_to_outcomes(future.result(timeout=0))
                continue
            except Exception:
                pass  # died with the pool: resubmit fresh below
        inflight[cid] = box.submit(process_chunk_task, tasks[cid])


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #
def run_supervised(backend: str, chunks, series, names, codec_name: str,
                   codec_options: dict | None, use_fastpath: bool,
                   workers: int, policy: SupervisorPolicy | None = None
                   ) -> tuple[list[SeriesOutcome], SupervisorStats]:
    """Run every chunk to a per-series outcome on the chosen backend.

    Returns ``(outcomes, stats)``; outcomes arrive in chunk order (the
    engine re-sorts by batch index).  This function never raises for
    chunk- or worker-level failures — that is its contract.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}")
    if policy is None:
        policy = SupervisorPolicy()
    stats = SupervisorStats()
    job = _Job(series=series, names=names, codec_name=codec_name,
               codec_options=codec_options, use_fastpath=use_fastpath)
    if backend == "serial":
        outcomes = _run_serial(job, chunks, policy, stats)
    elif backend == "thread":
        outcomes = _run_thread(job, chunks, workers, policy, stats)
    else:
        outcomes = _run_process(job, chunks, workers, policy, stats)
    return outcomes, stats
