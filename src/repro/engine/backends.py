"""Execution backends for the batch engine: serial, thread, process.

All three run the same :func:`repro.engine.worker.encode_chunk` over the
planned chunks; they differ only in *where*:

``serial``
    One in-process pass (the reference the determinism tests compare
    against, and the baseline of the perf harness' throughput ratio).
``thread``
    A ``ThreadPoolExecutor`` — NumPy releases the GIL inside the heavy
    kernels, so moderate speed-ups are possible without any serialization.
``process``
    A ``ProcessPoolExecutor`` over true processes.  Input series travel
    through one ``multiprocessing.shared_memory`` segment (workers build
    zero-copy array views), results come back as portable codec-block
    documents — no float payload is ever pickled.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..codecs.serialize import block_from_document
from ..exceptions import InvalidParameterError
from .report import SeriesOutcome
from .worker import encode_chunk, process_chunk_task

__all__ = ["BACKENDS", "resolve_workers", "run_serial", "run_thread",
           "run_process"]

#: Recognised backend names.
BACKENDS = ("serial", "thread", "process")


def resolve_workers(backend: str, workers: int | None) -> int:
    """Worker count for a backend (defaults to the machine's CPU count)."""
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}")
    if backend == "serial":
        return 1
    if workers is None:
        return max(os.cpu_count() or 1, 1)
    if workers < 1:
        raise InvalidParameterError("workers must be >= 1")
    return int(workers)


def run_serial(chunks, series, names, codec_name, codec_options,
               use_fastpath: bool) -> list[SeriesOutcome]:
    """Encode every chunk in-process, one after the other."""
    outcomes: list[SeriesOutcome] = []
    for chunk in chunks:
        outcomes.extend(encode_chunk(
            [series[index] for index in chunk],
            [names[index] for index in chunk], chunk, codec_name,
            codec_options, use_fastpath=use_fastpath))
    return outcomes


def run_thread(chunks, series, names, codec_name, codec_options,
               use_fastpath: bool, workers: int) -> list[SeriesOutcome]:
    """Encode chunks on a thread pool (shared address space, no copies)."""

    def task(chunk):
        return encode_chunk(
            [series[index] for index in chunk],
            [names[index] for index in chunk], chunk, codec_name,
            codec_options, use_fastpath=use_fastpath)

    outcomes: list[SeriesOutcome] = []
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for chunk_outcomes in pool.map(task, chunks):
            outcomes.extend(chunk_outcomes)
    return outcomes


# --------------------------------------------------------------------- #
# process backend
# --------------------------------------------------------------------- #
def _preferred_context():
    """``fork`` where available (cheap startup, Linux), else the default."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _build_shared_input(series, chunks):
    """Copy every chunked series into one shared-memory segment.

    Returns ``(shm, manifest)`` where ``manifest[index] = (offset, length,
    dtype_str)``.  Offsets are 8-byte aligned so any float dtype views
    cleanly.
    """
    from multiprocessing import shared_memory

    needed = [index for chunk in chunks for index in chunk]
    manifest: dict[int, tuple[int, int, str]] = {}
    offset = 0
    arrays: dict[int, np.ndarray] = {}
    for index in needed:
        array = np.ascontiguousarray(series[index])
        arrays[index] = array
        manifest[index] = (offset, int(array.size), array.dtype.str)
        offset += (array.nbytes + 7) & ~7
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for index in needed:
        start, length, dtype = manifest[index]
        view = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf,
                          offset=start)
        view[:] = arrays[index]
        del view
    return shm, manifest


def run_process(chunks, series, names, codec_name, codec_options,
                use_fastpath: bool, workers: int) -> list[SeriesOutcome]:
    """Encode chunks on a process pool via shared memory.

    Series that cannot be shared (non-numeric dtypes) are encoded in the
    parent instead — they would fail validation anyway, and the error
    outcome must still be recorded per series.
    """
    from concurrent.futures import ProcessPoolExecutor

    shareable_chunks: list[list[int]] = []
    parent_side: list[int] = []
    for chunk in chunks:
        kept = []
        for index in chunk:
            array = np.asarray(series[index])
            if array.dtype.kind in ("f", "i", "u") and array.ndim == 1 and array.size:
                kept.append(index)
            else:
                parent_side.append(index)
        if kept:
            shareable_chunks.append(kept)

    outcomes: list[SeriesOutcome] = []
    if parent_side:
        outcomes.extend(run_serial([parent_side], series, names, codec_name,
                                   codec_options, use_fastpath))
    if not shareable_chunks:
        return outcomes

    shm, manifest = _build_shared_input(series, shareable_chunks)
    try:
        tasks = []
        for chunk in shareable_chunks:
            entries = [(index, names[index], *manifest[index])
                       for index in chunk]
            tasks.append((shm.name, entries, codec_name, codec_options,
                          use_fastpath))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_preferred_context()) as pool:
            for chunk, payload in zip(shareable_chunks,
                                      pool.map(process_chunk_task, tasks)):
                for index, name, length, document, error, error_type, fastpath \
                        in payload:
                    if document is None:
                        outcomes.append(SeriesOutcome(
                            index=index, name=name, length=length,
                            error=error, error_type=error_type))
                    else:
                        outcomes.append(SeriesOutcome(
                            index=index, name=name, length=length,
                            block=block_from_document(document),
                            fastpath=fastpath))
    finally:
        shm.close()
        shm.unlink()
    return outcomes
