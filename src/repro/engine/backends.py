"""Backend plumbing for the batch engine: names, workers, shared memory.

The execution strategies themselves (serial / thread / process, plus the
supervision layer that keeps a batch alive through worker crashes, hangs,
and poisoned chunks) live in :mod:`repro.engine.supervisor`.  This module
owns what they share:

* backend-name validation and worker-count resolution;
* the shared-memory input transport of the process backend — every batch
  ships its inputs through **one** named ``multiprocessing.shared_memory``
  segment (workers build zero-copy views; float payloads never pickle);
* shared-memory *hygiene*: segments carry a recognizable
  ``repro_batch_<pid>_<seq>`` name, every live segment is tracked in a
  process-local registry, release is idempotent on both the parent and
  worker side, an ``atexit`` hook unlinks anything a crashed run left
  behind, and :func:`segment_residue` lets callers (and the fault-injection
  tests) assert that ``/dev/shm`` holds no engine residue.
"""

from __future__ import annotations

import atexit
import itertools
import os

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "BACKENDS",
    "SEGMENT_PREFIX",
    "build_shared_input",
    "install_signal_cleanup",
    "preferred_context",
    "release_all_segments",
    "release_segment",
    "resolve_workers",
    "segment_residue",
]

#: Recognised backend names.
BACKENDS = ("serial", "thread", "process")

#: Name prefix of every engine-owned shared-memory segment.
SEGMENT_PREFIX = "repro_batch_"


def resolve_workers(backend: str, workers: int | None) -> int:
    """Worker count for a backend (defaults to the machine's CPU count)."""
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}")
    if backend == "serial":
        return 1
    if workers is None:
        return max(os.cpu_count() or 1, 1)
    if workers < 1:
        raise InvalidParameterError("workers must be >= 1")
    return int(workers)


def preferred_context():
    """``fork`` where available (cheap startup, Linux), else the default."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# --------------------------------------------------------------------- #
# shared-memory segment hygiene
# --------------------------------------------------------------------- #
#: Every live engine-created segment, by name.  The registry exists so the
#: ``atexit`` hook (and an optional signal handler) can unlink whatever a
#: crashed or interrupted run failed to release — a leaked segment outlives
#: the process and eats ``/dev/shm`` until reboot.
_LIVE_SEGMENTS: dict[str, object] = {}
_SEGMENT_SEQ = itertools.count()
_CLEANUP_REGISTERED = False


def _register_segment(shm) -> None:
    global _CLEANUP_REGISTERED
    if not _CLEANUP_REGISTERED:
        atexit.register(release_all_segments)
        _CLEANUP_REGISTERED = True
    _LIVE_SEGMENTS[shm.name] = shm


def release_segment(shm) -> None:
    """Close and unlink one segment; safe to call any number of times.

    Idempotence is the load-bearing property: the supervisor's ``finally``,
    the ``atexit`` hook, and an optional signal handler may all race to
    release the same segment after a fault, and none of them may raise.
    """
    _LIVE_SEGMENTS.pop(getattr(shm, "name", None), None)
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - already closed
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - platform-specific unlink refusal
        pass


def release_all_segments() -> None:
    """Release every tracked segment (atexit / signal-handler entry)."""
    for name in list(_LIVE_SEGMENTS):
        shm = _LIVE_SEGMENTS.get(name)
        if shm is not None:
            release_segment(shm)


def install_signal_cleanup(signums=None) -> None:
    """Chain shared-memory cleanup into termination signal handlers.

    Libraries must not hijack signal handling, so this is opt-in for
    application entry points (the CLI calls it for ``compress-batch``).
    The previous handler — or the default action — still runs afterwards,
    so semantics beyond the cleanup are unchanged.  Calls from non-main
    threads are ignored (``signal.signal`` would raise there).
    """
    import signal

    if signums is None:
        signums = (signal.SIGTERM, signal.SIGHUP) if hasattr(signal, "SIGHUP") \
            else (signal.SIGTERM,)
    for signum in signums:
        try:
            previous = signal.getsignal(signum)

            def _handler(signo, frame, _previous=previous):
                release_all_segments()
                if callable(_previous):
                    _previous(signo, frame)
                else:
                    signal.signal(signo, signal.SIG_DFL)
                    os.kill(os.getpid(), signo)

            signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            continue


def segment_residue(name_or_prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Engine segments still present in ``/dev/shm`` (the leak check).

    Returns an empty list on platforms without a ``/dev/shm`` tmpfs — the
    assertion is then vacuous rather than wrong.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    try:
        entries = os.listdir(root)
    except OSError:  # pragma: no cover - tmpfs unreadable
        return []
    return sorted(entry for entry in entries
                  if entry.startswith(name_or_prefix))


def _new_segment(size: int):
    from multiprocessing import shared_memory

    while True:
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_SEGMENT_SEQ)}"
        try:
            shm = shared_memory.SharedMemory(create=True, name=name,
                                             size=max(int(size), 1))
        except FileExistsError:  # pragma: no cover - stale residue collision
            continue
        _register_segment(shm)
        return shm


def build_shared_input(series, chunks):
    """Copy every chunked series into one shared-memory segment.

    Returns ``(shm, manifest)`` where ``manifest[index] = (offset, length,
    dtype_str)``.  Offsets are 8-byte aligned so any float dtype views
    cleanly.  The segment is registered for atexit cleanup; callers must
    still :func:`release_segment` it in a ``finally``.
    """
    needed = [index for chunk in chunks for index in chunk]
    manifest: dict[int, tuple[int, int, str]] = {}
    offset = 0
    arrays: dict[int, np.ndarray] = {}
    for index in needed:
        array = np.ascontiguousarray(series[index])
        arrays[index] = array
        manifest[index] = (offset, int(array.size), array.dtype.str)
        offset += (array.nbytes + 7) & ~7
    shm = _new_segment(offset)
    for index in needed:
        start, length, dtype = manifest[index]
        view = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf,
                          offset=start)
        view[:] = arrays[index]
        del view
    return shm, manifest
