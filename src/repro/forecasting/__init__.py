"""Forecasting substrate: ETS family, STL, AR/ARIMA-lite, DHR, MLP, Box-Cox."""

from .arima import AutoRegressive, yule_walker
from .base import Forecaster, ForecastEvaluation, evaluate_forecast, train_test_split
from .boxcox import BoxCoxTransform, boxcox_transform, inverse_boxcox_transform
from .dhr import DynamicHarmonicRegression, fourier_terms
from .ets import HoltLinear, HoltWinters, SimpleExponentialSmoothing
from .mlp import MLPAutoregressor
from .naive import DriftForecaster, NaiveForecaster, ThetaForecaster
from .pipelines import STLForecaster, SeasonalNaive, make_forecaster
from .stl import SeasonalDecomposition, decompose

__all__ = [
    "Forecaster",
    "ForecastEvaluation",
    "evaluate_forecast",
    "train_test_split",
    "SimpleExponentialSmoothing",
    "HoltLinear",
    "HoltWinters",
    "SeasonalDecomposition",
    "decompose",
    "AutoRegressive",
    "yule_walker",
    "DynamicHarmonicRegression",
    "fourier_terms",
    "MLPAutoregressor",
    "NaiveForecaster",
    "DriftForecaster",
    "ThetaForecaster",
    "STLForecaster",
    "SeasonalNaive",
    "make_forecaster",
    "BoxCoxTransform",
    "boxcox_transform",
    "inverse_boxcox_transform",
]
