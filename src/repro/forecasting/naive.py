"""Simple forecasting baselines: naive, drift, and the Theta method.

The paper's forecasting experiments (Section 5.8) compare models trained on
compressed data against models trained on raw data.  These classical
baselines serve as sanity anchors in those experiments: a compressor that
degrades a sophisticated model below the naive forecast has destroyed the
temporal structure the model needed.

* :class:`NaiveForecaster` — repeat the last observation.
* :class:`DriftForecaster` — extrapolate the straight line between the first
  and last observation (Hyndman & Athanasopoulos, "Forecasting: principles
  and practice").
* :class:`ThetaForecaster` — the Theta(0, 2) method: simple exponential
  smoothing of the series plus half the slope of the fitted linear trend,
  equivalent to the classical Theta method of Assimakopoulos & Nikolopoulos
  that won the M3 competition.  An optional seasonal period applies classical
  multiplicative seasonal adjustment before smoothing and restores it on the
  forecast.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import InvalidParameterError, ModelError
from .base import Forecaster
from .ets import SimpleExponentialSmoothing

__all__ = ["NaiveForecaster", "DriftForecaster", "ThetaForecaster"]


class NaiveForecaster(Forecaster):
    """Forecast every future step with the last observed value."""

    name = "Naive"

    def __init__(self) -> None:
        super().__init__()
        self._last = 0.0

    def fit(self, values) -> "NaiveForecaster":
        values = as_float_array(values)
        self._last = float(values[-1])
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        return np.full(horizon, self._last, dtype=np.float64)


class DriftForecaster(Forecaster):
    """Extrapolate the line through the first and last training observation."""

    name = "Drift"

    def __init__(self) -> None:
        super().__init__()
        self._last = 0.0
        self._slope = 0.0

    def fit(self, values) -> "DriftForecaster":
        values = as_float_array(values)
        if values.size < 2:
            raise ModelError("DriftForecaster needs at least two observations")
        self._last = float(values[-1])
        self._slope = float(values[-1] - values[0]) / float(values.size - 1)
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        steps = np.arange(1, horizon + 1, dtype=np.float64)
        return self._last + self._slope * steps


class ThetaForecaster(Forecaster):
    """Theta(0, 2) forecasting with optional classical seasonal adjustment.

    The forecast is the simple-exponential-smoothing level of the
    (deseasonalised) series plus half the slope of its least-squares linear
    trend, re-seasonalised when a ``period`` is given.

    Parameters
    ----------
    period:
        Seasonal period; 0 or 1 disables seasonal adjustment.
    alpha:
        Smoothing parameter of the SES component; ``None`` lets the SES model
        pick its default.
    """

    def __init__(self, period: int = 0, alpha: float | None = None):
        super().__init__()
        if period < 0:
            raise InvalidParameterError("period must be >= 0")
        self.period = int(period)
        self.alpha = alpha
        self.name = f"Theta{self.period}" if self.period > 1 else "Theta"
        self._ses: SimpleExponentialSmoothing | None = None
        self._slope = 0.0
        self._train_length = 0
        self._seasonal_cycle: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, values) -> "ThetaForecaster":
        values = as_float_array(values)
        if values.size < 3:
            raise ModelError("ThetaForecaster needs at least three observations")
        if self.period > 1 and values.size < 2 * self.period:
            raise ModelError(
                "ThetaForecaster needs at least two full seasonal cycles "
                f"({2 * self.period} points) for seasonal adjustment")

        adjusted = values
        self._seasonal_cycle = None
        if self.period > 1:
            self._seasonal_cycle = self._seasonal_indices(values, self.period)
            tiled = np.tile(self._seasonal_cycle,
                            int(np.ceil(values.size / self.period)))[: values.size]
            adjusted = values / tiled

        # Theta line with theta = 2 doubles the curvature; averaging it with
        # the theta = 0 line (the linear trend) yields SES + slope / 2.
        time_index = np.arange(adjusted.size, dtype=np.float64)
        slope, _intercept = np.polyfit(time_index, adjusted, 1)
        self._slope = float(slope)
        ses_kwargs = {} if self.alpha is None else {"alpha": self.alpha}
        self._ses = SimpleExponentialSmoothing(**ses_kwargs).fit(adjusted)
        self._train_length = adjusted.size
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        assert self._ses is not None
        level = self._ses.forecast(horizon)
        steps = np.arange(1, horizon + 1, dtype=np.float64)
        forecast = level + 0.5 * self._slope * steps
        if self._seasonal_cycle is not None:
            phases = (self._train_length + np.arange(horizon)) % self.period
            forecast = forecast * self._seasonal_cycle[phases]
        return forecast

    # ------------------------------------------------------------------ #
    @staticmethod
    def _seasonal_indices(values: np.ndarray, period: int) -> np.ndarray:
        """Multiplicative seasonal indices from per-phase means, normalised."""
        usable = values[: values.size - values.size % period]
        phase_means = usable.reshape(-1, period).mean(axis=0)
        overall = float(np.mean(usable))
        if overall == 0.0 or np.any(phase_means == 0.0):
            # Fall back to a flat seasonal profile for centred/zero data.
            return np.ones(period, dtype=np.float64)
        indices = phase_means / overall
        return indices / float(np.mean(indices))
