"""Seasonal-trend decomposition (classical moving-average variant).

The paper uses STL (LOESS-based) decomposition in the STL-ETS and STL-ARIMA
pipelines.  This module implements the classical additive decomposition with
a centred moving-average trend and averaged detrended seasonality, plus an
optional LOESS-like smoothing pass on the seasonal component.  It exposes the
same three components (trend, seasonal, remainder) the pipelines and the
feature extractor need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import ModelError

__all__ = ["SeasonalDecomposition", "decompose"]


@dataclass
class SeasonalDecomposition:
    """Additive decomposition ``values = trend + seasonal + remainder``."""

    trend: np.ndarray
    seasonal: np.ndarray
    remainder: np.ndarray
    period: int

    @property
    def deseasonalized(self) -> np.ndarray:
        """Series with the seasonal component removed."""
        return self.trend + self.remainder

    def seasonal_strength(self) -> float:
        """Hyndman's seasonal-strength statistic ``1 - Var(R)/Var(S+R)``."""
        denominator = float(np.var(self.seasonal + self.remainder))
        if denominator == 0.0:
            return 0.0
        return float(max(0.0, 1.0 - np.var(self.remainder) / denominator))

    def trend_strength(self) -> float:
        """Hyndman's trend-strength statistic ``1 - Var(R)/Var(T+R)``."""
        denominator = float(np.var(self.trend + self.remainder))
        if denominator == 0.0:
            return 0.0
        return float(max(0.0, 1.0 - np.var(self.remainder) / denominator))


def _centered_moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge padding (trend estimate)."""
    if window % 2 == 0:
        # Classical 2xM average for even periods.
        kernel = np.ones(window + 1)
        kernel[0] = kernel[-1] = 0.5
        kernel /= window
    else:
        kernel = np.ones(window) / window
    padded = np.pad(values, (len(kernel) // 2, len(kernel) // 2), mode="edge")
    return np.convolve(padded, kernel, mode="valid")[: values.size]


def _smooth_seasonal(seasonal_pattern: np.ndarray, smoothing: int) -> np.ndarray:
    """Light smoothing of the per-cycle seasonal pattern (LOESS stand-in)."""
    if smoothing <= 1:
        return seasonal_pattern
    kernel = np.ones(smoothing) / smoothing
    padded = np.pad(seasonal_pattern, (smoothing // 2, smoothing // 2), mode="wrap")
    smoothed = np.convolve(padded, kernel, mode="valid")[: seasonal_pattern.size]
    return smoothed


def decompose(values, period: int, *, seasonal_smoothing: int = 1) -> SeasonalDecomposition:
    """Additive seasonal decomposition of ``values`` with seasonal ``period``.

    Parameters
    ----------
    values:
        Input series (at least two full periods).
    period:
        Seasonal period in samples.
    seasonal_smoothing:
        Width of the circular smoothing applied to the seasonal pattern
        (1 = classical decomposition, >1 approximates STL's seasonal LOESS).
    """
    values = as_float_array(values)
    period = check_positive_int(period, "period")
    if values.size < 2 * period:
        raise ModelError(
            f"decomposition needs at least two periods ({2 * period}), got {values.size}")
    trend = _centered_moving_average(values, period)
    detrended = values - trend

    seasonal_pattern = np.zeros(period)
    for phase in range(period):
        seasonal_pattern[phase] = float(np.mean(detrended[phase::period]))
    seasonal_pattern -= float(np.mean(seasonal_pattern))
    seasonal_pattern = _smooth_seasonal(seasonal_pattern, seasonal_smoothing)

    seasonal = np.tile(seasonal_pattern, values.size // period + 1)[: values.size]
    remainder = values - trend - seasonal
    return SeasonalDecomposition(trend=trend, seasonal=seasonal, remainder=remainder,
                                 period=period)
